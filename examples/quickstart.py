"""Quickstart: analyse the paper's §2 running example (subsetSum).

Run with:  python examples/quickstart.py

The analysis discovers, for ``subsetSumAux``, bounds of the shape

    nTicks' - nTicks <= 2^h - 1      return' <= h - 1      h <= 1 + n - i

(the paper's Eqn. after §2), i.e. the brute-force subset-sum search is
exponential in the array size and its return value is at most n.
"""

from repro.benchlib import SUBSET_SUM_OVERVIEW
from repro.core import analyze_program, cost_bound, return_bound
from repro.lang import parse_program


def main() -> None:
    program = parse_program(SUBSET_SUM_OVERVIEW)
    result = analyze_program(program)

    summary = result.summaries["subsetSumAux"]
    print("Procedure summary for subsetSumAux")
    print(summary)
    print()

    ticks = cost_bound(
        result, "subsetSumAux", cost_variable="nTicks", substitutions={"i": 0, "sum": 0}
    )
    returned = return_bound(result, "subsetSumAux", substitutions={"i": 0, "sum": 0})
    print(f"Bound on nTicks increase (i=0):   {ticks}")
    print(f"Bound on the return value (i=0):  {returned}")


if __name__ == "__main__":
    main()
