"""Regenerate Table 2: assertion checking on quad / pow2_overflow / height.

Run with:  python examples/assertion_checking.py [--jobs N]

The three benchmarks run through the batch engine, concurrently and with
on-disk result caching — the same path as ``repro bench --suite table2``.
"""

import argparse

from repro.benchlib.suites import get_suite
from repro.engine import BatchEngine, make_cache, suite_tasks
from repro.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=3, help="worker processes")
    parser.add_argument("--no-cache", action="store_true")
    arguments = parser.parse_args()

    engine = BatchEngine(
        jobs=arguments.jobs, cache=make_cache(no_cache=arguments.no_cache)
    )
    results = engine.run(suite_tasks("table2"))

    suite = get_suite("table2")
    rows = []
    for result in results:
        if result.ok:
            verdict = "proved" if result.proved else "unknown"
        else:
            verdict = f"error: {result.outcome}"
        cached = ", cached" if result.cache_hit else ""
        paper = ", ".join(
            f"{tool}:{'Y' if ok else 'N'}"
            for tool, ok in suite.entry(result.name).paper["verdicts"].items()
        )
        rows.append([result.name, f"{verdict} ({result.wall_time:.1f}s{cached})", paper])
    print(format_table(["benchmark", "CHORA (this repo)", "paper verdicts"], rows))


if __name__ == "__main__":
    main()
