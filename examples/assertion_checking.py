"""Regenerate Table 2: assertion checking on quad / pow2_overflow / height.

Run with:  python examples/assertion_checking.py
"""

import time

from repro.benchlib import TABLE2_BENCHMARKS
from repro.core import analyze_program, check_assertions
from repro.lang import parse_program
from repro.reporting import format_table


def main() -> None:
    rows = []
    for benchmark in TABLE2_BENCHMARKS:
        started = time.time()
        try:
            result = analyze_program(parse_program(benchmark.source))
            outcomes = check_assertions(result)
            proved = all(outcome.proved for outcome in outcomes) and bool(outcomes)
            verdict = "proved" if proved else "unknown"
        except Exception as error:  # pragma: no cover - defensive reporting
            verdict = f"error: {type(error).__name__}"
        elapsed = time.time() - started
        paper = ", ".join(
            f"{tool}:{'Y' if ok else 'N'}" for tool, ok in benchmark.paper_verdicts.items()
        )
        rows.append([benchmark.name, f"{verdict} ({elapsed:.1f}s)", paper])
    print(format_table(["benchmark", "CHORA (this repo)", "paper verdicts"], rows))


if __name__ == "__main__":
    main()
