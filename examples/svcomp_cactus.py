"""Regenerate Figure 3: the SV-COMP recursive cactus plot.

Run with:  python examples/svcomp_cactus.py [--limit N] [--fast] [--jobs N]

For each of the 17 recursive benchmarks the script runs this reproduction of
CHORA and the bounded-unrolling baseline through the batch engine, builds
the cactus series (cumulative time vs. number of benchmarks proved), and
prints them next to the proved-counts the paper reports for CHORA, ICRA,
Ultimate Automizer, UTaipan and VIAP (the external tools cannot be run
offline; see DESIGN.md).

Caching is disabled here: the per-benchmark wall times *are* the data.
"""

import argparse
import dataclasses

from repro.benchlib import PAPER_FIG3_PROVED_COUNTS
from repro.benchlib.suites import get_suite
from repro.engine import AnalysisTask, BatchEngine
from repro.reporting import build_series, render_csv, render_text


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--limit", type=int, default=None, help="first N benchmarks")
    parser.add_argument(
        "--fast",
        action="store_true",
        help="only the representative fast subset (see repro.benchlib.suites)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; >1 speeds the sweep up but distorts the "
        "per-benchmark wall times the cactus series is made of",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-benchmark deadline in seconds, as a real tool run would use "
        "(timed-out benchmarks count as not proved); 0 disables it",
    )
    arguments = parser.parse_args()

    entries = get_suite("fig3").iter(full=not arguments.fast)
    if arguments.limit is not None:
        entries = entries[: arguments.limit]
    chora_tasks = [AnalysisTask.from_entry(e, suite="fig3") for e in entries]
    unroll_tasks = [
        dataclasses.replace(task, kind="assertion-unrolling", params=(("depth", 12),))
        for task in chora_tasks
    ]
    engine = BatchEngine(
        jobs=arguments.jobs, timeout=arguments.timeout or None, cache=None
    )
    results = engine.run(chora_tasks + unroll_tasks)

    def to_series(name, batch):
        return build_series(
            name, [(bool(r.proved) and r.ok, r.wall_time) for r in batch]
        )

    series = [
        to_series("CHORA", results[: len(entries)]),
        to_series("unrolling", results[len(entries):]),
    ]
    print(render_text(series))
    print()
    print("Paper's proved counts:", PAPER_FIG3_PROVED_COUNTS)
    print()
    print(render_csv(series))


if __name__ == "__main__":
    main()
