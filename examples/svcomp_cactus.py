"""Regenerate Figure 3: the SV-COMP recursive cactus plot.

Run with:  python examples/svcomp_cactus.py [--limit N]

For each of the 17 recursive benchmarks the script runs this reproduction of
CHORA and the bounded-unrolling baseline, builds the cactus series
(cumulative time vs. number of benchmarks proved), and prints them next to
the proved-counts the paper reports for CHORA, ICRA, Ultimate Automizer,
UTaipan and VIAP (the external tools cannot be run offline; see DESIGN.md).
"""

import sys
import time

from repro.baselines import check_assertions_by_unrolling
from repro.benchlib import PAPER_FIG3_PROVED_COUNTS, SVCOMP_RECURSIVE_BENCHMARKS
from repro.core import analyze_program, check_assertions
from repro.lang import parse_program
from repro.reporting import build_series, render_csv, render_text


def run_tool(name, checker, benchmarks):
    results = []
    for benchmark in benchmarks:
        started = time.time()
        try:
            outcomes = checker(parse_program(benchmark.source))
            proved = bool(outcomes) and all(outcome.proved for outcome in outcomes)
        except Exception:
            proved = False
        results.append((proved, time.time() - started))
    return build_series(name, results)


def main() -> None:
    limit = len(SVCOMP_RECURSIVE_BENCHMARKS)
    if "--limit" in sys.argv:
        limit = int(sys.argv[sys.argv.index("--limit") + 1])
    benchmarks = SVCOMP_RECURSIVE_BENCHMARKS[:limit]

    def chora_checker(program):
        return check_assertions(analyze_program(program))

    series = [
        run_tool("CHORA", chora_checker, benchmarks),
        run_tool("unrolling", check_assertions_by_unrolling, benchmarks),
    ]
    print(render_text(series))
    print()
    print("Paper's proved counts:", PAPER_FIG3_PROVED_COUNTS)
    print()
    print(render_csv(series))


if __name__ == "__main__":
    main()
