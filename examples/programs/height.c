// Linear recursion: cost and recursion depth are both O(n).
// A minimal program in the analyzed language, kept lint-clean
// (`repro lint examples/programs/height.c` reports nothing).
int cost = 0;

int height(int n) {
    cost = cost + 1;
    if (n <= 1) {
        return 1;
    }
    int left = height(n - 1);
    return left + 1;
}

int main(int n) {
    assume(n > 0);
    int h = height(n);
    assert(h >= 1);
    return h;
}
