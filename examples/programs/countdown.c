// A simple loop: the guard variable strictly decreases, so the
// nondet-free-infinite-loop pass (R104) stays quiet.
int cost = 0;

int countdown(int n) {
    int steps = 0;
    while (n > 0) {
        cost = cost + 1;
        steps = steps + 1;
        n = n - 1;
    }
    return steps;
}

int main(int n) {
    assume(n >= 0);
    int total = countdown(n);
    assert(total >= 0);
    return total;
}
