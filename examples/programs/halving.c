// Logarithmic recursion through a constant divisor.  Division is only
// supported with a positive constant divisor; `n / 2` is the idiomatic
// halving recursion and counts as progress for the R103 pass.
int cost = 0;

int halving(int n) {
    cost = cost + 1;
    if (n <= 1) {
        return 0;
    }
    return 1 + halving(n / 2);
}

int main(int n) {
    assume(n >= 1);
    return halving(n);
}
