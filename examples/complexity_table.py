"""Regenerate Table 1: asymptotic complexity bounds on the benchmark suite.

Run with:  python examples/complexity_table.py [--full] [--jobs N]

Without ``--full`` only the benchmarks that analyse within a few seconds each
are run; ``--full`` runs all twelve rows (the hardest ones take minutes in
this pure-Python reproduction).  Each row shows the true bound, the bound
found by this reproduction of CHORA, the bound found by the ICRA-style
baseline, and the bounds the paper reports.

The rows run through the batch engine (``repro.engine.BatchEngine``): CHORA
and ICRA tasks execute concurrently in worker processes and results are
cached on disk, so a re-run of an unchanged table is near-instant.
"""

import argparse
import dataclasses

from repro.benchlib.suites import iter_suite
from repro.engine import AnalysisTask, BatchEngine, make_cache
from repro.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run all twelve rows")
    parser.add_argument("--jobs", type=int, default=4, help="worker processes")
    parser.add_argument("--no-cache", action="store_true")
    arguments = parser.parse_args()

    entries = iter_suite("table1", full=arguments.full)
    chora_tasks = [AnalysisTask.from_entry(e, suite="table1") for e in entries]
    icra_tasks = [
        dataclasses.replace(task, kind="complexity-icra") for task in chora_tasks
    ]
    engine = BatchEngine(
        jobs=arguments.jobs, cache=make_cache(no_cache=arguments.no_cache)
    )
    results = engine.run(chora_tasks + icra_tasks)
    chora = {r.name: r for r in results[: len(chora_tasks)]}
    icra = {r.name: r for r in results[len(chora_tasks):]}

    rows = []
    for entry in iter_suite("table1", full=True):
        if entry.name not in chora:
            rows.append(
                [entry.name, entry.paper["actual"], "(skipped, use --full)", "-",
                 entry.paper["chora"], entry.paper["icra"], entry.paper["other"]]
            )
            continue
        first, second = chora[entry.name], icra[entry.name]
        verdict = first.bound if first.ok else first.outcome
        cached = ", cached" if first.cache_hit else ""
        rows.append(
            [
                entry.name,
                entry.paper["actual"],
                f"{verdict} ({first.wall_time:.1f}s{cached})",
                second.bound if second.ok else second.outcome,
                entry.paper["chora"],
                entry.paper["icra"],
                entry.paper["other"],
            ]
        )
    print(
        format_table(
            ["benchmark", "actual", "CHORA (this repo)", "ICRA (this repo)",
             "CHORA (paper)", "ICRA (paper)", "other tools (paper)"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
