"""Regenerate Table 1: asymptotic complexity bounds on the benchmark suite.

Run with:  python examples/complexity_table.py [--full]

Without ``--full`` only the benchmarks that analyse within a few seconds each
are run; ``--full`` runs all twelve rows (the hardest ones take minutes in
this pure-Python reproduction).  Each row shows the true bound, the bound
found by this reproduction of CHORA, the bound found by the ICRA-style
baseline, and the bounds the paper reports.
"""

import sys
import time

from repro.baselines import analyze_program_icra
from repro.benchlib import TABLE1_BENCHMARKS
from repro.core import NO_BOUND, analyze_program, cost_bound
from repro.lang import parse_program
from repro.reporting import format_table

FAST_BENCHMARKS = {
    "fibonacci",
    "hanoi",
    "subset_sum",
    "bst_copy",
    "ball_bins3",
    "karatsuba",
    "mergesort",
    "qsort_calls",
}


def analyse_one(benchmark, analyzer):
    program = parse_program(benchmark.source)
    started = time.time()
    try:
        result = analyzer(program)
        bound = cost_bound(
            result,
            benchmark.procedure,
            benchmark.cost_variable,
            substitutions=benchmark.substitutions,
        )
        text = bound.asymptotic
    except Exception as error:  # pragma: no cover - defensive reporting
        text = f"error: {type(error).__name__}"
    return text, time.time() - started


def main() -> None:
    full = "--full" in sys.argv
    rows = []
    for benchmark in TABLE1_BENCHMARKS:
        if not full and benchmark.name not in FAST_BENCHMARKS:
            rows.append(
                [benchmark.name, benchmark.actual, "(skipped, use --full)", "-",
                 benchmark.paper_chora, benchmark.paper_icra, benchmark.paper_other]
            )
            continue
        chora_bound, chora_time = analyse_one(benchmark, analyze_program)
        icra_bound, _ = analyse_one(benchmark, analyze_program_icra)
        rows.append(
            [
                benchmark.name,
                benchmark.actual,
                f"{chora_bound} ({chora_time:.1f}s)",
                icra_bound,
                benchmark.paper_chora,
                benchmark.paper_icra,
                benchmark.paper_other,
            ]
        )
    print(
        format_table(
            ["benchmark", "actual", "CHORA (this repo)", "ICRA (this repo)",
             "CHORA (paper)", "ICRA (paper)", "other tools (paper)"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
