"""Table 2: assertion checking on quad, pow2_overflow and height."""

import pytest

from repro.baselines import analyze_program_icra, check_assertions_by_unrolling
from repro.benchlib import TABLE2_BENCHMARKS, assertion_benchmark_by_name
from repro.core import analyze_program, check_assertions
from repro.lang import parse_program


def _chora_verdict(name: str) -> bool:
    spec = assertion_benchmark_by_name(name)
    result = analyze_program(parse_program(spec.source))
    outcomes = check_assertions(result)
    return bool(outcomes) and all(outcome.proved for outcome in outcomes)


def _unrolling_verdict(name: str) -> bool:
    spec = assertion_benchmark_by_name(name)
    outcomes = check_assertions_by_unrolling(parse_program(spec.source), depth=6)
    return bool(outcomes) and all(outcome.proved for outcome in outcomes)


@pytest.mark.parametrize("name", [b.name for b in TABLE2_BENCHMARKS])
def test_table2_chora(benchmark, name):
    verdict = benchmark.pedantic(_chora_verdict, args=(name,), rounds=1, iterations=1)
    benchmark.extra_info["proved"] = verdict
    benchmark.extra_info["paper"] = dict(assertion_benchmark_by_name(name).paper_verdicts)
    # The unbounded-recursion benchmarks cannot be proved by unrolling alone;
    # whether this reproduction proves them is recorded in EXPERIMENTS.md.
    assert verdict in (True, False)


@pytest.mark.parametrize("name", [b.name for b in TABLE2_BENCHMARKS])
def test_table2_unrolling_baseline(benchmark, name):
    verdict = benchmark.pedantic(_unrolling_verdict, args=(name,), rounds=1, iterations=1)
    benchmark.extra_info["proved"] = verdict
    # quad/height take symbolic arguments, so bounded unrolling cannot prove them.
    if name in ("quad", "height"):
        assert verdict is False
