"""Table 2: assertion checking on quad, pow2_overflow and height.

Selection and execution go through the batch-engine task protocol, so the
rows are exactly what ``repro bench --suite table2`` runs; the unrolling
baseline reuses the same tasks with the ``assertion-unrolling`` kind.
"""

import pytest

from conftest import run_entry

from repro.benchlib.suites import iter_suite, suite_entry

SELECTED = [entry.name for entry in iter_suite("table2")]


def _run(name: str, kind: str) -> bool:
    params = {"depth": 6} if kind == "assertion-unrolling" else {}
    return run_entry("table2", name, kind, **params)["proved"]


@pytest.mark.parametrize("name", SELECTED)
def test_table2_chora(benchmark, name):
    verdict = benchmark.pedantic(_run, args=(name, "assertion"), rounds=1, iterations=1)
    benchmark.extra_info["proved"] = verdict
    benchmark.extra_info["paper"] = dict(suite_entry("table2", name).paper["verdicts"])
    # The unbounded-recursion benchmarks cannot be proved by unrolling alone;
    # whether this reproduction proves them is recorded in EXPERIMENTS.md.
    assert verdict in (True, False)


@pytest.mark.parametrize("name", SELECTED)
def test_table2_unrolling_baseline(benchmark, name):
    verdict = benchmark.pedantic(
        _run, args=(name, "assertion-unrolling"), rounds=1, iterations=1
    )
    benchmark.extra_info["proved"] = verdict
    # quad/height take symbolic arguments, so bounded unrolling cannot prove them.
    if name in ("quad", "height"):
        assert verdict is False
