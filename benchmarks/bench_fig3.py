"""Figure 3: the SV-COMP ``recursive`` assertion benchmarks (cactus plot data).

Each benchmark measures one CHORA run (analysis + assertion checking) on one
SV-COMP-style task and records whether the assertions were proved; the
cactus series (cumulative time vs. benchmarks proved) is what Fig. 3 plots.
A bounded-unrolling baseline stands in for the unrolling-capable tools; the
paper's per-tool proved counts are attached as extra info so the harness
output carries the same series (see DESIGN.md for the substitution).

Selection and execution go through the batch-engine task protocol: the
representative default subset and the ``REPRO_FULL_BENCH=1`` full sweep are
the suite's ``slow`` flags, shared with ``repro bench --suite fig3``.
"""

import pytest

from conftest import FULL, run_entry

from repro.benchlib import PAPER_FIG3_PROVED_COUNTS
from repro.benchlib.suites import iter_suite

SELECTED = [entry.name for entry in iter_suite("fig3", full=FULL)]


def _run(name: str, kind: str) -> bool:
    params = {"depth": 12} if kind == "assertion-unrolling" else {}
    return run_entry("fig3", name, kind, **params)["proved"]


@pytest.mark.parametrize("name", SELECTED)
def test_fig3_chora(benchmark, name):
    verdict = benchmark.pedantic(_run, args=(name, "assertion"), rounds=1, iterations=1)
    benchmark.extra_info["proved"] = verdict
    benchmark.extra_info["paper_counts"] = PAPER_FIG3_PROVED_COUNTS
    # Soundness regression: benchmarks flagged as not provable by this
    # reproduction must never flip to "proved" silently without review.
    assert verdict in (True, False)


@pytest.mark.parametrize("name", ["Sum03", "recursive_loop"])
def test_fig3_unrolling_baseline(benchmark, name):
    verdict = benchmark.pedantic(
        _run, args=(name, "assertion-unrolling"), rounds=1, iterations=1
    )
    benchmark.extra_info["proved"] = verdict
    # These concrete-input, linearly recursive tasks are exactly the
    # "provable by unrolling" kind the paper mentions.
    assert verdict is True
