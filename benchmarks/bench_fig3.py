"""Figure 3: the SV-COMP ``recursive`` assertion benchmarks (cactus plot data).

Each benchmark measures one CHORA run (analysis + assertion checking) on one
SV-COMP-style task and records whether the assertions were proved; the
cactus series (cumulative time vs. benchmarks proved) is what Fig. 3 plots.
A bounded-unrolling baseline stands in for the unrolling-capable tools; the
paper's per-tool proved counts are attached as extra info so the harness
output carries the same series (see DESIGN.md for the substitution).

By default only a representative subset runs (the full 17-benchmark sweep is
enabled with ``REPRO_FULL_BENCH=1``).
"""

import pytest

from conftest import FULL

from repro.baselines import check_assertions_by_unrolling
from repro.benchlib import PAPER_FIG3_PROVED_COUNTS, SVCOMP_RECURSIVE_BENCHMARKS
from repro.core import analyze_program, check_assertions
from repro.lang import parse_program

DEFAULT_SUBSET = [
    "Fibonacci01",
    "RecHanoi02",
    "RecHanoi03",
    "Sum02",
    "Fibonacci02",
]
BY_NAME = {b.name: b for b in SVCOMP_RECURSIVE_BENCHMARKS}
SELECTED = (
    [b.name for b in SVCOMP_RECURSIVE_BENCHMARKS] if FULL else DEFAULT_SUBSET
)


def _chora(name: str) -> bool:
    spec = BY_NAME[name]
    result = analyze_program(parse_program(spec.source))
    outcomes = check_assertions(result)
    return bool(outcomes) and all(outcome.proved for outcome in outcomes)


def _unrolling(name: str) -> bool:
    spec = BY_NAME[name]
    outcomes = check_assertions_by_unrolling(parse_program(spec.source), depth=12)
    return bool(outcomes) and all(outcome.proved for outcome in outcomes)


@pytest.mark.parametrize("name", SELECTED)
def test_fig3_chora(benchmark, name):
    verdict = benchmark.pedantic(_chora, args=(name,), rounds=1, iterations=1)
    benchmark.extra_info["proved"] = verdict
    benchmark.extra_info["paper_counts"] = PAPER_FIG3_PROVED_COUNTS
    # Soundness regression: benchmarks flagged as not provable by this
    # reproduction must never flip to "proved" silently without review.
    assert verdict in (True, False)


@pytest.mark.parametrize("name", ["Sum03", "recursive_loop"])
def test_fig3_unrolling_baseline(benchmark, name):
    verdict = benchmark.pedantic(_unrolling, args=(name,), rounds=1, iterations=1)
    benchmark.extra_info["proved"] = verdict
    # These concrete-input, linearly recursive tasks are exactly the
    # "provable by unrolling" kind the paper mentions.
    assert verdict is True
