"""Ablation benchmarks for the design choices the paper calls out.

* two-region analysis (§4.3) on the subsetSum example: with vs. without;
* the Alg. 4 depth model vs. the closed-form descent bound alone (§4.2);
* exact polyhedral hulls vs. the weak join inside symbolic abstraction;
* the Alg. 3 stratification filter (number of candidate inequations kept).
"""

import pytest

from repro.abstraction import AbstractionOptions
from repro.benchlib import SUBSET_SUM_OVERVIEW, benchmark_by_name
from repro.core import ChoraOptions, analyze_program, cost_bound
from repro.lang import parse_program

HANOI = benchmark_by_name("hanoi")


def _bound(options: ChoraOptions, spec=HANOI) -> str:
    result = analyze_program(parse_program(spec.source), options)
    return cost_bound(
        result, spec.procedure, spec.cost_variable, substitutions=spec.substitutions
    ).asymptotic


def test_ablation_two_region_off(benchmark):
    verdict = benchmark.pedantic(
        _bound, args=(ChoraOptions(use_two_region=False),), rounds=1, iterations=1
    )
    assert verdict == "O(2^n)"


def test_ablation_two_region_on(benchmark):
    verdict = benchmark.pedantic(
        _bound, args=(ChoraOptions(use_two_region=True),), rounds=1, iterations=1
    )
    assert verdict == "O(2^n)"


def test_ablation_without_alg4_depth_model(benchmark):
    verdict = benchmark.pedantic(
        _bound, args=(ChoraOptions(use_alg4_depth=False),), rounds=1, iterations=1
    )
    # The closed-form descent bound alone still yields the exponential bound.
    assert verdict == "O(2^n)"


def test_ablation_weak_join(benchmark):
    options = ChoraOptions(abstraction=AbstractionOptions(exact_hull=False))
    verdict = benchmark.pedantic(_bound, args=(options,), rounds=1, iterations=1)
    benchmark.extra_info["bound"] = verdict
    # The weak join is sound; it may or may not retain the exact bound.
    assert verdict in ("O(2^n)", "n.b.")


def test_ablation_stratification_filter(benchmark):
    """Count how many candidate inequations Alg. 3 keeps on subsetSum."""
    from repro.analysis import ProcedureContext
    from repro.core import build_stratified_system, run_height_analysis

    program = parse_program(SUBSET_SUM_OVERVIEW)
    procedures = {p.name: p for p in program.procedures}

    def run():
        context = ProcedureContext.of(procedures["subsetSumAux"], program.global_names)
        analysis = run_height_analysis({"subsetSumAux": context}, {}, procedures)
        bounds = analysis.bound_symbols["subsetSumAux"]
        system = build_stratified_system(analysis.candidate_inequations, bounds)
        return len(analysis.candidate_inequations), len(system.equations)

    candidates, kept = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["candidates"] = candidates
    benchmark.extra_info["kept"] = kept
    assert kept <= candidates
    assert kept >= 1
