"""Shared configuration for the benchmark harness.

Every benchmark runs the analysis exactly once per measurement
(``rounds=1``): the quantities of interest are end-to-end analysis times,
not micro-timings, and several analyses take seconds.

Set ``REPRO_FULL_BENCH=1`` to include the slowest rows (strassen,
qsort_steps, closest_pair, ackermann, the full Fig.-3 sweep), which take
minutes each in this pure-Python reproduction.  The flag is owned by
:mod:`repro.engine.config` so the bench scripts, the ``repro`` CLI and the
batch engine always agree; ``FULL`` is re-exported here for the bench
modules.
"""

import dataclasses

import pytest

from repro.benchlib.suites import suite_entry
from repro.core import ChoraOptions
from repro.engine import AnalysisTask, execute_task
from repro.engine.config import full_bench_enabled

FULL = full_bench_enabled()


def run_entry(suite: str, name: str, kind: str, **params):
    """Execute one suite entry through the engine's task protocol.

    ``kind`` may override the entry's native kind to run a baseline (e.g.
    ``assertion-unrolling`` with a ``depth`` parameter); returns the payload.
    """
    entry = suite_entry(suite, name)
    task = AnalysisTask.from_entry(entry, suite=suite)
    if kind != entry.kind or params:
        task = dataclasses.replace(
            task, kind=kind, params=tuple(sorted(params.items()))
        )
    return execute_task(task, ChoraOptions())


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(function, *args, **kwargs):
        return run_once(benchmark, function, *args, **kwargs)

    return runner
