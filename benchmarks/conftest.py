"""Shared configuration for the benchmark harness.

Every benchmark runs the analysis exactly once per measurement
(``rounds=1``): the quantities of interest are end-to-end analysis times,
not micro-timings, and several analyses take seconds.

Set ``REPRO_FULL_BENCH=1`` to include the slowest Table-1 rows (strassen,
qsort_steps, closest_pair, ackermann), which take minutes each in this
pure-Python reproduction.
"""

import os

import pytest

FULL = os.environ.get("REPRO_FULL_BENCH", "") == "1"


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(function, *args, **kwargs):
        return run_once(benchmark, function, *args, **kwargs)

    return runner
