#!/usr/bin/env python3
"""Documentation staleness checker (CI's ``docs`` job, importable by tests).

Two classes of rot are detected across ``README.md`` and ``docs/*.md``:

* **Stale CLI invocations** — every ``repro <subcommand> ...`` line found
  in a fenced code block is checked against the real CLI: the subcommand
  must exist (its ``--help`` must succeed) and every ``--flag`` the docs
  show must appear in that subcommand's help text.  Renaming or removing
  a flag without updating the docs fails the job.
* **Broken intra-repo links** — every relative markdown link target must
  exist on disk (fragments are ignored; external ``http(s)://`` and
  ``mailto:`` links are not checked).

Run from the repository root::

    python tools/check_docs.py

Exit status 0 when the docs are clean, 1 otherwise (problems on stderr).
"""

from __future__ import annotations

import re
import shlex
import subprocess
import sys
from pathlib import Path
from typing import Callable, Iterator, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]

#: A ``--help`` runner: subcommand -> help text, or None when it failed.
HelpRunner = Callable[[str], Optional[str]]

_FENCE = re.compile(r"^(```|~~~)")
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_PROMPT = re.compile(r"^[\w.-]*\$\s+")
_FLAG = re.compile(r"^--[A-Za-z][A-Za-z-]*")


def markdown_files(root: Path = REPO_ROOT) -> list[Path]:
    """README plus everything under docs/, deterministic order."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("**/*.md")))
    return [path for path in files if path.is_file()]


def code_block_lines(text: str) -> Iterator[str]:
    """Lines inside fenced code blocks."""
    inside = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            inside = not inside
            continue
        if inside:
            yield line


def cli_invocations(text: str) -> Iterator[tuple[str, list[str]]]:
    """``(subcommand, [--flags])`` for each ``repro`` line in code blocks.

    Handles shell prompts (``$ repro ...``, ``machine-1$ repro ...``) and
    ignores non-repro lines (curl, pytest, comments, JSON output).
    """
    for raw in code_block_lines(text):
        line = _PROMPT.sub("", raw.strip())
        if not line.startswith("repro "):
            continue
        line = line.split("#", 1)[0].strip()  # trailing comments
        try:
            words = shlex.split(line)
        except ValueError:
            words = line.split()
        if len(words) < 2:
            continue
        subcommand = words[1]
        if subcommand.startswith("-"):
            continue
        flags = []
        for word in words[2:]:
            match = _FLAG.match(word)
            if match:
                flags.append(match.group(0))
        yield subcommand, flags


def subprocess_help_runner(subcommand: str) -> Optional[str]:
    """The real CLI's help text for ``subcommand`` (None when it fails)."""
    completed = subprocess.run(
        [sys.executable, "-m", "repro", subcommand, "--help"],
        capture_output=True,
        text=True,
        timeout=120,
        cwd=REPO_ROOT,
    )
    if completed.returncode != 0:
        return None
    return completed.stdout


def check_cli_invocations(
    help_runner: HelpRunner = subprocess_help_runner,
    root: Path = REPO_ROOT,
) -> list[str]:
    """Problems with documented ``repro`` invocations (empty when clean)."""
    problems: list[str] = []
    help_texts: dict[str, Optional[str]] = {}
    for path in markdown_files(root):
        relative = path.relative_to(root)
        for subcommand, flags in cli_invocations(path.read_text(encoding="utf-8")):
            if subcommand not in help_texts:
                help_texts[subcommand] = help_runner(subcommand)
            help_text = help_texts[subcommand]
            if help_text is None:
                problems.append(
                    f"{relative}: `repro {subcommand}` is not a working"
                    " subcommand (its --help fails)"
                )
                continue
            for flag in flags:
                if flag not in help_text:
                    problems.append(
                        f"{relative}: `repro {subcommand}` does not accept"
                        f" the documented flag {flag}"
                    )
    return problems


def check_links(root: Path = REPO_ROOT) -> list[str]:
    """Broken relative link targets (empty when clean)."""
    problems: list[str] = []
    for path in markdown_files(root):
        relative = path.relative_to(root)
        for match in _LINK.finditer(path.read_text(encoding="utf-8")):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(f"{relative}: broken link -> {target}")
    return problems


def main() -> int:
    problems = check_links() + check_cli_invocations()
    for problem in problems:
        print(f"DOCS: {problem}", file=sys.stderr)
    if not problems:
        checked = ", ".join(str(p.relative_to(REPO_ROOT)) for p in markdown_files())
        print(f"docs ok ({checked})")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
