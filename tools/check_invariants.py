#!/usr/bin/env python3
"""Source-invariant checker (CI's ``invariants`` step, importable by tests).

A Python-AST lint over ``src/repro`` for two invariants no unit test can
pin down once and for all, because new call sites keep appearing:

* **Tuning knobs stay out of cache keys.**  The process-local performance
  knobs — the DAG-parallel SCC worker count (``set_parallel_sccs``) and the
  simplex pivot-kernel selector (``set_simplex_kernel``) — are engineered
  to be invisible to analysis results, so they must never flow into
  fingerprint or cache/memo-key construction: a key that varied with them
  would split one logical result across entries and silently defeat the
  bit-identity contract the determinism tests pin.  Every function whose
  name marks it as key material (``fingerprint``, ``cache_key``,
  ``cache_material``, ...) is checked for references to the knob APIs, the
  key-building modules are checked wholesale, and the ``*Options``
  dataclasses (whose ``to_dict`` feeds the result-cache key) must not grow
  a knob-named field.
* **Unpickler allowlists enumerate concrete classes.**  Every
  ``RestrictedUnpickler``/``restricted_loads`` call site must take its
  ``allowed`` vocabulary from a literal set of ``("module", "qualname")``
  string pairs.  A computed allowlist (comprehension, function call,
  module-prefix matching) is how the arbitrary-code-execution hole the
  restricted unpickler exists to close gets reopened by accident.

Run from the repository root::

    python tools/check_invariants.py

Exit status 0 when the sources are clean, 1 otherwise (problems on stderr).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]
SOURCE_ROOT = REPO_ROOT / "src" / "repro"

#: Identifiers belonging to the process-local tuning knobs.  Referencing
#: any of these from key-construction code is a finding.
KNOB_IDENTIFIERS = frozenset(
    {
        "parallel_sccs",
        "set_parallel_sccs",
        "simplex_kernel",
        "set_simplex_kernel",
        "_kernel_mode",
        "kernel_stats",
        "reset_kernel_stats",
        "int64_available",
    }
)

#: Function names that mark a definition as key material.
KEY_FUNCTION_NAMES = frozenset(
    {"fingerprint", "code_fingerprint", "cache_key", "cache_material", "key"}
)

#: Modules that exist to build keys; the knob identifiers may not appear
#: anywhere in them, not even in imports or comments-of-code.
KEY_MODULES = ("engine/cache.py", "lang/fingerprint.py")

#: Names under which the restricted unpickler is called.
UNPICKLER_NAMES = frozenset({"RestrictedUnpickler", "restricted_loads"})


def python_sources(root: Path = SOURCE_ROOT) -> list[Path]:
    """Every Python file of the package, deterministic order."""
    return sorted(root.rglob("*.py"))


def _identifiers(node: ast.AST) -> Iterator[str]:
    """Every Name and Attribute identifier mentioned under ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr
        elif isinstance(child, ast.alias):
            yield child.name.split(".")[-1]


def _function_definitions(
    tree: ast.AST,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """``(qualified_name, node)`` for every function, classes flattened."""

    def walk(node: ast.AST, prefix: str) -> Iterator[tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield f"{prefix}{child.name}", child
                yield from walk(child, f"{prefix}{child.name}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")

    yield from walk(tree, "")  # type: ignore[misc]


def check_knob_isolation(root: Path = SOURCE_ROOT) -> list[str]:
    """Knob references inside key-construction code (empty when clean)."""
    problems: list[str] = []
    for path in python_sources(root):
        relative = path.relative_to(REPO_ROOT)
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(relative))
        module_is_key = str(path).replace("\\", "/").endswith(KEY_MODULES)
        if module_is_key:
            for identifier in set(_identifiers(tree)) & KNOB_IDENTIFIERS:
                problems.append(
                    f"{relative}: key-building module references tuning knob"
                    f" `{identifier}` — knobs must not flow into cache keys"
                )
            continue
        for qualified, function in _function_definitions(tree):
            name = qualified.rsplit(".", 1)[-1]
            if name not in KEY_FUNCTION_NAMES:
                continue
            for identifier in set(_identifiers(function)) & KNOB_IDENTIFIERS:
                problems.append(
                    f"{relative}: key function `{qualified}` references tuning"
                    f" knob `{identifier}` — knobs must not flow into cache keys"
                )
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef) or not node.name.endswith("Options"):
                continue
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                target = statement.target
                if isinstance(target, ast.Name) and target.id in KNOB_IDENTIFIERS:
                    problems.append(
                        f"{relative}: options dataclass `{node.name}` declares"
                        f" knob field `{target.id}` — its to_dict() feeds the"
                        " result-cache key"
                    )
    return problems


def _literal_pair_elements(node: ast.AST) -> Optional[list[ast.expr]]:
    """The element expressions of a literal set/frozenset, else ``None``."""
    if isinstance(node, ast.Set):
        return list(node.elts)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "frozenset"
        and not node.keywords
        and len(node.args) == 1
        and isinstance(node.args[0], (ast.Set, ast.List, ast.Tuple))
    ):
        return list(node.args[0].elts)
    return None


def _allowlist_problems(value: ast.AST, origin: str) -> list[str]:
    """Why ``value`` is not an explicit class allowlist (empty when it is)."""
    elements = _literal_pair_elements(value)
    if elements is None:
        return [
            f"{origin}: allowlist is not a literal set of"
            " (module, qualname) pairs — computed allowlists reopen the"
            " code-execution hole the restricted unpickler closes"
        ]
    problems: list[str] = []
    for element in elements:
        if (
            not isinstance(element, ast.Tuple)
            or len(element.elts) != 2
            or not all(
                isinstance(part, ast.Constant) and isinstance(part.value, str)
                for part in element.elts
            )
        ):
            problems.append(
                f"{origin}: allowlist element is not a"
                ' ("module", "qualname") string pair'
            )
            continue
        module, qualname = (part.value for part in element.elts)  # type: ignore[union-attr]
        if "*" in module or "*" in qualname:
            problems.append(
                f"{origin}: allowlist entry ({module!r}, {qualname!r}) uses a"
                " wildcard — enumerate concrete classes"
            )
    return problems


def check_unpickler_allowlists(root: Path = SOURCE_ROOT) -> list[str]:
    """Unpickler call sites with non-literal allowlists (empty when clean)."""
    problems: list[str] = []
    for path in python_sources(root):
        relative = path.relative_to(REPO_ROOT)
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(relative))
        assignments: dict[str, ast.AST] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assignments[target.id] = node.value
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            name = callee.attr if isinstance(callee, ast.Attribute) else (
                callee.id if isinstance(callee, ast.Name) else None
            )
            if name not in UNPICKLER_NAMES:
                continue
            # ``allowed`` is the second positional argument of both entry
            # points (after the stream/data), or the keyword of that name.
            allowed: Optional[ast.AST] = None
            if len(node.args) >= 2:
                allowed = node.args[1]
            for keyword in node.keywords:
                if keyword.arg == "allowed":
                    allowed = keyword.value
            origin = f"{relative}:{node.lineno}: `{name}(...)`"
            if allowed is None:
                problems.append(f"{origin}: no explicit allowlist argument")
                continue
            if isinstance(allowed, ast.Name):
                # Definition sites pass their parameter straight through;
                # only resolve module-level names at *call* sites.
                if allowed.id in assignments:
                    problems.extend(
                        _allowlist_problems(assignments[allowed.id], origin)
                    )
                elif allowed.id not in ("allowed",):
                    problems.append(
                        f"{origin}: allowlist `{allowed.id}` is not a"
                        " module-level literal set of (module, qualname) pairs"
                    )
            else:
                problems.extend(_allowlist_problems(allowed, origin))
    return problems


def main() -> int:
    problems = check_knob_isolation() + check_unpickler_allowlists()
    for problem in problems:
        print(f"INVARIANT: {problem}", file=sys.stderr)
    if not problems:
        print(f"invariants ok ({len(python_sources())} files checked)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
