"""Back-compat shim: all metadata lives in pyproject.toml (PEP 621).

Kept so ``python setup.py develop`` still works on environments whose
setuptools lacks PEP 660 editable-wheel support (e.g. no ``wheel`` package);
normal installs should use ``pip install -e .``.
"""

from setuptools import setup

setup()
