"""``python -m repro`` — the same entry point as the ``repro`` console script."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
