"""A bounded-unrolling assertion checker.

Fig. 3's discussion notes that many SV-COMP ``recursive`` benchmarks can be
proved "safe by unrolling" — they evaluate a recursive function at concrete
arguments and need no invariant generation.  The unrolling-capable tools
(Ultimate Automizer, UTaipan, VIAP) therefore do well on those tasks while an
invariant generator like CHORA does not need to.  This baseline stands in for
that capability: recursive calls are expanded to a fixed depth, with calls
beyond the depth replaced by a havoc of the globals and the return value
(a sound over-approximation), and the resulting summaries are used to check
the program's assertions.
"""

from __future__ import annotations


from ..abstraction import AbstractionOptions
from ..analysis import ProcedureContext, summarize_procedure
from ..core.assertion import AssertionOutcome, check_assertion
from ..core.chora import AnalysisResult
from ..core.summaries import ProcedureSummary
from ..formulas import RETURN_VARIABLE, TransitionFormula
from ..lang import ast
from ..lang.callgraph import build_call_graph

__all__ = ["check_assertions_by_unrolling", "DEFAULT_UNROLL_DEPTH"]

DEFAULT_UNROLL_DEPTH = 12


def check_assertions_by_unrolling(
    program: ast.Program,
    depth: int = DEFAULT_UNROLL_DEPTH,
    options: AbstractionOptions = AbstractionOptions(),
) -> list[AssertionOutcome]:
    """Prove assertions by expanding recursion up to ``depth`` levels."""
    procedures = {p.name: p for p in program.procedures}
    contexts = {
        name: ProcedureContext.of(procedure, program.global_names)
        for name, procedure in procedures.items()
    }
    graph = build_call_graph(program)
    result = AnalysisResult(program, {}, contexts, graph)

    external: dict[str, TransitionFormula] = {}
    for component in graph.strongly_connected_components():
        if not graph.is_recursive(component):
            name = component[0]
            transition = summarize_procedure(
                contexts[name], {}, external, procedures, options
            )
            external[name] = transition
            result.summaries[name] = ProcedureSummary(
                name, contexts[name].summary_variables, transition, is_recursive=False
            )
            continue
        # Unroll the component: level 0 havocs globals and the return value.
        current = {
            name: TransitionFormula.havoc(
                tuple(program.global_names) + (RETURN_VARIABLE,)
            )
            for name in component
        }
        for _ in range(depth):
            current = {
                name: summarize_procedure(
                    contexts[name], current, external, procedures, options
                )
                for name in component
            }
        for name in component:
            external[name] = current[name]
            result.summaries[name] = ProcedureSummary(
                name, contexts[name].summary_variables, current[name], is_recursive=False
            )

    outcomes: list[AssertionOutcome] = []
    for name, context in result.contexts.items():
        for site in context.cfg.assertions:
            outcomes.append(check_assertion(result, site, options))
    return outcomes
