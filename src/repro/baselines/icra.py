"""An ICRA-style baseline analyser.

ICRA (Kincaid et al. 2017) lifts compositional recurrence analysis to
*linearly* recursive procedures but falls back to Kleene iteration (fixpoint
computation in the polyhedral domain, with widening) for non-linear
recursion.  Table 1 of the paper shows the practical consequence: ICRA finds
essentially no bounds for the non-linearly recursive complexity benchmarks,
which is precisely the gap CHORA closes.

This baseline reproduces that behaviour:

* non-recursive procedures and loops: the same compositional machinery as the
  main analysis;
* *linearly* recursive procedures (a single-procedure component whose body
  contains exactly one recursive call site): height-based recurrence
  analysis, which on linear recursion computes the same closed forms ICRA's
  tensor-based method produces;
* non-linear or mutual recursion: a Kleene/widening fixpoint over the
  polyhedral abstraction of the procedure body, which loses the
  height-indexed information (no exponential bounds, usually no cost bound).
"""

from __future__ import annotations


from ..analysis import ProcedureContext, summarize_procedure
from ..formulas import TransitionFormula
from ..lang import ast
from ..lang.callgraph import build_call_graph
from ..core.chora import AnalysisResult, ChoraOptions, _analyze_recursive_component
from ..core.summaries import ProcedureSummary
from .shared import polyhedral_kleene_summary

__all__ = ["analyze_program_icra"]


def _is_linear_recursion(component: list[str], contexts) -> bool:
    """A single procedure whose CFG contains exactly one intra-component call."""
    if len(component) != 1:
        return False
    name = component[0]
    calls = [e for e in contexts[name].cfg.call_edges if e.callee == name]
    return len(calls) <= 1


def analyze_program_icra(
    program: ast.Program, options: ChoraOptions = ChoraOptions()
) -> AnalysisResult:
    """Analyse a program the way ICRA would (see module docstring)."""
    procedures = {p.name: p for p in program.procedures}
    contexts = {
        name: ProcedureContext.of(procedure, program.global_names)
        for name, procedure in procedures.items()
    }
    graph = build_call_graph(program)
    result = AnalysisResult(program, {}, contexts, graph)
    external: dict[str, TransitionFormula] = {}

    for component in graph.strongly_connected_components():
        if not graph.is_recursive(component):
            name = component[0]
            transition = summarize_procedure(
                contexts[name], {}, external, procedures, options.abstraction
            )
            result.summaries[name] = ProcedureSummary(
                name, contexts[name].summary_variables, transition, is_recursive=False
            )
            external[name] = transition
            continue
        if _is_linear_recursion(component, contexts):
            # Linear recursion: recurrence-based summarization (same closed
            # forms as ICRA's tensor construction).
            _analyze_recursive_component(
                component, contexts, procedures, external, result, options
            )
            continue
        # Non-linear or mutual recursion: Kleene iteration with widening.
        for name in component:
            transition = polyhedral_kleene_summary(
                contexts[name], component, external, procedures, options.abstraction
            )
            result.summaries[name] = ProcedureSummary(
                name, contexts[name].summary_variables, transition, is_recursive=True
            )
            external[name] = transition
    return result
