"""Shared machinery for the baseline analysers."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..abstraction import AbstractionOptions, abstract
from ..analysis import ProcedureContext, summarize_procedure
from ..formulas import TransitionFormula, post, pre
from ..lang import ast
from ..polyhedra import Polyhedron

__all__ = ["polyhedral_kleene_summary", "KLEENE_MAX_ITERATIONS"]

#: Iterations before widening kicks in, and the hard iteration cap.
KLEENE_MAX_ITERATIONS = 6


def _to_polyhedron(
    transition: TransitionFormula,
    context: ProcedureContext,
    options: AbstractionOptions,
) -> Polyhedron:
    variables = context.summary_variables
    keep = [pre(v) for v in variables] + [post(v) for v in variables]
    return abstract(transition.to_formula(variables), keep, options).polyhedron


def polyhedral_kleene_summary(
    context: ProcedureContext,
    component: Sequence[str],
    external: Mapping[str, TransitionFormula],
    procedures: Mapping[str, ast.Procedure],
    options: AbstractionOptions = AbstractionOptions(),
) -> TransitionFormula:
    """Kleene iteration with widening in the polyhedral domain.

    This is the fallback ICRA applies to non-linearly recursive procedures
    (and the classical abstract-interpretation treatment of recursion): start
    from the empty relation, repeatedly re-analyse the body with the current
    approximation at the recursive call sites, abstract to a polyhedron, and
    widen until stabilization.
    """
    variables = context.summary_variables
    current = TransitionFormula.bottom()
    current_polyhedron = Polyhedron.empty()
    for iteration in range(KLEENE_MAX_ITERATIONS):
        interpretation = {name: current for name in component}
        body = summarize_procedure(
            context, interpretation, external, procedures, options
        )
        next_polyhedron = _to_polyhedron(body, context, options)
        if iteration >= 2:
            next_polyhedron = current_polyhedron.widen(next_polyhedron)
        if not current_polyhedron.is_empty() and current_polyhedron.contains(
            next_polyhedron
        ):
            break
        current_polyhedron = next_polyhedron
        current = TransitionFormula.relation(
            current_polyhedron.to_formula(), variables
        )
    return TransitionFormula.relation(current_polyhedron.to_formula(), variables)
