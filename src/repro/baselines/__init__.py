"""Baseline analysers the paper compares against.

* :func:`analyze_program_icra` — an ICRA-style analyser (recurrences for
  loops and linear recursion, Kleene iteration with widening for non-linear
  recursion); used for Table 1's ICRA column and Table 2 / Fig. 3.
* :func:`check_assertions_by_unrolling` — a bounded-unrolling checker that
  stands in for the unrolling-capable SV-COMP tools in Fig. 3.
"""

from .icra import analyze_program_icra
from .shared import polyhedral_kleene_summary
from .unroller import DEFAULT_UNROLL_DEPTH, check_assertions_by_unrolling

__all__ = [
    "analyze_program_icra",
    "polyhedral_kleene_summary",
    "check_assertions_by_unrolling",
    "DEFAULT_UNROLL_DEPTH",
]
