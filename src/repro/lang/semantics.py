"""Translation from mini-language syntax to transition formulas.

Each non-call statement denotes a :class:`~repro.formulas.TransitionFormula`
over the program variables it touches; conditions denote formulas over
pre-state symbols.  The translation follows the integer semantics used by the
paper's front end:

* strict comparisons are translated with the integer tightening
  ``a < b  ==  a <= b - 1``;
* ``!=`` becomes a disjunction of strict comparisons;
* integer division ``e / c`` by a positive constant ``c`` is modelled
  relationally by a fresh quotient symbol ``q`` with
  ``c*q <= e  /\\  e <= c*q + (c - 1)``; over the integers this pins ``q``
  to exactly ``floor(e / c)`` for *every* dividend — negative ones included
  — which is precisely the interpreter's Python ``//`` (over the rationals
  the polyhedral relaxation widens ``q`` to an interval of width < 1, a
  sound over-approximation that still contains the floor value);
* ``nondet()`` introduces an unconstrained fresh symbol, ``nondet(lo, hi)``
  adds ``lo <= v < hi``;
* array reads are unconstrained fresh symbols and array writes are no-ops
  (the analysis tracks integer state only, as in the paper);
* ``min``/``max`` and the ternary operator introduce a fresh symbol with a
  disjunctive defining constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..formulas import (
    FALSE,
    TRUE,
    Formula,
    Polynomial,
    Symbol,
    TransitionFormula,
    atom_eq,
    atom_ge,
    atom_le,
    conjoin,
    disjoin,
    exists,
    fresh,
    post,
    pre,
)
from . import ast

__all__ = ["ExprTranslation", "translate_expression", "translate_condition",
           "assign_transition", "assume_transition", "havoc_transition",
           "SemanticsError"]


class SemanticsError(Exception):
    """Raised for constructs the relational semantics does not support."""


@dataclass
class ExprTranslation:
    """Result of translating an expression over *pre-state* symbols.

    ``value`` is a polynomial over pre-state program symbols and auxiliary
    fresh symbols; ``constraints`` defines those auxiliary symbols; ``fresh``
    lists them so callers can existentially quantify them.
    """

    value: Polynomial
    constraints: Formula = TRUE
    fresh_symbols: tuple[Symbol, ...] = ()

    def merge(self, other: "ExprTranslation") -> tuple[Polynomial, Polynomial, Formula, tuple[Symbol, ...]]:
        return (
            self.value,
            other.value,
            conjoin([self.constraints, other.constraints]),
            self.fresh_symbols + other.fresh_symbols,
        )


def translate_expression(expression: ast.Expr) -> ExprTranslation:
    """Translate an expression to a polynomial plus defining constraints."""
    if isinstance(expression, ast.IntLit):
        return ExprTranslation(Polynomial.constant(expression.value))
    if isinstance(expression, ast.VarRef):
        return ExprTranslation(Polynomial.var(pre(expression.name)))
    if isinstance(expression, ast.UnaryNeg):
        inner = translate_expression(expression.operand)
        return ExprTranslation(-inner.value, inner.constraints, inner.fresh_symbols)
    if isinstance(expression, ast.BinOp):
        left = translate_expression(expression.left)
        right = translate_expression(expression.right)
        lvalue, rvalue, constraints, fresh_symbols = left.merge(right)
        if expression.op == "+":
            return ExprTranslation(lvalue + rvalue, constraints, fresh_symbols)
        if expression.op == "-":
            return ExprTranslation(lvalue - rvalue, constraints, fresh_symbols)
        if expression.op == "*":
            return ExprTranslation(lvalue * rvalue, constraints, fresh_symbols)
        if expression.op == "/":
            return _translate_division(lvalue, rvalue, constraints, fresh_symbols)
        raise SemanticsError(f"unsupported operator {expression.op!r}")
    if isinstance(expression, ast.Nondet):
        symbol = fresh("nd")
        value = Polynomial.var(symbol)
        constraints: list[Formula] = []
        fresh_symbols: list[Symbol] = [symbol]
        if expression.lower is not None:
            lower = translate_expression(expression.lower)
            constraints.append(lower.constraints)
            constraints.append(atom_ge(value, lower.value))
            fresh_symbols.extend(lower.fresh_symbols)
        if expression.upper is not None:
            upper = translate_expression(expression.upper)
            constraints.append(upper.constraints)
            # nondet(lo, hi) yields lo <= v < hi, i.e. v <= hi - 1.
            constraints.append(atom_le(value, upper.value - 1))
            fresh_symbols.extend(upper.fresh_symbols)
        return ExprTranslation(value, conjoin(constraints), tuple(fresh_symbols))
    if isinstance(expression, ast.ArrayRead):
        symbol = fresh(f"load_{expression.array}")
        return ExprTranslation(Polynomial.var(symbol), TRUE, (symbol,))
    if isinstance(expression, ast.MinMax):
        left = translate_expression(expression.left)
        right = translate_expression(expression.right)
        lvalue, rvalue, constraints, fresh_symbols = left.merge(right)
        symbol = fresh("max" if expression.is_max else "min")
        value = Polynomial.var(symbol)
        if expression.is_max:
            bounds = conjoin([atom_ge(value, lvalue), atom_ge(value, rvalue)])
        else:
            bounds = conjoin([atom_le(value, lvalue), atom_le(value, rvalue)])
        choice = disjoin([atom_eq(value, lvalue), atom_eq(value, rvalue)])
        return ExprTranslation(
            value,
            conjoin([constraints, bounds, choice]),
            fresh_symbols + (symbol,),
        )
    if isinstance(expression, ast.Ternary):
        condition = translate_condition(expression.condition)
        then_part = translate_expression(expression.then_value)
        else_part = translate_expression(expression.else_value)
        symbol = fresh("ite")
        value = Polynomial.var(symbol)
        branches = disjoin(
            [
                conjoin([condition, then_part.constraints, atom_eq(value, then_part.value)]),
                conjoin(
                    [
                        _negate_condition(expression.condition),
                        else_part.constraints,
                        atom_eq(value, else_part.value),
                    ]
                ),
            ]
        )
        return ExprTranslation(
            value,
            branches,
            then_part.fresh_symbols + else_part.fresh_symbols + (symbol,),
        )
    if isinstance(expression, ast.CallExpr):
        raise SemanticsError(
            "call expressions must be hoisted into call statements before translation"
        )
    raise SemanticsError(f"unsupported expression {expression!r}")


def _translate_division(
    dividend: Polynomial,
    divisor: Polynomial,
    constraints: Formula,
    fresh_symbols: tuple[Symbol, ...],
) -> ExprTranslation:
    if not divisor.is_constant:
        raise SemanticsError("division is only supported by constant divisors")
    c = divisor.constant_value
    if c <= 0:
        raise SemanticsError("division is only supported by positive constants")
    quotient = fresh("div")
    value = Polynomial.var(quotient)
    relation = conjoin(
        [
            atom_le(value.scale(c), dividend),          # c*q <= e
            atom_le(dividend, value.scale(c) + (c - 1)),  # e <= c*q + c - 1
        ]
    )
    return ExprTranslation(
        value, conjoin([constraints, relation]), fresh_symbols + (quotient,)
    )


def _negate_condition(condition: ast.Cond) -> Formula:
    """The formula for the negation of a condition (pushed through syntax)."""
    return translate_condition(ast.NotCond(condition))


def translate_condition(condition: ast.Cond) -> Formula:
    """Translate a condition to a formula over pre-state symbols."""
    if isinstance(condition, ast.BoolLit):
        return TRUE if condition.value else FALSE
    if isinstance(condition, ast.NondetBool):
        return TRUE
    if isinstance(condition, ast.BoolOp):
        left = translate_condition(condition.left)
        right = translate_condition(condition.right)
        if condition.op == "&&":
            return conjoin([left, right])
        return disjoin([left, right])
    if isinstance(condition, ast.NotCond):
        inner = condition.operand
        if isinstance(inner, ast.NondetBool):
            return TRUE
        if isinstance(inner, ast.BoolLit):
            return FALSE if inner.value else TRUE
        if isinstance(inner, ast.NotCond):
            return translate_condition(inner.operand)
        if isinstance(inner, ast.BoolOp):
            flipped = "||" if inner.op == "&&" else "&&"
            return translate_condition(
                ast.BoolOp(flipped, ast.NotCond(inner.left), ast.NotCond(inner.right))
            )
        if isinstance(inner, ast.Compare):
            return translate_condition(_negate_compare(inner))
        raise SemanticsError(f"cannot negate condition {inner!r}")
    if isinstance(condition, ast.Compare):
        left = translate_expression(condition.left)
        right = translate_expression(condition.right)
        lvalue, rvalue, constraints, fresh_symbols = left.merge(right)
        relation = _compare_formula(condition.op, lvalue, rvalue)
        return exists(fresh_symbols, conjoin([constraints, relation]))
    raise SemanticsError(f"unsupported condition {condition!r}")


def _negate_compare(comparison: ast.Compare) -> ast.Compare:
    negations = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
    return ast.Compare(negations[comparison.op], comparison.left, comparison.right)


def _compare_formula(op: str, left: Polynomial, right: Polynomial) -> Formula:
    if op == "==":
        return atom_eq(left, right)
    if op == "!=":
        # Integer semantics: left <= right - 1  or  left >= right + 1.
        return disjoin([atom_le(left, right - 1), atom_ge(left, right + 1)])
    if op == "<":
        return atom_le(left, right - 1)
    if op == "<=":
        return atom_le(left, right)
    if op == ">":
        return atom_ge(left, right + 1)
    if op == ">=":
        return atom_ge(left, right)
    raise SemanticsError(f"unsupported comparison {op!r}")


# ---------------------------------------------------------------------- #
# Statement-level transition formulas
# ---------------------------------------------------------------------- #
def assign_transition(name: str, expression: ast.Expr) -> TransitionFormula:
    """The transition formula of ``name = expression`` (no calls inside)."""
    translated = translate_expression(expression)
    formula = conjoin(
        [translated.constraints, atom_eq(Polynomial.var(post(name)), translated.value)]
    )
    formula = exists(translated.fresh_symbols, formula)
    return TransitionFormula.relation(formula, [name])


def assume_transition(condition: ast.Cond) -> TransitionFormula:
    """The transition formula of ``assume(condition)`` (a guard edge)."""
    return TransitionFormula.assume(translate_condition(condition))


def havoc_transition(name: str) -> TransitionFormula:
    """The transition formula of ``name = nondet()``."""
    return TransitionFormula.havoc([name])
