"""Parser for the mini-language (a small C-like surface syntax).

The benchmark programs of the paper are written in this syntax, e.g.::

    int nTicks;
    int subsetSumAux(int *A, int i, int n, int sum) {
        nTicks = nTicks + 1;
        if (i >= n) { ... return 0; }
        int size = subsetSumAux(A, i + 1, n, sum + A[i]);
        ...
    }

Supported constructs: global ``int`` declarations, ``int``/``void``
procedures with ``int`` and ``int *`` (array) parameters, local declarations,
assignments (including ``+=``, ``-=``, ``++``, ``--`` sugar), ``if``/``else``,
``while``, ``for``, ``do``/``while``, ``return``, ``assert``, ``assume``,
calls (in statement or expression position), ``nondet()`` / ``nondet(lo, hi)``
/ ``nondet_bool()`` / ``*`` non-determinism, ``min``/``max``, the ternary
operator, array reads/writes, and ``//`` / ``/* */`` comments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from .ast import (
    ArrayRead,
    ArrayWrite,
    Assert,
    Assign,
    Assume,
    BinOp,
    Block,
    BoolLit,
    BoolOp,
    CallExpr,
    CallStmt,
    Compare,
    Cond,
    Expr,
    GlobalDecl,
    Havoc,
    If,
    IntLit,
    MinMax,
    Nondet,
    NondetBool,
    NotCond,
    Parameter,
    Procedure,
    Program,
    Return,
    Stmt,
    Ternary,
    UnaryNeg,
    VarDecl,
    VarRef,
    While,
)

__all__ = ["ParseError", "parse_program", "parse_procedure_body", "tokenize"]


class ParseError(Exception):
    """Raised on malformed input, with a line number when available."""


_KEYWORDS = {
    "int",
    "void",
    "bool",
    "if",
    "else",
    "while",
    "do",
    "for",
    "return",
    "assert",
    "assume",
    "true",
    "false",
    "nondet",
    "nondet_bool",
    "min",
    "max",
}

_TOKEN_PATTERN = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<number>\d+)
  | (?P<identifier>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<symbol>\+\+|--|\+=|-=|\*=|/=|==|!=|<=|>=|&&|\|\||[-+*/%<>=!;,(){}\[\]?:&|])
  | (?P<whitespace>\s+)
  | (?P<error>.)
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'number' | 'identifier' | 'keyword' | 'symbol' | 'eof'
    text: str
    line: int


def tokenize(source: str) -> list[Token]:
    """Tokenize source text, dropping comments and whitespace."""
    tokens: list[Token] = []
    line = 1
    for match in _TOKEN_PATTERN.finditer(source):
        kind = match.lastgroup
        text = match.group()
        if kind in ("whitespace", "comment"):
            line += text.count("\n")
            continue
        if kind == "error":
            raise ParseError(f"line {line}: unexpected character {text!r}")
        if kind == "identifier" and text in _KEYWORDS:
            kind = "keyword"
        tokens.append(Token(kind, text, line))
        line += text.count("\n")
    tokens.append(Token("eof", "", line))
    return tokens


def _at(node, line: int):
    """Attach a source line to a freshly parsed node (attribution only).

    Nodes built by desugaring keep the first line they were given (the
    surface statement's), so re-wrapping never moves a diagnostic.
    """
    if node.line is None:
        object.__setattr__(node, "line", line)
    return node


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #
    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, text: str) -> bool:
        return self.peek().text == text

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        token = self.peek()
        if token.text != text:
            raise ParseError(
                f"line {token.line}: expected {text!r} but found {token.text!r}"
            )
        return self.advance()

    def expect_identifier(self) -> str:
        token = self.peek()
        if token.kind != "identifier":
            raise ParseError(
                f"line {token.line}: expected an identifier but found {token.text!r}"
            )
        self.advance()
        return token.text

    # ------------------------------------------------------------------ #
    # Top level
    # ------------------------------------------------------------------ #
    def parse_program(self) -> Program:
        globals_: list[GlobalDecl] = []
        procedures: list[Procedure] = []
        while self.peek().kind != "eof":
            if self.peek().text in ("int", "void", "bool"):
                # Disambiguate "int x;" (global) from "int f(...) {...}".
                if (
                    self.peek(1).kind == "identifier"
                    and self.peek(2).text == "("
                ):
                    procedures.append(self.parse_procedure())
                else:
                    globals_.extend(self.parse_global())
            else:
                token = self.peek()
                raise ParseError(
                    f"line {token.line}: expected a declaration, found {token.text!r}"
                )
        return Program(tuple(globals_), tuple(procedures))

    def parse_global(self) -> list[GlobalDecl]:
        self.advance()  # type keyword
        declarations: list[GlobalDecl] = []
        while True:
            line = self.peek().line
            name = self.expect_identifier()
            init: Optional[int] = None
            if self.accept("="):
                negative = self.accept("-")
                token = self.peek()
                if token.kind != "number":
                    raise ParseError(
                        f"line {token.line}: global initializers must be constants"
                    )
                self.advance()
                init = -int(token.text) if negative else int(token.text)
            declarations.append(GlobalDecl(name, init, line=line))
            if not self.accept(","):
                break
        self.expect(";")
        return declarations

    def parse_procedure(self) -> Procedure:
        line = self.peek().line
        kind = self.advance().text  # int | void | bool
        name = self.expect_identifier()
        self.expect("(")
        parameters: list[Parameter] = []
        if not self.check(")"):
            while True:
                if self.peek().text in ("int", "bool"):
                    self.advance()
                is_array = self.accept("*")
                parameter_name = self.expect_identifier()
                is_array = is_array or self.accept("[") and self.expect("]") is not None
                parameters.append(Parameter(parameter_name, bool(is_array)))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return Procedure(
            name, tuple(parameters), body, returns_value=(kind != "void"), line=line
        )

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def parse_block(self) -> Block:
        opening = self.expect("{")
        statements: list[Stmt] = []
        while not self.check("}"):
            statements.append(self.parse_statement())
        self.expect("}")
        return _at(Block(tuple(statements)), opening.line)

    def parse_statement(self) -> Stmt:
        line = self.peek().line
        return _at(self._parse_statement(), line)

    def _parse_statement(self) -> Stmt:
        token = self.peek()
        if token.text == "{":
            return self.parse_block()
        if token.text in ("int", "bool"):
            return self.parse_declaration()
        if token.text == "if":
            return self.parse_if()
        if token.text == "while":
            return self.parse_while()
        if token.text == "do":
            return self.parse_do_while()
        if token.text == "for":
            return self.parse_for()
        if token.text == "return":
            self.advance()
            if self.accept(";"):
                return Return(None)
            value = self.parse_expression()
            self.expect(";")
            return Return(value)
        if token.text == "assert":
            self.advance()
            self.expect("(")
            condition = self.parse_condition()
            self.expect(")")
            self.expect(";")
            return Assert(condition)
        if token.text == "assume":
            self.advance()
            self.expect("(")
            condition = self.parse_condition()
            self.expect(")")
            self.expect(";")
            return Assume(condition)
        if token.text == ";":
            self.advance()
            return Block(())
        return self.parse_simple_statement(require_semicolon=True)

    def parse_declaration(self) -> Stmt:
        self.advance()  # type keyword
        name = self.expect_identifier()
        init: Optional[Expr] = None
        if self.accept("="):
            init = self.parse_expression()
        self.expect(";")
        return VarDecl(name, init)

    def parse_if(self) -> Stmt:
        self.expect("if")
        self.expect("(")
        condition = self.parse_condition()
        self.expect(")")
        then_branch = self.parse_statement_as_block()
        else_branch: Optional[Block] = None
        if self.accept("else"):
            else_branch = self.parse_statement_as_block()
        return If(condition, then_branch, else_branch)

    def parse_statement_as_block(self) -> Block:
        statement = self.parse_statement()
        if isinstance(statement, Block):
            return statement
        block = Block((statement,))
        return _at(block, statement.line) if statement.line is not None else block

    def parse_while(self) -> Stmt:
        self.expect("while")
        self.expect("(")
        condition = self.parse_condition()
        self.expect(")")
        body = self.parse_statement_as_block()
        return While(condition, body)

    def parse_do_while(self) -> Stmt:
        # do { body } while (cond);  ==  body; while (cond) { body }
        self.expect("do")
        body = self.parse_statement_as_block()
        while_token = self.expect("while")
        self.expect("(")
        condition = self.parse_condition()
        self.expect(")")
        self.expect(";")
        return Block((body, _at(While(condition, body), while_token.line)))

    def parse_for(self) -> Stmt:
        # for (init; cond; update) body  ==  init; while (cond) { body; update }
        for_token = self.expect("for")
        self.expect("(")
        init: Stmt = Block(())
        if not self.check(";"):
            if self.peek().text in ("int", "bool"):
                self.advance()
                name = self.expect_identifier()
                value = None
                if self.accept("="):
                    value = self.parse_expression()
                init = VarDecl(name, value)
            else:
                init = self.parse_simple_statement(require_semicolon=False)
        self.expect(";")
        condition: Cond = BoolLit(True)
        if not self.check(";"):
            condition = self.parse_condition()
        self.expect(";")
        update: Stmt = Block(())
        if not self.check(")"):
            update = self.parse_simple_statement(require_semicolon=False)
        self.expect(")")
        body = self.parse_statement_as_block()
        _at(init, for_token.line)
        _at(update, for_token.line)
        loop_body = _at(Block(body.statements + (update,)), body.line or for_token.line)
        return Block((init, _at(While(condition, loop_body), for_token.line)))

    def parse_simple_statement(self, require_semicolon: bool) -> Stmt:
        """Assignments, compound assignments, increments, calls, array writes."""
        token = self.peek()
        if token.kind != "identifier":
            raise ParseError(
                f"line {token.line}: expected a statement, found {token.text!r}"
            )
        name = self.expect_identifier()
        statement: Stmt
        if self.check("["):
            self.expect("[")
            index = self.parse_expression()
            self.expect("]")
            self.expect("=")
            value = self.parse_expression()
            statement = ArrayWrite(name, index, value)
        elif self.accept("="):
            value = self.parse_expression()
            if isinstance(value, Nondet) and value.lower is None and value.upper is None:
                statement = Havoc(name)
            else:
                statement = Assign(name, value)
        elif self.accept("++"):
            statement = Assign(name, BinOp("+", VarRef(name), IntLit(1)))
        elif self.accept("--"):
            statement = Assign(name, BinOp("-", VarRef(name), IntLit(1)))
        elif self.peek().text in ("+=", "-=", "*=", "/="):
            operator = self.advance().text[0]
            value = self.parse_expression()
            statement = Assign(name, BinOp(operator, VarRef(name), value))
        elif self.check("("):
            arguments = self.parse_call_arguments()
            statement = CallStmt(CallExpr(name, arguments))
        else:
            raise ParseError(
                f"line {token.line}: cannot parse statement starting with {name!r}"
            )
        if require_semicolon:
            self.expect(";")
        return _at(statement, token.line)

    def parse_call_arguments(self) -> tuple[Expr, ...]:
        self.expect("(")
        arguments: list[Expr] = []
        if not self.check(")"):
            while True:
                arguments.append(self.parse_expression())
                if not self.accept(","):
                    break
        self.expect(")")
        return tuple(arguments)

    # ------------------------------------------------------------------ #
    # Conditions
    # ------------------------------------------------------------------ #
    def parse_condition(self) -> Cond:
        return self.parse_disjunction()

    def parse_disjunction(self) -> Cond:
        left = self.parse_conjunction()
        while self.accept("||"):
            right = self.parse_conjunction()
            left = BoolOp("||", left, right)
        return left

    def parse_conjunction(self) -> Cond:
        left = self.parse_condition_atom()
        while self.accept("&&"):
            right = self.parse_condition_atom()
            left = BoolOp("&&", left, right)
        return left

    def parse_condition_atom(self) -> Cond:
        token = self.peek()
        if self.accept("!"):
            return NotCond(self.parse_condition_atom())
        if token.text == "true":
            self.advance()
            return BoolLit(True)
        if token.text == "false":
            self.advance()
            return BoolLit(False)
        if token.text == "*" and self.peek(1).text in (")", "&&", "||"):
            self.advance()
            return NondetBool()
        if token.text == "nondet_bool":
            self.advance()
            self.expect("(")
            self.expect(")")
            return NondetBool()
        if token.text == "(":
            # Could be a parenthesized condition or a parenthesized expression.
            saved = self.position
            try:
                self.advance()
                condition = self.parse_condition()
                self.expect(")")
                if self.peek().text in ("==", "!=", "<", "<=", ">", ">="):
                    raise ParseError("re-parse as expression")
                return condition
            except ParseError:
                self.position = saved
        # Note: conditions compare *additive* expressions (not ternaries), so
        # that re-parsing the prefix of `c ? a : b` as a condition terminates.
        left = self.parse_additive()
        if self.peek().text in ("==", "!=", "<", "<=", ">", ">="):
            operator = self.advance().text
            right = self.parse_additive()
            return Compare(operator, left, right)
        # A bare expression used as a condition means "expr != 0"; a bare
        # unbounded nondet() used as a condition is a non-deterministic bool.
        if isinstance(left, Nondet) and left.lower is None and left.upper is None:
            return NondetBool()
        return Compare("!=", left, IntLit(0))

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def parse_expression(self) -> Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> Expr:
        # A ternary whose condition is an additive expression or nondet():
        # we first parse an additive expression; if '?' follows, reinterpret.
        start = self.position
        value = self.parse_additive()
        if self.check("?"):
            # Re-parse the prefix as a condition for full generality.
            self.position = start
            condition = self.parse_condition()
            self.expect("?")
            then_value = self.parse_expression()
            self.expect(":")
            else_value = self.parse_expression()
            return Ternary(condition, then_value, else_value)
        return value

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.peek().text in ("+", "-"):
            operator = self.advance().text
            right = self.parse_multiplicative()
            left = BinOp(operator, left, right)
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self.peek().text in ("*", "/"):
            operator = self.advance().text
            right = self.parse_unary()
            left = BinOp(operator, left, right)
        return left

    def parse_unary(self) -> Expr:
        if self.accept("-"):
            return UnaryNeg(self.parse_unary())
        if self.accept("+"):
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return IntLit(int(token.text))
        if token.text == "(":
            self.advance()
            value = self.parse_expression()
            self.expect(")")
            return value
        if token.text == "nondet":
            self.advance()
            arguments = self.parse_call_arguments()
            if not arguments:
                return Nondet()
            if len(arguments) == 2:
                return Nondet(arguments[0], arguments[1])
            raise ParseError(
                f"line {token.line}: nondet takes zero or two arguments"
            )
        if token.text in ("min", "max"):
            self.advance()
            arguments = self.parse_call_arguments()
            if len(arguments) != 2:
                raise ParseError(f"line {token.line}: {token.text} takes two arguments")
            return MinMax(token.text == "max", arguments[0], arguments[1])
        if token.kind == "identifier":
            name = self.expect_identifier()
            if self.check("("):
                arguments = self.parse_call_arguments()
                return CallExpr(name, arguments)
            if self.accept("["):
                index = self.parse_expression()
                self.expect("]")
                return ArrayRead(name, index)
            return VarRef(name)
        raise ParseError(
            f"line {token.line}: expected an expression, found {token.text!r}"
        )


def _validate_call_arities(program: Program) -> None:
    """Reject calls whose argument count disagrees with the callee.

    The program is fully known at this point, so arity mismatches are
    detectable statically; letting them through would leave the error to
    whatever consumer runs first (the interpreter now raises, but analyses
    would silently zero-fill).  Calls to procedures not defined in this
    program are left alone — the fragment parsers used by tests accept them.
    """
    signatures = {p.name: len(p.parameters) for p in program.procedures}

    def visit_expression(owner: str, expression: Expr, line: Optional[int]) -> None:
        if isinstance(expression, CallExpr):
            declared = signatures.get(expression.callee)
            if declared is not None and len(expression.args) != declared:
                where = f"line {line}: " if line is not None else ""
                raise ParseError(
                    f"{where}call to {expression.callee}() in {owner}() passes"
                    f" {len(expression.args)} argument(s) but its definition"
                    f" declares {declared} parameter(s)"
                )
            for argument in expression.args:
                visit_expression(owner, argument, line)
        elif isinstance(expression, (BinOp, MinMax)):
            visit_expression(owner, expression.left, line)
            visit_expression(owner, expression.right, line)
        elif isinstance(expression, UnaryNeg):
            visit_expression(owner, expression.operand, line)
        elif isinstance(expression, Nondet):
            for bound in (expression.lower, expression.upper):
                if bound is not None:
                    visit_expression(owner, bound, line)
        elif isinstance(expression, ArrayRead):
            visit_expression(owner, expression.index, line)
        elif isinstance(expression, Ternary):
            visit_condition(owner, expression.condition, line)
            visit_expression(owner, expression.then_value, line)
            visit_expression(owner, expression.else_value, line)

    def visit_condition(owner: str, condition: Cond, line: Optional[int]) -> None:
        if isinstance(condition, Compare):
            visit_expression(owner, condition.left, line)
            visit_expression(owner, condition.right, line)
        elif isinstance(condition, BoolOp):
            visit_condition(owner, condition.left, line)
            visit_condition(owner, condition.right, line)
        elif isinstance(condition, NotCond):
            visit_condition(owner, condition.operand, line)

    def visit_statement(owner: str, statement: Stmt) -> None:
        line = statement.line
        if isinstance(statement, Block):
            for child in statement.statements:
                visit_statement(owner, child)
        elif isinstance(statement, (VarDecl, Return)):
            if getattr(statement, "init", None) is not None:
                visit_expression(owner, statement.init, line)
            if getattr(statement, "value", None) is not None:
                visit_expression(owner, statement.value, line)
        elif isinstance(statement, Assign):
            visit_expression(owner, statement.value, line)
        elif isinstance(statement, ArrayWrite):
            visit_expression(owner, statement.index, line)
            visit_expression(owner, statement.value, line)
        elif isinstance(statement, CallStmt):
            visit_expression(owner, statement.call, line)
        elif isinstance(statement, If):
            visit_condition(owner, statement.condition, line)
            visit_statement(owner, statement.then_branch)
            if statement.else_branch is not None:
                visit_statement(owner, statement.else_branch)
        elif isinstance(statement, While):
            visit_condition(owner, statement.condition, line)
            visit_statement(owner, statement.body)
        elif isinstance(statement, (Assert, Assume)):
            visit_condition(owner, statement.condition, line)

    for procedure in program.procedures:
        visit_statement(procedure.name, procedure.body)


def parse_program(source: str) -> Program:
    """Parse a complete program (globals + procedures)."""
    parser = _Parser(tokenize(source))
    program = parser.parse_program()
    _validate_call_arities(program)
    return program


def parse_procedure_body(source: str) -> Block:
    """Parse a brace-delimited statement block (used by tests)."""
    parser = _Parser(tokenize(source))
    block = parser.parse_block()
    token = parser.peek()
    if token.kind != "eof":
        raise ParseError(f"line {token.line}: trailing input {token.text!r}")
    return block
