"""Call graphs, strongly connected components, and analysis order.

§4 of the paper: "we first compute and collapse the strongly connected
components of the call graph of P and topologically sort the collapsed
graph.  Our analysis then works on the strongly connected components of the
call graph in a single pass, in a topological order."  This module provides
exactly that structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from . import ast

__all__ = ["CallGraph", "build_call_graph"]


def _calls_in_expression(expression: ast.Expr) -> set[str]:
    calls: set[str] = set()
    if isinstance(expression, ast.CallExpr):
        calls.add(expression.callee)
        for argument in expression.args:
            calls |= _calls_in_expression(argument)
    elif isinstance(expression, ast.BinOp):
        calls |= _calls_in_expression(expression.left)
        calls |= _calls_in_expression(expression.right)
    elif isinstance(expression, ast.UnaryNeg):
        calls |= _calls_in_expression(expression.operand)
    elif isinstance(expression, ast.MinMax):
        calls |= _calls_in_expression(expression.left)
        calls |= _calls_in_expression(expression.right)
    elif isinstance(expression, ast.Ternary):
        calls |= _calls_in_expression(expression.then_value)
        calls |= _calls_in_expression(expression.else_value)
    elif isinstance(expression, ast.Nondet):
        if expression.lower is not None:
            calls |= _calls_in_expression(expression.lower)
        if expression.upper is not None:
            calls |= _calls_in_expression(expression.upper)
    elif isinstance(expression, ast.ArrayRead):
        calls |= _calls_in_expression(expression.index)
    return calls


def _calls_in_statement(statement: ast.Stmt) -> set[str]:
    calls: set[str] = set()
    if isinstance(statement, ast.Block):
        for child in statement.statements:
            calls |= _calls_in_statement(child)
    elif isinstance(statement, (ast.Assign, ast.VarDecl)):
        value = statement.value if isinstance(statement, ast.Assign) else statement.init
        if value is not None:
            calls |= _calls_in_expression(value)
    elif isinstance(statement, ast.CallStmt):
        calls |= _calls_in_expression(statement.call)
    elif isinstance(statement, ast.Return):
        if statement.value is not None:
            calls |= _calls_in_expression(statement.value)
    elif isinstance(statement, ast.If):
        calls |= _calls_in_statement(statement.then_branch)
        if statement.else_branch is not None:
            calls |= _calls_in_statement(statement.else_branch)
    elif isinstance(statement, ast.While):
        calls |= _calls_in_statement(statement.body)
    elif isinstance(statement, ast.ArrayWrite):
        calls |= _calls_in_expression(statement.value)
        calls |= _calls_in_expression(statement.index)
    return calls


@dataclass
class CallGraph:
    """The call graph of a program."""

    #: procedure name -> names of procedures it may call (defined ones only)
    edges: dict[str, frozenset[str]]

    def callees(self, name: str) -> frozenset[str]:
        return self.edges.get(name, frozenset())

    def strongly_connected_components(self) -> list[list[str]]:
        """SCCs in dependency-first (reverse topological) order.

        The returned order guarantees that whenever component ``A`` calls into
        component ``B`` (with ``A != B``), ``B`` appears before ``A`` — i.e.
        callees are analysed before their callers, the order §4 requires.
        """
        return _tarjan(self.edges)

    def is_recursive(self, component: Sequence[str]) -> bool:
        """Whether a component is (mutually or directly) recursive."""
        members = set(component)
        if len(members) > 1:
            return True
        (only,) = members
        return only in self.callees(only)

    def recursive_procedures(self) -> frozenset[str]:
        out: set[str] = set()
        for component in self.strongly_connected_components():
            if self.is_recursive(component):
                out |= set(component)
        return frozenset(out)

    def __str__(self) -> str:
        lines = []
        for name in sorted(self.edges):
            callees = ", ".join(sorted(self.edges[name])) or "-"
            lines.append(f"{name} -> {callees}")
        return "\n".join(lines)


def build_call_graph(program: ast.Program) -> CallGraph:
    """Build the call graph (edges restricted to defined procedures)."""
    defined = set(program.procedure_names)
    edges: dict[str, frozenset[str]] = {}
    for procedure in program.procedures:
        calls = _calls_in_statement(procedure.body) & defined
        edges[procedure.name] = frozenset(calls)
    return CallGraph(edges)


def _tarjan(graph: Mapping[str, Iterable[str]]) -> list[list[str]]:
    """Iterative Tarjan SCC over string-keyed graphs, dependencies first."""
    index_counter = 0
    indices: dict[str, int] = {}
    lowlinks: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []

    def strongconnect(start: str) -> None:
        nonlocal index_counter
        work: list[tuple[str, int]] = [(start, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                indices[node] = index_counter
                lowlinks[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = sorted(s for s in graph.get(node, ()) if s in graph)
            for i in range(child_index, len(successors)):
                successor = successors[i]
                if successor not in indices:
                    work[-1] = (node, i + 1)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))

    for node in sorted(graph):
        if node not in indices:
            strongconnect(node)
    return components
