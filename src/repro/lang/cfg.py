"""Control-flow graphs for procedures.

The interprocedural analyses of the paper operate on weighted control-flow
graphs with two kinds of edges (§4.2): *weighted* edges carrying a transition
formula, and *call* edges ``(u, Q, v)`` recording the callee, the actual
arguments and where the return value goes.  :func:`build_cfg` translates a
procedure's AST into this form, hoisting nested call expressions into
temporaries first so that every call appears on its own edge.

Assertions do not affect control flow (the analysis is an over-approximation
of terminating executions); each ``assert`` is recorded as an
:class:`AssertionSite` so the assertion checker can later compute a path
summary to its location.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..formulas import TransitionFormula
from . import ast
from .semantics import assign_transition, assume_transition, havoc_transition

__all__ = [
    "WeightEdge",
    "CallEdge",
    "AssertionSite",
    "ControlFlowGraph",
    "build_cfg",
    "hoist_calls_in_procedure",
]


@dataclass(frozen=True)
class WeightEdge:
    """A CFG edge weighted with a transition formula.

    ``origin`` is the (possibly synthesized) AST statement the edge
    translates — ``None`` for purely structural edges (fallthrough, join,
    loop back).  Like ``ast.Stmt.line`` it is attribution-only metadata,
    excluded from equality and ``repr``; the lint passes use it to recover
    per-edge variable reads/writes and source lines.
    """

    source: int
    target: int
    transition: TransitionFormula
    label: str = ""
    origin: Optional[ast.Stmt] = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        return f"{self.source} -> {self.target} [{self.label}]"


@dataclass(frozen=True)
class CallEdge:
    """A CFG call edge ``(u, callee(args), v)`` storing the result variable."""

    source: int
    target: int
    callee: str
    arguments: tuple[ast.Expr, ...]
    result: Optional[str] = None
    label: str = ""
    origin: Optional[ast.Stmt] = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.arguments)
        lhs = f"{self.result} = " if self.result else ""
        return f"{self.source} -> {self.target} [{lhs}{self.callee}({args})]"


@dataclass(frozen=True)
class AssertionSite:
    """An assertion inside a procedure, located at a CFG vertex."""

    procedure: str
    vertex: int
    condition: ast.Cond
    text: str

    def __str__(self) -> str:
        return f"assert({self.text}) at {self.procedure}:{self.vertex}"


@dataclass
class ControlFlowGraph:
    """A per-procedure control-flow graph."""

    procedure: str
    entry: int
    exit: int
    vertices: set[int] = field(default_factory=set)
    weight_edges: list[WeightEdge] = field(default_factory=list)
    call_edges: list[CallEdge] = field(default_factory=list)
    assertions: list[AssertionSite] = field(default_factory=list)
    parameters: tuple[str, ...] = ()
    locals: tuple[str, ...] = ()
    returns_value: bool = True

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def edges(self) -> list:
        return list(self.weight_edges) + list(self.call_edges)

    def callees(self) -> frozenset[str]:
        return frozenset(edge.callee for edge in self.call_edges)

    def successors(self, vertex: int):
        for edge in self.weight_edges:
            if edge.source == vertex:
                yield edge
        for edge in self.call_edges:
            if edge.source == vertex:
                yield edge

    def variables(self, global_names: Iterable[str]) -> tuple[str, ...]:
        """All program variables in scope inside this procedure."""
        names: list[str] = list(global_names)
        for name in self.parameters + self.locals + ("return",):
            if name not in names:
                names.append(name)
        return tuple(names)

    def __str__(self) -> str:
        lines = [f"cfg {self.procedure}: entry={self.entry} exit={self.exit}"]
        lines += [f"  {edge}" for edge in self.weight_edges]
        lines += [f"  {edge}" for edge in self.call_edges]
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Call hoisting
# ---------------------------------------------------------------------- #
def _inherit_line(statements: Sequence[ast.Stmt], line: Optional[int]):
    """Stamp hoisted statements with their surface statement's source line."""
    if line is not None:
        for statement in statements:
            if statement.line is None:
                object.__setattr__(statement, "line", line)
    return statements


class _Hoister:
    """Rewrites statements so calls only occur as the whole right-hand side
    of an assignment or as a call statement."""

    def __init__(self) -> None:
        self.counter = itertools.count()
        self.new_locals: list[str] = []

    def fresh_name(self) -> str:
        name = f"__call{next(self.counter)}"
        self.new_locals.append(name)
        return name

    # -- expressions ---------------------------------------------------- #
    def hoist_expression(self, expression: ast.Expr) -> tuple[ast.Expr, list[ast.Stmt]]:
        if isinstance(expression, ast.CallExpr):
            arguments, prelude = self.hoist_arguments(expression.args)
            name = self.fresh_name()
            prelude.append(ast.Assign(name, ast.CallExpr(expression.callee, arguments)))
            return ast.VarRef(name), prelude
        if isinstance(expression, ast.BinOp):
            left, prelude_left = self.hoist_expression(expression.left)
            right, prelude_right = self.hoist_expression(expression.right)
            return ast.BinOp(expression.op, left, right), prelude_left + prelude_right
        if isinstance(expression, ast.UnaryNeg):
            inner, prelude = self.hoist_expression(expression.operand)
            return ast.UnaryNeg(inner), prelude
        if isinstance(expression, ast.MinMax):
            left, prelude_left = self.hoist_expression(expression.left)
            right, prelude_right = self.hoist_expression(expression.right)
            return (
                ast.MinMax(expression.is_max, left, right),
                prelude_left + prelude_right,
            )
        if isinstance(expression, ast.Ternary):
            # Calls inside ternaries are not hoisted through the condition;
            # hoist only the branch values (sufficient for the benchmarks).
            then_value, prelude_then = self.hoist_expression(expression.then_value)
            else_value, prelude_else = self.hoist_expression(expression.else_value)
            return (
                ast.Ternary(expression.condition, then_value, else_value),
                prelude_then + prelude_else,
            )
        if isinstance(expression, ast.Nondet):
            preludes: list[ast.Stmt] = []
            lower = upper = None
            if expression.lower is not None:
                lower, prelude = self.hoist_expression(expression.lower)
                preludes += prelude
            if expression.upper is not None:
                upper, prelude = self.hoist_expression(expression.upper)
                preludes += prelude
            return ast.Nondet(lower, upper), preludes
        if isinstance(expression, ast.ArrayRead):
            index, prelude = self.hoist_expression(expression.index)
            return ast.ArrayRead(expression.array, index), prelude
        return expression, []

    def hoist_arguments(
        self, arguments: Sequence[ast.Expr]
    ) -> tuple[tuple[ast.Expr, ...], list[ast.Stmt]]:
        hoisted: list[ast.Expr] = []
        prelude: list[ast.Stmt] = []
        for argument in arguments:
            new_argument, argument_prelude = self.hoist_expression(argument)
            hoisted.append(new_argument)
            prelude.extend(argument_prelude)
        return tuple(hoisted), prelude

    # -- statements ----------------------------------------------------- #
    def hoist_statement(self, statement: ast.Stmt) -> list[ast.Stmt]:
        if isinstance(statement, ast.Block):
            return [ast.Block(tuple(self._hoist_block(statement)), line=statement.line)]
        if isinstance(statement, (ast.Assign, ast.VarDecl)):
            value = statement.value if isinstance(statement, ast.Assign) else statement.init
            if value is None:
                return [statement]
            if isinstance(value, ast.CallExpr):
                arguments, prelude = self.hoist_arguments(value.args)
                call = ast.CallExpr(value.callee, arguments)
                if isinstance(statement, ast.VarDecl):
                    return prelude + [ast.VarDecl(statement.name), ast.Assign(statement.name, call)]
                return prelude + [ast.Assign(statement.name, call)]
            new_value, prelude = self.hoist_expression(value)
            if isinstance(statement, ast.VarDecl):
                return prelude + [ast.VarDecl(statement.name, new_value)]
            return prelude + [ast.Assign(statement.name, new_value)]
        if isinstance(statement, ast.CallStmt):
            arguments, prelude = self.hoist_arguments(statement.call.args)
            return prelude + [ast.CallStmt(ast.CallExpr(statement.call.callee, arguments))]
        if isinstance(statement, ast.Return):
            if statement.value is None:
                return [statement]
            if isinstance(statement.value, ast.CallExpr):
                arguments, prelude = self.hoist_arguments(statement.value.args)
                name = self.fresh_name()
                call = ast.CallExpr(statement.value.callee, arguments)
                return prelude + [
                    ast.VarDecl(name),
                    ast.Assign(name, call),
                    ast.Return(ast.VarRef(name)),
                ]
            value, prelude = self.hoist_expression(statement.value)
            return prelude + [ast.Return(value)]
        if isinstance(statement, ast.If):
            then_branch = ast.Block(tuple(self._hoist_block(statement.then_branch)))
            else_branch = (
                ast.Block(tuple(self._hoist_block(statement.else_branch)))
                if statement.else_branch is not None
                else None
            )
            return [ast.If(statement.condition, then_branch, else_branch)]
        if isinstance(statement, ast.While):
            return [ast.While(statement.condition, ast.Block(tuple(self._hoist_block(statement.body))))]
        if isinstance(statement, ast.ArrayWrite):
            value, prelude = self.hoist_expression(statement.value)
            index, index_prelude = self.hoist_expression(statement.index)
            return prelude + index_prelude + [ast.ArrayWrite(statement.array, index, value)]
        return [statement]

    def _hoist_block(self, block: ast.Block) -> list[ast.Stmt]:
        out: list[ast.Stmt] = []
        for child in block.statements:
            out.extend(_inherit_line(self.hoist_statement(child), child.line))
        return out


def hoist_calls_in_procedure(procedure: ast.Procedure) -> tuple[ast.Procedure, tuple[str, ...]]:
    """Hoist nested call expressions; returns the new procedure and new locals."""
    hoister = _Hoister()
    body = ast.Block(tuple(hoister._hoist_block(procedure.body)), line=procedure.body.line)
    return (
        ast.Procedure(
            procedure.name,
            procedure.parameters,
            body,
            procedure.returns_value,
            line=procedure.line,
        ),
        tuple(hoister.new_locals),
    )


# ---------------------------------------------------------------------- #
# CFG construction
# ---------------------------------------------------------------------- #
class _CfgBuilder:
    def __init__(self, procedure: ast.Procedure):
        self.procedure = procedure
        self.counter = itertools.count()
        self.cfg = ControlFlowGraph(
            procedure=procedure.name,
            entry=0,
            exit=1,
            vertices={0, 1},
            parameters=procedure.scalar_parameters,
            returns_value=procedure.returns_value,
        )
        next(self.counter)  # 0
        next(self.counter)  # 1

    def new_vertex(self) -> int:
        vertex = next(self.counter)
        self.cfg.vertices.add(vertex)
        return vertex

    def add_weight(
        self,
        source: int,
        target: int,
        transition: TransitionFormula,
        label: str,
        origin: Optional[ast.Stmt] = None,
    ) -> None:
        self.cfg.weight_edges.append(WeightEdge(source, target, transition, label, origin))

    def add_call(
        self,
        source: int,
        target: int,
        callee: str,
        arguments: tuple[ast.Expr, ...],
        result: Optional[str],
        origin: Optional[ast.Stmt] = None,
    ) -> None:
        label = f"{result + ' = ' if result else ''}{callee}(...)"
        self.cfg.call_edges.append(
            CallEdge(source, target, callee, arguments, result, label, origin)
        )

    # -- statement translation ------------------------------------------ #
    def build(self) -> ControlFlowGraph:
        last = self.translate_block(self.procedure.body, self.cfg.entry)
        # Implicit fall-through to the exit vertex.
        self.add_weight(last, self.cfg.exit, TransitionFormula.identity(), "fallthrough")
        return self.cfg

    def translate_block(self, block: ast.Block, current: int) -> int:
        for statement in block.statements:
            current = self.translate_statement(statement, current)
        return current

    def translate_statement(self, statement: ast.Stmt, current: int) -> int:
        if isinstance(statement, ast.Block):
            return self.translate_block(statement, current)
        if isinstance(statement, ast.VarDecl):
            target = self.new_vertex()
            if statement.init is None:
                self.add_weight(
                    current,
                    target,
                    havoc_transition(statement.name),
                    f"havoc {statement.name}",
                    origin=statement,
                )
            else:
                self.add_weight(
                    current,
                    target,
                    assign_transition(statement.name, statement.init),
                    str(statement),
                    origin=statement,
                )
            return target
        if isinstance(statement, ast.Assign):
            target = self.new_vertex()
            if isinstance(statement.value, ast.CallExpr):
                self.add_call(
                    current,
                    target,
                    statement.value.callee,
                    statement.value.args,
                    statement.name,
                    origin=statement,
                )
            else:
                self.add_weight(
                    current,
                    target,
                    assign_transition(statement.name, statement.value),
                    str(statement),
                    origin=statement,
                )
            return target
        if isinstance(statement, ast.Havoc):
            target = self.new_vertex()
            self.add_weight(
                current, target, havoc_transition(statement.name), str(statement), origin=statement
            )
            return target
        if isinstance(statement, ast.ArrayWrite):
            target = self.new_vertex()
            self.add_weight(
                current, target, TransitionFormula.identity(), str(statement), origin=statement
            )
            return target
        if isinstance(statement, ast.CallStmt):
            target = self.new_vertex()
            self.add_call(
                current,
                target,
                statement.call.callee,
                statement.call.args,
                None,
                origin=statement,
            )
            return target
        if isinstance(statement, ast.Assume):
            target = self.new_vertex()
            self.add_weight(
                current,
                target,
                assume_transition(statement.condition),
                str(statement),
                origin=statement,
            )
            return target
        if isinstance(statement, ast.Assert):
            self.cfg.assertions.append(
                AssertionSite(self.procedure.name, current, statement.condition, str(statement.condition))
            )
            target = self.new_vertex()
            self.add_weight(
                current, target, TransitionFormula.identity(), str(statement), origin=statement
            )
            return target
        if isinstance(statement, ast.Return):
            if statement.value is not None:
                middle = self.new_vertex()
                self.add_weight(
                    current,
                    middle,
                    assign_transition("return", statement.value),
                    str(statement),
                    origin=statement,
                )
                current = middle
            self.add_weight(current, self.cfg.exit, TransitionFormula.identity(), "return")
            # Code after a return is unreachable; give it a fresh vertex.
            return self.new_vertex()
        if isinstance(statement, ast.If):
            join = self.new_vertex()
            then_entry = self.new_vertex()
            self.add_weight(
                current,
                then_entry,
                assume_transition(statement.condition),
                f"assume {statement.condition}",
                origin=ast.Assume(statement.condition, line=statement.line),
            )
            then_exit = self.translate_block(statement.then_branch, then_entry)
            self.add_weight(then_exit, join, TransitionFormula.identity(), "endif")
            negated = ast.NotCond(statement.condition)
            if statement.else_branch is not None:
                else_entry = self.new_vertex()
                self.add_weight(
                    current,
                    else_entry,
                    assume_transition(negated),
                    f"assume {negated}",
                    origin=ast.Assume(negated, line=statement.line),
                )
                else_exit = self.translate_block(statement.else_branch, else_entry)
                self.add_weight(else_exit, join, TransitionFormula.identity(), "endelse")
            else:
                self.add_weight(
                    current,
                    join,
                    assume_transition(negated),
                    f"assume {negated}",
                    origin=ast.Assume(negated, line=statement.line),
                )
            return join
        if isinstance(statement, ast.While):
            head = current
            after = self.new_vertex()
            body_entry = self.new_vertex()
            self.add_weight(
                head,
                body_entry,
                assume_transition(statement.condition),
                f"assume {statement.condition}",
                origin=ast.Assume(statement.condition, line=statement.line),
            )
            body_exit = self.translate_block(statement.body, body_entry)
            self.add_weight(body_exit, head, TransitionFormula.identity(), "loop back")
            negated = ast.NotCond(statement.condition)
            self.add_weight(
                head,
                after,
                assume_transition(negated),
                f"assume {negated}",
                origin=ast.Assume(negated, line=statement.line),
            )
            return after
        raise TypeError(f"unsupported statement {statement!r}")


def build_cfg(procedure: ast.Procedure) -> ControlFlowGraph:
    """Build the control-flow graph of a procedure (after call hoisting)."""
    hoisted, extra_locals = hoist_calls_in_procedure(procedure)
    builder = _CfgBuilder(hoisted)
    cfg = builder.build()
    cfg.locals = tuple(dict.fromkeys(hoisted.local_variables() + extra_locals))
    return cfg
