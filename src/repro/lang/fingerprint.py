"""Content fingerprints of procedures, for incremental re-analysis.

A procedure's summary depends on exactly three things: its own definition,
the global declarations in scope, and the summaries of the (defined)
procedures it calls.  This module distils that dependency cone into one
SHA-256 hex digest per procedure — the *fingerprint* — such that

* editing a procedure body changes its own fingerprint and the fingerprint
  of every direct and transitive **caller** (their cones include it), while
* every procedure outside the edited one's caller cone keeps its
  fingerprint, so a cached summary for it can be reused verbatim.

Mutually recursive procedures are summarized together (one SCC of the call
graph is one unit of analysis, §4 of the paper), so all members of an SCC
share the same fingerprint material: editing any member invalidates the
whole component.

Fingerprints are pure functions of the parsed AST — host-, process- and
ordering-independent — which makes them safe to use as cache keys shared
between machines, mirroring the engine's content-addressed result cache.
"""

from __future__ import annotations

import hashlib

from . import ast
from .callgraph import build_call_graph

__all__ = ["procedure_fingerprints", "fingerprint_cone"]


def _sha256(*parts: str) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def _body_hashes(program: ast.Program) -> dict[str, str]:
    """Hash of each procedure's own definition (plus the globals in scope).

    The AST nodes are frozen dataclasses, so ``repr`` is a canonical,
    whitespace- and comment-insensitive serialization of the definition.
    The global declarations are folded into every hash because they name
    the variables a summary ranges over.
    """
    globals_material = repr(program.globals)
    return {
        procedure.name: _sha256(globals_material, repr(procedure))
        for procedure in program.procedures
    }


def procedure_fingerprints(program: ast.Program) -> dict[str, str]:
    """The fingerprint of every procedure of ``program``.

    Fingerprints are computed over the call-graph SCC DAG in dependency
    order: an SCC's material is the sorted ``(name, body hash)`` pairs of
    its members plus the sorted fingerprints of the procedures it calls
    outside the component — so a fingerprint transitively covers the whole
    dependency cone of its procedure.
    """
    graph = build_call_graph(program)
    own = _body_hashes(program)
    fingerprints: dict[str, str] = {}
    for component in graph.strongly_connected_components():
        members = set(component)
        material = [f"{name}={own[name]}" for name in sorted(members)]
        external = sorted(
            {
                fingerprints[callee]
                for name in members
                for callee in graph.callees(name)
                if callee not in members
            }
        )
        component_print = _sha256(*material, *external)
        for name in component:
            # Members of one SCC are analysed together and share material;
            # the name salt keeps per-procedure keys distinct.
            fingerprints[name] = _sha256(component_print, name)
    return fingerprints


def fingerprint_cone(
    before: dict[str, str], after: dict[str, str]
) -> tuple[frozenset[str], frozenset[str]]:
    """Split ``after``'s procedures into (changed cone, reusable rest).

    A procedure is *changed* when it is new or its fingerprint differs from
    ``before``; by construction of :func:`procedure_fingerprints` the
    changed set is closed under "is called by" — it is exactly the edited
    procedures' caller cone.
    """
    changed = frozenset(
        name for name, print_ in after.items() if before.get(name) != print_
    )
    return changed, frozenset(after) - changed
