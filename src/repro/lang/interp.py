"""A concrete interpreter for the mini-language.

The interpreter is the repository's ground-truth oracle: tests and benchmarks
run the benchmark programs concretely (resolving non-determinism with a seeded
random generator) and check that the bounds CHORA computes really do
over-approximate the observed behaviour (cost counters, return values,
recursion depths).

Semantics notes
---------------
* All variables are mathematical integers (no overflow).
* ``nondet()`` draws from the configurable half-open ``nondet_range``;
  ``nondet(lo, hi)`` draws uniformly from ``[lo, hi)``.  An *empty* range
  (``hi <= lo``) denotes no value at all: like a failed ``assume``, it
  blocks the execution (:class:`AssumeBlocked`) instead of fabricating a
  value outside the range — fabricating one would poison every differential
  oracle built on this interpreter.
* Division is floor division (Python ``//``), matching the relational model
  in :mod:`repro.lang.semantics` for positive constant divisors.
* Array reads draw a non-deterministic value unless the array was passed as a
  concrete Python sequence, in which case real contents are used.
* Assertion failures raise :class:`AssertionFailure`; blocked ``assume``
  statements raise the distinct :class:`AssumeBlocked` (a discarded run, not
  a bug); resource limits raise :class:`ExecutionLimitExceeded`; calls whose
  argument count does not match the callee raise :class:`InterpreterError`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from . import ast

__all__ = [
    "AssertionFailure",
    "AssumeBlocked",
    "ExecutionLimitExceeded",
    "ExecutionResult",
    "Interpreter",
    "InterpreterError",
]


class AssertionFailure(Exception):
    """A program assertion evaluated to false."""


class AssumeBlocked(Exception):
    """The execution was blocked: a failed ``assume`` or an empty nondet range.

    Distinct from :class:`AssertionFailure` on purpose — a blocked execution
    carries no information about the program (the chosen inputs simply do not
    reach the interesting states) and differential oracles must *discard*
    such runs, whereas a failed assertion on admitted inputs is a real
    counterexample.
    """


class InterpreterError(Exception):
    """The program is malformed in a way the interpreter refuses to paper
    over (currently: call-arity mismatches)."""


class ExecutionLimitExceeded(Exception):
    """The step or recursion-depth limit was exceeded."""


class _ReturnSignal(Exception):
    """Internal control-flow signal for ``return``."""

    def __init__(self, value: Optional[int]):
        super().__init__()
        self.value = value


@dataclass
class ExecutionResult:
    """Outcome of running one procedure."""

    return_value: Optional[int]
    globals: dict[str, int]
    steps: int
    max_recursion_depth: int
    #: per-procedure peak of *simultaneously live* frames of that procedure
    #: (the concrete counterpart of the paper's height ``H``: a procedure
    #: whose depth bound is ``B`` admits at most ``B`` nested frames).
    procedure_depths: dict[str, int] = field(default_factory=dict)


@dataclass
class Interpreter:
    """Concrete executor for programs."""

    program: ast.Program
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    max_steps: int = 1_000_000
    max_depth: int = 10_000
    nondet_range: tuple[int, int] = (-16, 16)

    def __post_init__(self) -> None:
        self._globals: dict[str, int] = {}
        self._steps = 0
        self._max_depth_seen = 0
        self._arrays: dict[str, Sequence[int]] = {}
        self._live_frames: dict[str, int] = {}
        self._peak_frames: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def run(
        self,
        procedure_name: str,
        arguments: Mapping[str, int] | Sequence[int] = (),
        globals_init: Mapping[str, int] | None = None,
        arrays: Mapping[str, Sequence[int]] | None = None,
    ) -> ExecutionResult:
        """Run a procedure from a fresh global state."""
        self._steps = 0
        self._max_depth_seen = 0
        self._arrays = dict(arrays or {})
        self._live_frames = {}
        self._peak_frames = {}
        self._globals = {g.name: (g.init or 0) for g in self.program.globals}
        if globals_init:
            self._globals.update(globals_init)
        procedure = self.program.procedure(procedure_name)
        bound = self._bind_arguments(procedure, arguments)
        value = self._call(procedure, bound, depth=1)
        return ExecutionResult(
            return_value=value,
            globals=dict(self._globals),
            steps=self._steps,
            max_recursion_depth=self._max_depth_seen,
            procedure_depths=dict(self._peak_frames),
        )

    # ------------------------------------------------------------------ #
    # Procedure calls
    # ------------------------------------------------------------------ #
    def _bind_arguments(
        self, procedure: ast.Procedure, arguments: Mapping[str, int] | Sequence[int]
    ) -> dict[str, int]:
        scalars = procedure.scalar_parameters
        if isinstance(arguments, Mapping):
            unknown = sorted(set(arguments) - set(scalars))
            missing = sorted(set(scalars) - set(arguments))
            if unknown or missing:
                raise InterpreterError(
                    f"arguments for {procedure.name}() do not match its scalar"
                    f" parameters {list(scalars)}:"
                    f" missing {missing or 'none'}, unknown {unknown or 'none'}"
                )
            return {name: int(arguments[name]) for name in scalars}
        values = list(arguments)
        if len(values) != len(scalars):
            raise InterpreterError(
                f"{procedure.name}() takes {len(scalars)} scalar argument(s)"
                f" {list(scalars)} but {len(values)} were given"
            )
        return dict(zip(scalars, (int(value) for value in values)))

    def _call(self, procedure: ast.Procedure, locals_: dict[str, int], depth: int) -> Optional[int]:
        if depth > self.max_depth:
            raise ExecutionLimitExceeded(f"recursion depth exceeded {self.max_depth}")
        self._max_depth_seen = max(self._max_depth_seen, depth)
        name = procedure.name
        live = self._live_frames.get(name, 0) + 1
        self._live_frames[name] = live
        if live > self._peak_frames.get(name, 0):
            self._peak_frames[name] = live
        frame = dict(locals_)
        try:
            self._execute_block(procedure.body, frame, depth)
        except _ReturnSignal as signal:
            return signal.value
        finally:
            self._live_frames[name] = live - 1
        return None

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise ExecutionLimitExceeded(f"step limit exceeded {self.max_steps}")

    def _execute_block(self, block: ast.Block, frame: dict[str, int], depth: int) -> None:
        for statement in block.statements:
            self._execute(statement, frame, depth)

    def _execute(self, statement: ast.Stmt, frame: dict[str, int], depth: int) -> None:
        self._tick()
        if isinstance(statement, ast.Block):
            self._execute_block(statement, frame, depth)
        elif isinstance(statement, ast.VarDecl):
            frame[statement.name] = (
                self._evaluate(statement.init, frame, depth) if statement.init is not None else 0
            )
        elif isinstance(statement, ast.Assign):
            self._store(statement.name, self._evaluate(statement.value, frame, depth), frame)
        elif isinstance(statement, ast.Havoc):
            self._store(statement.name, self._draw_nondet(), frame)
        elif isinstance(statement, ast.ArrayWrite):
            self._evaluate(statement.value, frame, depth)  # effects only
        elif isinstance(statement, ast.CallStmt):
            self._evaluate(statement.call, frame, depth)
        elif isinstance(statement, ast.If):
            if self._evaluate_condition(statement.condition, frame, depth):
                self._execute_block(statement.then_branch, frame, depth)
            elif statement.else_branch is not None:
                self._execute_block(statement.else_branch, frame, depth)
        elif isinstance(statement, ast.While):
            while self._evaluate_condition(statement.condition, frame, depth):
                self._execute_block(statement.body, frame, depth)
                self._tick()
        elif isinstance(statement, ast.Return):
            value = (
                self._evaluate(statement.value, frame, depth)
                if statement.value is not None
                else None
            )
            raise _ReturnSignal(value)
        elif isinstance(statement, ast.Assert):
            if not self._evaluate_condition(statement.condition, frame, depth):
                raise AssertionFailure(str(statement.condition))
        elif isinstance(statement, ast.Assume):
            # A failed assume blocks the execution: the chosen inputs are
            # outside the program's admitted space.  Raising the distinct
            # AssumeBlocked (never AssertionFailure) lets oracles discard
            # the run instead of miscounting it as a counterexample.
            if not self._evaluate_condition(statement.condition, frame, depth):
                raise AssumeBlocked(f"assume({statement.condition}) blocked")
        else:
            raise TypeError(f"unsupported statement {statement!r}")

    def _store(self, name: str, value: int, frame: dict[str, int]) -> None:
        if name in frame:
            frame[name] = value
        elif name in self._globals:
            self._globals[name] = value
        else:
            frame[name] = value

    def _load(self, name: str, frame: dict[str, int]) -> int:
        if name in frame:
            return frame[name]
        if name in self._globals:
            return self._globals[name]
        raise KeyError(f"undefined variable {name!r}")

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _draw_nondet(self, lower: Optional[int] = None, upper: Optional[int] = None) -> int:
        # Both the explicit ``nondet(lo, hi)`` range and the configured
        # default are half-open ``[lo, hi)``.  An empty range denotes *no*
        # admissible value: block the execution exactly like a failed
        # assume.  (The old behaviour — clamping and returning ``lo`` —
        # produced a value outside the range, which is unsound as an
        # oracle: ``nondet(0, n)`` with ``n == 0`` must not yield 0.)
        low = lower if lower is not None else self.nondet_range[0]
        high = upper if upper is not None else self.nondet_range[1]
        if high <= low:
            raise AssumeBlocked(f"empty nondet range [{low}, {high})")
        return self.rng.randrange(low, high)

    def _evaluate(self, expression: ast.Expr, frame: dict[str, int], depth: int) -> int:
        if isinstance(expression, ast.IntLit):
            return expression.value
        if isinstance(expression, ast.VarRef):
            return self._load(expression.name, frame)
        if isinstance(expression, ast.UnaryNeg):
            return -self._evaluate(expression.operand, frame, depth)
        if isinstance(expression, ast.BinOp):
            left = self._evaluate(expression.left, frame, depth)
            right = self._evaluate(expression.right, frame, depth)
            if expression.op == "+":
                return left + right
            if expression.op == "-":
                return left - right
            if expression.op == "*":
                return left * right
            if expression.op == "/":
                if right == 0:
                    raise ZeroDivisionError("division by zero in interpreted program")
                return left // right
            raise TypeError(f"unsupported operator {expression.op!r}")
        if isinstance(expression, ast.Nondet):
            lower = (
                self._evaluate(expression.lower, frame, depth)
                if expression.lower is not None
                else None
            )
            upper = (
                self._evaluate(expression.upper, frame, depth)
                if expression.upper is not None
                else None
            )
            return self._draw_nondet(lower, upper)
        if isinstance(expression, ast.ArrayRead):
            array = self._arrays.get(expression.array)
            if array is not None:
                index = self._evaluate(expression.index, frame, depth)
                if 0 <= index < len(array):
                    return int(array[index])
            return self._draw_nondet()
        if isinstance(expression, ast.MinMax):
            left = self._evaluate(expression.left, frame, depth)
            right = self._evaluate(expression.right, frame, depth)
            return max(left, right) if expression.is_max else min(left, right)
        if isinstance(expression, ast.Ternary):
            if self._evaluate_condition(expression.condition, frame, depth):
                return self._evaluate(expression.then_value, frame, depth)
            return self._evaluate(expression.else_value, frame, depth)
        if isinstance(expression, ast.CallExpr):
            procedure = self.program.procedure(expression.callee)
            if len(expression.args) != len(procedure.parameters):
                # Zero-filling missing scalars (and dropping extras) would
                # silently run a different program than the one written.
                raise InterpreterError(
                    f"call {expression} passes {len(expression.args)}"
                    f" argument(s) but {procedure.name}() declares"
                    f" {len(procedure.parameters)} parameter(s)"
                )
            # Bind parameters positionally; arguments in array positions are
            # not evaluated (arrays carry no integer state).
            frame_in: dict[str, int] = {}
            for parameter, argument in zip(procedure.parameters, expression.args):
                if parameter.is_array:
                    continue
                frame_in[parameter.name] = self._evaluate(argument, frame, depth)
            result = self._call(procedure, frame_in, depth + 1)
            return result if result is not None else 0
        raise TypeError(f"unsupported expression {expression!r}")

    def _evaluate_condition(self, condition: ast.Cond, frame: dict[str, int], depth: int) -> bool:
        if isinstance(condition, ast.BoolLit):
            return condition.value
        if isinstance(condition, ast.NondetBool):
            return bool(self.rng.getrandbits(1))
        if isinstance(condition, ast.NotCond):
            return not self._evaluate_condition(condition.operand, frame, depth)
        if isinstance(condition, ast.BoolOp):
            if condition.op == "&&":
                return self._evaluate_condition(condition.left, frame, depth) and (
                    self._evaluate_condition(condition.right, frame, depth)
                )
            return self._evaluate_condition(condition.left, frame, depth) or (
                self._evaluate_condition(condition.right, frame, depth)
            )
        if isinstance(condition, ast.Compare):
            left = self._evaluate(condition.left, frame, depth)
            right = self._evaluate(condition.right, frame, depth)
            return {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[condition.op]
        raise TypeError(f"unsupported condition {condition!r}")
