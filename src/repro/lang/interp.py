"""A concrete interpreter for the mini-language.

The interpreter is the repository's ground-truth oracle: tests and benchmarks
run the benchmark programs concretely (resolving non-determinism with a seeded
random generator) and check that the bounds CHORA computes really do
over-approximate the observed behaviour (cost counters, return values,
recursion depths).

Semantics notes
---------------
* All variables are mathematical integers (no overflow).
* ``nondet()`` draws from a configurable range; ``nondet(lo, hi)`` draws
  uniformly from ``[lo, hi)``.
* Array reads draw a non-deterministic value unless the array was passed as a
  concrete Python sequence, in which case real contents are used.
* Assertion failures raise :class:`AssertionFailure`; resource limits raise
  :class:`ExecutionLimitExceeded`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from . import ast

__all__ = [
    "AssertionFailure",
    "ExecutionLimitExceeded",
    "ExecutionResult",
    "Interpreter",
]


class AssertionFailure(Exception):
    """A program assertion evaluated to false."""


class ExecutionLimitExceeded(Exception):
    """The step or recursion-depth limit was exceeded."""


class _ReturnSignal(Exception):
    """Internal control-flow signal for ``return``."""

    def __init__(self, value: Optional[int]):
        super().__init__()
        self.value = value


@dataclass
class ExecutionResult:
    """Outcome of running one procedure."""

    return_value: Optional[int]
    globals: dict[str, int]
    steps: int
    max_recursion_depth: int


@dataclass
class Interpreter:
    """Concrete executor for programs."""

    program: ast.Program
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    max_steps: int = 1_000_000
    max_depth: int = 10_000
    nondet_range: tuple[int, int] = (-16, 16)

    def __post_init__(self) -> None:
        self._globals: dict[str, int] = {}
        self._steps = 0
        self._max_depth_seen = 0
        self._arrays: dict[str, Sequence[int]] = {}

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def run(
        self,
        procedure_name: str,
        arguments: Mapping[str, int] | Sequence[int] = (),
        globals_init: Mapping[str, int] | None = None,
        arrays: Mapping[str, Sequence[int]] | None = None,
    ) -> ExecutionResult:
        """Run a procedure from a fresh global state."""
        self._steps = 0
        self._max_depth_seen = 0
        self._arrays = dict(arrays or {})
        self._globals = {g.name: (g.init or 0) for g in self.program.globals}
        if globals_init:
            self._globals.update(globals_init)
        procedure = self.program.procedure(procedure_name)
        bound = self._bind_arguments(procedure, arguments)
        value = self._call(procedure, bound, depth=1)
        return ExecutionResult(
            return_value=value,
            globals=dict(self._globals),
            steps=self._steps,
            max_recursion_depth=self._max_depth_seen,
        )

    # ------------------------------------------------------------------ #
    # Procedure calls
    # ------------------------------------------------------------------ #
    def _bind_arguments(
        self, procedure: ast.Procedure, arguments: Mapping[str, int] | Sequence[int]
    ) -> dict[str, int]:
        scalars = procedure.scalar_parameters
        if isinstance(arguments, Mapping):
            return {name: int(arguments.get(name, 0)) for name in scalars}
        values = list(arguments)
        bound: dict[str, int] = {}
        for index, name in enumerate(scalars):
            bound[name] = int(values[index]) if index < len(values) else 0
        return bound

    def _call(self, procedure: ast.Procedure, locals_: dict[str, int], depth: int) -> Optional[int]:
        if depth > self.max_depth:
            raise ExecutionLimitExceeded(f"recursion depth exceeded {self.max_depth}")
        self._max_depth_seen = max(self._max_depth_seen, depth)
        frame = dict(locals_)
        try:
            self._execute_block(procedure.body, frame, depth)
        except _ReturnSignal as signal:
            return signal.value
        return None

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise ExecutionLimitExceeded(f"step limit exceeded {self.max_steps}")

    def _execute_block(self, block: ast.Block, frame: dict[str, int], depth: int) -> None:
        for statement in block.statements:
            self._execute(statement, frame, depth)

    def _execute(self, statement: ast.Stmt, frame: dict[str, int], depth: int) -> None:
        self._tick()
        if isinstance(statement, ast.Block):
            self._execute_block(statement, frame, depth)
        elif isinstance(statement, ast.VarDecl):
            frame[statement.name] = (
                self._evaluate(statement.init, frame, depth) if statement.init is not None else 0
            )
        elif isinstance(statement, ast.Assign):
            self._store(statement.name, self._evaluate(statement.value, frame, depth), frame)
        elif isinstance(statement, ast.Havoc):
            self._store(statement.name, self._draw_nondet(), frame)
        elif isinstance(statement, ast.ArrayWrite):
            self._evaluate(statement.value, frame, depth)  # effects only
        elif isinstance(statement, ast.CallStmt):
            self._evaluate(statement.call, frame, depth)
        elif isinstance(statement, ast.If):
            if self._evaluate_condition(statement.condition, frame, depth):
                self._execute_block(statement.then_branch, frame, depth)
            elif statement.else_branch is not None:
                self._execute_block(statement.else_branch, frame, depth)
        elif isinstance(statement, ast.While):
            while self._evaluate_condition(statement.condition, frame, depth):
                self._execute_block(statement.body, frame, depth)
                self._tick()
        elif isinstance(statement, ast.Return):
            value = (
                self._evaluate(statement.value, frame, depth)
                if statement.value is not None
                else None
            )
            raise _ReturnSignal(value)
        elif isinstance(statement, ast.Assert):
            if not self._evaluate_condition(statement.condition, frame, depth):
                raise AssertionFailure(str(statement.condition))
        elif isinstance(statement, ast.Assume):
            # A failed assume silently blocks the execution; for the concrete
            # oracle we treat it as an assertion on the chosen inputs.
            if not self._evaluate_condition(statement.condition, frame, depth):
                raise AssertionFailure(f"assume({statement.condition}) blocked")
        else:
            raise TypeError(f"unsupported statement {statement!r}")

    def _store(self, name: str, value: int, frame: dict[str, int]) -> None:
        if name in frame:
            frame[name] = value
        elif name in self._globals:
            self._globals[name] = value
        else:
            frame[name] = value

    def _load(self, name: str, frame: dict[str, int]) -> int:
        if name in frame:
            return frame[name]
        if name in self._globals:
            return self._globals[name]
        raise KeyError(f"undefined variable {name!r}")

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _draw_nondet(self, lower: Optional[int] = None, upper: Optional[int] = None) -> int:
        low = lower if lower is not None else self.nondet_range[0]
        high = (upper - 1) if upper is not None else self.nondet_range[1]
        if high < low:
            high = low
        return self.rng.randint(low, high)

    def _evaluate(self, expression: ast.Expr, frame: dict[str, int], depth: int) -> int:
        if isinstance(expression, ast.IntLit):
            return expression.value
        if isinstance(expression, ast.VarRef):
            return self._load(expression.name, frame)
        if isinstance(expression, ast.UnaryNeg):
            return -self._evaluate(expression.operand, frame, depth)
        if isinstance(expression, ast.BinOp):
            left = self._evaluate(expression.left, frame, depth)
            right = self._evaluate(expression.right, frame, depth)
            if expression.op == "+":
                return left + right
            if expression.op == "-":
                return left - right
            if expression.op == "*":
                return left * right
            if expression.op == "/":
                if right == 0:
                    raise ZeroDivisionError("division by zero in interpreted program")
                return left // right
            raise TypeError(f"unsupported operator {expression.op!r}")
        if isinstance(expression, ast.Nondet):
            lower = (
                self._evaluate(expression.lower, frame, depth)
                if expression.lower is not None
                else None
            )
            upper = (
                self._evaluate(expression.upper, frame, depth)
                if expression.upper is not None
                else None
            )
            return self._draw_nondet(lower, upper)
        if isinstance(expression, ast.ArrayRead):
            array = self._arrays.get(expression.array)
            if array is not None:
                index = self._evaluate(expression.index, frame, depth)
                if 0 <= index < len(array):
                    return int(array[index])
            return self._draw_nondet()
        if isinstance(expression, ast.MinMax):
            left = self._evaluate(expression.left, frame, depth)
            right = self._evaluate(expression.right, frame, depth)
            return max(left, right) if expression.is_max else min(left, right)
        if isinstance(expression, ast.Ternary):
            if self._evaluate_condition(expression.condition, frame, depth):
                return self._evaluate(expression.then_value, frame, depth)
            return self._evaluate(expression.else_value, frame, depth)
        if isinstance(expression, ast.CallExpr):
            procedure = self.program.procedure(expression.callee)
            # Bind parameters positionally; arguments in array positions are
            # not evaluated (arrays carry no integer state).
            arguments: dict[str, int] = {}
            for parameter, argument in zip(procedure.parameters, expression.args):
                if parameter.is_array:
                    continue
                arguments[parameter.name] = self._evaluate(argument, frame, depth)
            frame_in = {name: arguments.get(name, 0) for name in procedure.scalar_parameters}
            result = self._call(procedure, frame_in, depth + 1)
            return result if result is not None else 0
        raise TypeError(f"unsupported expression {expression!r}")

    def _evaluate_condition(self, condition: ast.Cond, frame: dict[str, int], depth: int) -> bool:
        if isinstance(condition, ast.BoolLit):
            return condition.value
        if isinstance(condition, ast.NondetBool):
            return bool(self.rng.getrandbits(1))
        if isinstance(condition, ast.NotCond):
            return not self._evaluate_condition(condition.operand, frame, depth)
        if isinstance(condition, ast.BoolOp):
            if condition.op == "&&":
                return self._evaluate_condition(condition.left, frame, depth) and (
                    self._evaluate_condition(condition.right, frame, depth)
                )
            return self._evaluate_condition(condition.left, frame, depth) or (
                self._evaluate_condition(condition.right, frame, depth)
            )
        if isinstance(condition, ast.Compare):
            left = self._evaluate(condition.left, frame, depth)
            right = self._evaluate(condition.right, frame, depth)
            return {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[condition.op]
        raise TypeError(f"unsupported condition {condition!r}")
