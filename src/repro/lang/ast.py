"""Abstract syntax trees for the mini-language.

The benchmark programs of the paper are small C programs over (global and
local) integer variables with loops, branches, recursion, non-determinism and
assertions.  This module defines the AST the parser produces and the analyses
consume.  Arrays are supported syntactically (``int *A`` parameters, ``A[e]``
reads, ``A[e] = v`` writes) but — exactly as in the paper's tool, which only
reasons about integer variables — array reads are treated as unconstrained
(non-deterministic) integer values and array writes as no-ops.

Statement nodes (and the top-level declarations) carry an optional ``line``
attribute recording the source line of their first token.  The field is for
*attribution only* — diagnostics, error messages — and is excluded from
equality, hashing and ``repr``, so structural identity and everything built
on it (procedure fingerprints hash ``repr``, see
:mod:`repro.lang.fingerprint`) stay insensitive to formatting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    # expressions
    "Expr",
    "IntLit",
    "VarRef",
    "BinOp",
    "UnaryNeg",
    "Nondet",
    "ArrayRead",
    "CallExpr",
    "MinMax",
    "Ternary",
    # conditions
    "Cond",
    "BoolLit",
    "Compare",
    "BoolOp",
    "NotCond",
    "NondetBool",
    # statements
    "Stmt",
    "Block",
    "VarDecl",
    "Assign",
    "ArrayWrite",
    "CallStmt",
    "If",
    "While",
    "Return",
    "Assert",
    "Assume",
    "Havoc",
    # top level
    "Parameter",
    "Procedure",
    "GlobalDecl",
    "Program",
]


def _line_field() -> Optional[int]:
    """The shared declaration of the attribution-only ``line`` attribute."""
    return field(default=None, compare=False, repr=False)


# ---------------------------------------------------------------------- #
# Expressions
# ---------------------------------------------------------------------- #
class Expr:
    """Base class of integer-valued expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class IntLit(Expr):
    """An integer literal."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VarRef(Expr):
    """A reference to a scalar variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic operation: ``+``, ``-``, ``*`` or ``/``.

    Division denotes *floor* division (Python ``//``, rounding toward
    negative infinity) and is modelled relationally by the semantics; the
    analyses support it for positive constant divisors only, where the
    relational model is exact for every integer dividend — including
    negative ones.  (C's truncation toward zero differs on negative
    dividends; this language is defined to floor.)
    """

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryNeg(Expr):
    """Unary minus."""

    operand: Expr

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class Nondet(Expr):
    """A non-deterministic integer, optionally range-restricted.

    ``nondet()`` is unrestricted; ``nondet(lo, hi)`` denotes a value ``v``
    with ``lo <= v < hi`` (the convention used by the paper's ``height``
    benchmark: ``nondet(0, size)`` picks ``0 <= left_size < size``).
    """

    lower: Optional[Expr] = None
    upper: Optional[Expr] = None

    def __str__(self) -> str:
        if self.lower is None and self.upper is None:
            return "nondet()"
        return f"nondet({self.lower}, {self.upper})"


@dataclass(frozen=True)
class ArrayRead(Expr):
    """A read from an array; analysed as an unconstrained integer."""

    array: str
    index: Expr

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"


@dataclass(frozen=True)
class CallExpr(Expr):
    """A call used in expression position (hoisted before analysis)."""

    callee: str
    args: tuple[Expr, ...]

    def __str__(self) -> str:
        return f"{self.callee}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class MinMax(Expr):
    """``min(a, b)`` / ``max(a, b)``."""

    is_max: bool
    left: Expr
    right: Expr

    def __str__(self) -> str:
        name = "max" if self.is_max else "min"
        return f"{name}({self.left}, {self.right})"


@dataclass(frozen=True)
class Ternary(Expr):
    """A conditional expression ``condition ? then_value : else_value``."""

    condition: "Cond"
    then_value: Expr
    else_value: Expr

    def __str__(self) -> str:
        return f"({self.condition} ? {self.then_value} : {self.else_value})"


# ---------------------------------------------------------------------- #
# Conditions
# ---------------------------------------------------------------------- #
class Cond:
    """Base class of boolean conditions."""

    __slots__ = ()


@dataclass(frozen=True)
class BoolLit(Cond):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class Compare(Cond):
    """A comparison ``left op right`` with op in ==, !=, <, <=, >, >=."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class BoolOp(Cond):
    """Conjunction (``&&``) or disjunction (``||``)."""

    op: str
    left: Cond
    right: Cond

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class NotCond(Cond):
    operand: Cond

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class NondetBool(Cond):
    """A non-deterministic boolean (written ``*`` or ``nondet_bool()``)."""

    def __str__(self) -> str:
        return "*"


# ---------------------------------------------------------------------- #
# Statements
# ---------------------------------------------------------------------- #
class Stmt:
    """Base class of statements.

    Every concrete statement carries an attribution-only ``line`` (see the
    module docstring); it defaults to ``None`` for nodes built
    programmatically (desugaring, call hoisting, test fixtures, the fuzz
    generator).
    """

    __slots__ = ()


@dataclass(frozen=True)
class Block(Stmt):
    statements: tuple[Stmt, ...]
    line: Optional[int] = _line_field()

    def __str__(self) -> str:
        inner = " ".join(str(s) for s in self.statements)
        return "{ " + inner + " }"


@dataclass(frozen=True)
class VarDecl(Stmt):
    """Local variable declaration with optional initializer."""

    name: str
    init: Optional[Expr] = None
    line: Optional[int] = _line_field()

    def __str__(self) -> str:
        if self.init is None:
            return f"int {self.name};"
        return f"int {self.name} = {self.init};"


@dataclass(frozen=True)
class Assign(Stmt):
    """Assignment to a scalar variable (the RHS may be a call expression)."""

    name: str
    value: Expr
    line: Optional[int] = _line_field()

    def __str__(self) -> str:
        return f"{self.name} = {self.value};"


@dataclass(frozen=True)
class ArrayWrite(Stmt):
    """A store into an array; analysed as a no-op over the integer state."""

    array: str
    index: Expr
    value: Expr
    line: Optional[int] = _line_field()

    def __str__(self) -> str:
        return f"{self.array}[{self.index}] = {self.value};"


@dataclass(frozen=True)
class CallStmt(Stmt):
    """A call whose result (if any) is discarded."""

    call: CallExpr
    line: Optional[int] = _line_field()

    def __str__(self) -> str:
        return f"{self.call};"


@dataclass(frozen=True)
class If(Stmt):
    condition: Cond
    then_branch: Block
    else_branch: Optional[Block] = None
    line: Optional[int] = _line_field()

    def __str__(self) -> str:
        text = f"if ({self.condition}) {self.then_branch}"
        if self.else_branch is not None:
            text += f" else {self.else_branch}"
        return text


@dataclass(frozen=True)
class While(Stmt):
    condition: Cond
    body: Block
    line: Optional[int] = _line_field()

    def __str__(self) -> str:
        return f"while ({self.condition}) {self.body}"


@dataclass(frozen=True)
class Return(Stmt):
    value: Optional[Expr] = None
    line: Optional[int] = _line_field()

    def __str__(self) -> str:
        if self.value is None:
            return "return;"
        return f"return {self.value};"


@dataclass(frozen=True)
class Assert(Stmt):
    condition: Cond
    line: Optional[int] = _line_field()

    def __str__(self) -> str:
        return f"assert({self.condition});"


@dataclass(frozen=True)
class Assume(Stmt):
    condition: Cond
    line: Optional[int] = _line_field()

    def __str__(self) -> str:
        return f"assume({self.condition});"


@dataclass(frozen=True)
class Havoc(Stmt):
    """Assign an arbitrary value to a variable."""

    name: str
    line: Optional[int] = _line_field()

    def __str__(self) -> str:
        return f"{self.name} = nondet();"


# ---------------------------------------------------------------------- #
# Top level
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Parameter:
    """A formal parameter; ``is_array`` parameters carry no integer state."""

    name: str
    is_array: bool = False

    def __str__(self) -> str:
        return f"int *{self.name}" if self.is_array else f"int {self.name}"


@dataclass(frozen=True)
class Procedure:
    """A procedure definition."""

    name: str
    parameters: tuple[Parameter, ...]
    body: Block
    returns_value: bool = True
    line: Optional[int] = _line_field()

    @property
    def scalar_parameters(self) -> tuple[str, ...]:
        """Names of the integer (non-array) parameters."""
        return tuple(p.name for p in self.parameters if not p.is_array)

    def local_variables(self) -> tuple[str, ...]:
        """Names of the locals declared anywhere in the body."""
        names: list[str] = []

        def visit(stmt: Stmt) -> None:
            if isinstance(stmt, VarDecl):
                if stmt.name not in names:
                    names.append(stmt.name)
            elif isinstance(stmt, Block):
                for child in stmt.statements:
                    visit(child)
            elif isinstance(stmt, If):
                visit(stmt.then_branch)
                if stmt.else_branch is not None:
                    visit(stmt.else_branch)
            elif isinstance(stmt, While):
                visit(stmt.body)

        visit(self.body)
        return tuple(names)

    def __str__(self) -> str:
        kind = "int" if self.returns_value else "void"
        params = ", ".join(str(p) for p in self.parameters)
        return f"{kind} {self.name}({params}) {self.body}"


@dataclass(frozen=True)
class GlobalDecl:
    """A global integer variable with an optional constant initializer."""

    name: str
    init: Optional[int] = None
    line: Optional[int] = _line_field()

    def __str__(self) -> str:
        if self.init is None:
            return f"int {self.name};"
        return f"int {self.name} = {self.init};"


@dataclass(frozen=True)
class Program:
    """A whole program: global declarations plus procedures."""

    globals: tuple[GlobalDecl, ...]
    procedures: tuple[Procedure, ...]

    @property
    def global_names(self) -> tuple[str, ...]:
        return tuple(g.name for g in self.globals)

    def procedure(self, name: str) -> Procedure:
        for procedure in self.procedures:
            if procedure.name == name:
                return procedure
        raise KeyError(f"no procedure named {name!r}")

    @property
    def procedure_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.procedures)

    def __str__(self) -> str:
        parts = [str(g) for g in self.globals] + [str(p) for p in self.procedures]
        return "\n".join(parts)
