"""The mini-language substrate: AST, parser, semantics, CFGs, call graphs,
and a concrete interpreter.

The benchmark programs of the paper (Table 1, Table 2, Figure 3, and the
worked examples) are written in this language; see
:mod:`repro.benchlib` for their sources.
"""

from . import ast
from .parser import ParseError, parse_program, parse_procedure_body, tokenize
from .semantics import (
    SemanticsError,
    assign_transition,
    assume_transition,
    havoc_transition,
    translate_condition,
    translate_expression,
)
from .cfg import (
    AssertionSite,
    CallEdge,
    ControlFlowGraph,
    WeightEdge,
    build_cfg,
    hoist_calls_in_procedure,
)
from .callgraph import CallGraph, build_call_graph
from .fingerprint import fingerprint_cone, procedure_fingerprints
from .interp import (
    AssertionFailure,
    AssumeBlocked,
    ExecutionLimitExceeded,
    ExecutionResult,
    Interpreter,
    InterpreterError,
)

__all__ = [
    "ast",
    "ParseError",
    "parse_program",
    "parse_procedure_body",
    "tokenize",
    "SemanticsError",
    "assign_transition",
    "assume_transition",
    "havoc_transition",
    "translate_condition",
    "translate_expression",
    "AssertionSite",
    "CallEdge",
    "ControlFlowGraph",
    "WeightEdge",
    "build_cfg",
    "hoist_calls_in_procedure",
    "CallGraph",
    "build_call_graph",
    "fingerprint_cone",
    "procedure_fingerprints",
    "AssertionFailure",
    "AssumeBlocked",
    "ExecutionLimitExceeded",
    "ExecutionResult",
    "Interpreter",
    "InterpreterError",
]
