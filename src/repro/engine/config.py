"""Environment configuration shared by the engine, the CLI and the benches.

The bench harness historically read ``REPRO_FULL_BENCH`` from its own
``conftest.py``; the flag lives here now so the CLI, the examples and the
pytest harness stay in sync (``benchmarks/conftest.py`` re-exports it).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Mapping

__all__ = [
    "FULL_BENCH_ENV",
    "CACHE_DIR_ENV",
    "NO_CACHE_ENV",
    "DEFAULT_SERVICE_PORT",
    "full_bench_enabled",
    "cache_enabled",
    "default_cache_directory",
]

#: Default TCP port of ``repro serve`` (CHORA was published at PLDI 2020).
#: Lives here — not in :mod:`repro.service` — so the CLI parser can show it
#: without importing the service (and http.server) on every invocation.
DEFAULT_SERVICE_PORT = 8734

#: Set to ``1`` to include the slowest benchmarks (strassen, qsort_steps,
#: closest_pair, ackermann, the full Fig.-3 sweep), which take minutes each
#: in this pure-Python reproduction.
FULL_BENCH_ENV = "REPRO_FULL_BENCH"

#: Overrides where the on-disk result cache lives.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Set to ``1`` to disable the result cache entirely.
NO_CACHE_ENV = "REPRO_NO_CACHE"


def full_bench_enabled(environ: Mapping[str, str] = os.environ) -> bool:
    """Whether the slow benchmark rows should be included."""
    return environ.get(FULL_BENCH_ENV, "") == "1"


def cache_enabled(environ: Mapping[str, str] = os.environ) -> bool:
    """Whether the on-disk result cache should be used by default."""
    return environ.get(NO_CACHE_ENV, "") != "1"


def default_cache_directory(environ: Mapping[str, str] = os.environ) -> Path:
    """Where cached analysis results live unless the caller overrides it."""
    override = environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-chora"
