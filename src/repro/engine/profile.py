"""Perf tracking: timing records, BENCH_*.json files and the regression gate.

The perf trajectory of the reproduction is a tracked, machine-readable
artefact: every ``repro profile`` run appends one *entry* to an append-only
JSON file (``benchmarks/perf/BENCH_table2.json`` and friends), so the history
of a suite's wall-clock — before and after each optimisation — lives in the
repository next to the code that produced it.

Two kinds of entries exist:

* **suite entries** — per-row wall times of one benchmark suite, built from
  the :class:`~repro.engine.batch.BatchResult` records of a cold (uncached)
  engine run;
* **micro entries** — timings of the deterministic hull/projection
  micro-benchmarks defined here, which exercise the polyhedral hot path
  (Fourier–Motzkin elimination, the lifted hull construction, LP-based
  minimization, DNF enumeration, exact satisfiability) in isolation.

:func:`compare_entries` implements the regression gate used by CI: the
current entry is compared row-by-row against the last committed entry and
any slow-down beyond the threshold fails the run.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from fractions import Fraction
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from .batch import BatchResult, summarize_batch

__all__ = [
    "DEFAULT_PERF_DIR",
    "MICRO_BENCHMARKS",
    "Regression",
    "append_entry",
    "bench_path",
    "compare_entries",
    "engine_comparison_entry",
    "load_entries",
    "micro_entry",
    "percentile",
    "run_micro_benchmarks",
    "suite_entry_record",
]

#: Where BENCH_*.json files live unless the caller overrides it.
DEFAULT_PERF_DIR = Path("benchmarks") / "perf"

#: Schema version of the perf entries (bump on incompatible shape changes).
PERF_SCHEMA_VERSION = 1


def bench_path(directory: Path | str, name: str) -> Path:
    """The BENCH file for a suite (or ``micro``) under ``directory``."""
    return Path(directory) / f"BENCH_{name}.json"


def load_entries(path: Path | str) -> list[dict[str, Any]]:
    """All recorded entries of a BENCH file (empty list when absent)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return []
    entries = data.get("entries") if isinstance(data, dict) else None
    return entries if isinstance(entries, list) else []


def append_entry(path: Path | str, entry: dict[str, Any]) -> None:
    """Append one entry to a BENCH file, creating it if needed."""
    path = Path(path)
    entries = load_entries(path)
    entries.append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"schema": PERF_SCHEMA_VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _timestamp() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """The nearest-rank ``q``-th percentile of ``values`` (None when empty).

    Nearest-rank rather than interpolated: every reported latency is a
    latency some request actually saw, which is what an SLO gauge wants.
    Used by the service's ``/metrics`` route and the loadtest report.
    """
    if not values:
        return None
    if not 0 <= q <= 100:
        raise ValueError(f"percentile rank must be in [0, 100], got {q!r}")
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[min(len(ordered), rank) - 1]


def suite_entry_record(
    suite: str,
    results: Sequence[BatchResult],
    label: str = "",
    jobs: int = 1,
    timeout: Optional[float] = None,
    parallel_sccs: Optional[int] = None,
) -> dict[str, Any]:
    """A perf entry summarizing one cold suite run.

    Memo-table statistics are deliberately absent: tasks execute in forked
    worker processes, so the parent's tables see none of the traffic.
    ``timeout`` is the per-row deadline the run was taken under (recorded so
    nightly entries with row budgets are not compared naively against
    unbudgeted ones); ``parallel_sccs`` is the intra-program SCC worker
    count, recorded for the same reason (results are identical either way,
    wall times are not).
    """
    return {
        "kind": "suite",
        "suite": suite,
        "label": label,
        "created": _timestamp(),
        "jobs": jobs,
        "timeout": timeout,
        "parallel_sccs": parallel_sccs,
        "rows": [
            {
                "name": result.name,
                "task_kind": result.kind,
                "outcome": result.outcome,
                "proved": result.proved,
                "bound": result.bound,
                "seconds": round(result.wall_time, 4),
            }
            for result in results
        ],
        "totals": summarize_batch(results),
    }


# ---------------------------------------------------------------------- #
# Cold-engine vs warm-worker comparison (the analysis service's raison
# d'être, recorded next to the other perf history)
# ---------------------------------------------------------------------- #
def engine_comparison_entry(
    suite: str,
    label: str = "",
    repeats: int = 2,
    full: bool = False,
) -> dict[str, Any]:
    """A perf entry comparing cold per-task analysis to warm-worker serving.

    For every benchmark of ``suite`` four timings are recorded as rows:

    * ``<name>/cold`` — one in-process :func:`execute_task` run starting
      from cold memo tables (what each forked batch worker pays);
    * ``<name>/snapshot-cold`` — the same run after force-clearing the
      tables and loading the persisted polyhedral memo snapshot the cold
      runs accumulated (what a snapshot-aware ``--engine pool`` fork pays,
      see :class:`~repro.engine.batch.BatchEngine`'s ``memo_snapshot``);
    * ``<name>/warm-first`` — the first request through a
      :class:`~repro.service.pool.WorkerPool` worker (builds the worker's
      incremental summary store);
    * ``<name>/warm-repeat`` — the best of ``repeats`` repeated requests
      for the same program, where the worker splices every cached
      procedure summary (the service's steady state).

    The entry is informational (CI records it as a non-gating artifact):
    absolute times differ per machine, but ``warm-repeat`` being far below
    ``cold`` — and ``snapshot-cold`` sitting between them — is the
    property ``repro serve`` and the snapshot exist for.
    """
    from ..core import ChoraOptions
    from ..polyhedra.cache import clear_caches, keep_warm, load_snapshot, save_snapshot
    from ..service import WorkerPool
    from .cache import code_fingerprint
    from .storage import MemoryStorage
    from .suites import suite_tasks
    from .tasks import execute_task

    tasks = suite_tasks(suite, full)
    rows: list[dict[str, Any]] = []
    totals = {"cold": 0.0, "snapshot_cold": 0.0, "warm_first": 0.0, "warm_repeat": 0.0}
    # The snapshot a cold-with-snapshot fork would load: accumulated from
    # this process's own cold runs, exactly as warm-pool workers persist it.
    snapshot_storage = MemoryStorage()
    fingerprint = code_fingerprint()
    # Exactly one worker: warmth is per-process, so a larger pool would
    # route repeat requests to workers that never saw the program and
    # record cold runs under the warm-repeat label.
    with WorkerPool(workers=1, cache=None) as pool:
        for task in tasks:
            clear_caches(force=True)
            started = time.perf_counter()
            execute_task(task, ChoraOptions())
            cold = time.perf_counter() - started
            # The cold run above left this process's memo tables warm; merge
            # them into the snapshot, then replay the task as a snapshot-
            # loading cold fork would run it (cleared tables + loaded
            # snapshot, kept across execute_task's per-task clearing).
            save_snapshot(snapshot_storage, fingerprint)
            clear_caches(force=True)
            load_snapshot(snapshot_storage, fingerprint)
            with keep_warm():
                started = time.perf_counter()
                execute_task(task, ChoraOptions())
                snapshot_cold = time.perf_counter() - started
            clear_caches(force=True)
            warm_first = pool.submit(task).wall_time
            warm_repeat = min(
                pool.submit(task).wall_time for _ in range(max(1, repeats))
            )
            rows.append({"name": f"{task.name}/cold", "seconds": round(cold, 5)})
            rows.append(
                {
                    "name": f"{task.name}/snapshot-cold",
                    "seconds": round(snapshot_cold, 5),
                }
            )
            rows.append(
                {"name": f"{task.name}/warm-first", "seconds": round(warm_first, 5)}
            )
            rows.append(
                {"name": f"{task.name}/warm-repeat", "seconds": round(warm_repeat, 5)}
            )
            totals["cold"] += cold
            totals["snapshot_cold"] += snapshot_cold
            totals["warm_first"] += warm_first
            totals["warm_repeat"] += warm_repeat
    speedup = (
        totals["cold"] / totals["warm_repeat"] if totals["warm_repeat"] else None
    )
    snapshot_speedup = (
        totals["cold"] / totals["snapshot_cold"] if totals["snapshot_cold"] else None
    )
    return {
        "kind": "engines",
        "suite": suite,
        "label": label,
        "created": _timestamp(),
        "workers": 1,
        "repeats": repeats,
        "rows": rows,
        "totals": {
            "cold": round(totals["cold"], 5),
            "snapshot_cold": round(totals["snapshot_cold"], 5),
            "warm_first": round(totals["warm_first"], 5),
            "warm_repeat": round(totals["warm_repeat"], 5),
            "warm_over_cold_speedup": round(speedup, 2) if speedup else None,
            "snapshot_over_cold_speedup": (
                round(snapshot_speedup, 2) if snapshot_speedup else None
            ),
        },
    }


# ---------------------------------------------------------------------- #
# Micro-benchmarks: the polyhedral hot path in isolation
# ---------------------------------------------------------------------- #
def _micro_symbols(count: int):
    from ..formulas.symbols import Symbol

    return [Symbol(f"m{i}") for i in range(count)]


def _micro_projection_chain() -> None:
    """Eliminate the interior of a 12-variable inequality chain.

    Looped so the row sits well above the gate's noise floor; the memo
    tables are cleared between iterations to keep every round cold.
    """
    from ..polyhedra import LinearConstraint, fourier_motzkin
    from ..polyhedra.cache import clear_caches

    xs = _micro_symbols(12)
    constraints = []
    for a, b in zip(xs, xs[1:]):
        # a <= b <= a + 3, plus a shared bound on every variable.
        constraints.append(LinearConstraint.make({a: 1, b: -1}))
        constraints.append(LinearConstraint.make({b: 1, a: -1}, -3))
    for x in xs:
        constraints.append(LinearConstraint.make({x: 1}, -50))
        constraints.append(LinearConstraint.make({x: -1}, -50))
    for _ in range(8):
        clear_caches(force=True)
        fourier_motzkin.eliminate(constraints, xs[1:-1])


def _micro_hull_ladder() -> None:
    """Join a ladder of shifted boxes with the exact lifted hull."""
    from ..polyhedra import LinearConstraint, Polyhedron
    from ..polyhedra.hull import convex_hull

    xs = _micro_symbols(2)
    boxes = []
    for shift in range(4):
        constraints = []
        for i, x in enumerate(xs):
            low = Fraction(shift + i)
            constraints.append(LinearConstraint.make({x: -1}, low))
            constraints.append(LinearConstraint.make({x: 1}, -(low + 2)))
        boxes.append(Polyhedron(constraints))
    convex_hull(boxes)


def _micro_minimize_redundant() -> None:
    """Minimize a system drowned in entailed constraints."""
    from ..polyhedra import LinearConstraint, fourier_motzkin

    xs = _micro_symbols(4)
    constraints = []
    for x in xs:
        constraints.append(LinearConstraint.make({x: 1}, -10))
        constraints.append(LinearConstraint.make({x: -1}, 0))
    # Sums of the generators: every one of these is entailed by the box.
    for i, a in enumerate(xs):
        for b in xs[i + 1 :]:
            constraints.append(LinearConstraint.make({a: 1, b: 1}, -25))
            constraints.append(LinearConstraint.make({a: 1, b: 2}, -40))
    fourier_motzkin.minimize_constraints(constraints)


def _micro_dnf_product() -> None:
    """Distribute a conjunction of small disjunctions into cubes."""
    from ..formulas.dnf import to_dnf
    from ..formulas.formula import atom_eq, atom_le, conjoin, disjoin
    from ..formulas.polynomial import Polynomial
    from ..formulas.symbols import Symbol

    clauses = []
    for i in range(7):
        x = Polynomial.var(Symbol(f"d{i}"))
        clauses.append(disjoin([atom_le(x), atom_eq(x - 1), atom_le(-x - 1)]))
    formula = conjoin(clauses)
    for _ in range(60):
        to_dnf(formula)


def _micro_exact_infeasible() -> None:
    """Exact satisfiability of an equality-heavy infeasible system."""
    from ..polyhedra import LinearConstraint, lp
    from ..polyhedra.constraint import ConstraintKind

    from ..polyhedra.cache import clear_caches

    xs = _micro_symbols(10)
    constraints = []
    for a, b in zip(xs, xs[1:]):
        # Each variable equals its predecessor plus one ...
        constraints.append(
            LinearConstraint.make({b: 1, a: -1}, -1, ConstraintKind.EQ)
        )
    # ... and the endpoints contradict the accumulated offset.
    constraints.append(LinearConstraint.make({xs[0]: 1}, 0, ConstraintKind.EQ))
    constraints.append(LinearConstraint.make({xs[-1]: 1}, -4))
    for _ in range(15):
        clear_caches(force=True)
        lp.is_satisfiable(constraints)


def _micro_lp_chain(length: int):
    """A chain LP whose tableau sits in the int64 kernel's sweet spot."""
    from ..polyhedra import LinearConstraint

    xs = _micro_symbols(length)
    constraints = []
    for a, b in zip(xs, xs[1:]):
        # a <= b <= a + 3, inside a shared box.
        constraints.append(LinearConstraint.make({a: 1, b: -1}))
        constraints.append(LinearConstraint.make({b: 1, a: -1}, -3))
    for x in xs:
        constraints.append(LinearConstraint.make({x: 1}, -60))
        constraints.append(LinearConstraint.make({x: -1}, 0))
    objective = {x: Fraction(i + 1) for i, x in enumerate(xs)}
    return objective, constraints


def _micro_simplex_int64() -> None:
    """Exact LP maximization with the fixed-width int64 tableau kernel.

    The kernel is pinned to ``int64`` for the duration (restored after), so
    this row times the vectorised pivot path itself; the coefficients are
    small enough that the overflow guard never forces a bignum fallback.
    """
    from ..polyhedra.cache import clear_caches
    from ..polyhedra.simplex import exact_maximize, set_simplex_kernel

    objective, constraints = _micro_lp_chain(10)
    previous = set_simplex_kernel("int64")
    try:
        for _ in range(40):
            clear_caches(force=True)
            exact_maximize(objective, constraints)
    finally:
        set_simplex_kernel(previous)


def _micro_scc_parallel() -> None:
    """DAG-schedule a wide call graph across two forked SCC workers.

    Times the fork/merge machinery end to end — child processes, summary
    pickling, fresh-symbol reconciliation — on a program whose four leaf
    procedures are independent SCCs.  On a single-core host the children
    serialize, so the row tracks scheduling overhead rather than speedup.
    """
    from ..core.parallel import analyze_program_parallel, fork_available
    from ..core import analyze_program
    from ..lang import parse_program

    parts = []
    for i in range(1, 5):
        parts.append(
            f"""
int f{i}(int n) {{
    cost = cost + {i};
    if (n <= 0) {{
        return 0;
    }}
    int r = f{i}(n - 1);
    return r + 1;
}}
"""
        )
    calls = "\n    ".join(f"f{i}(n);" for i in range(1, 5))
    source = "int cost = 0;\n" + "".join(parts) + (
        "\nint main(int n) {\n    cost = cost + 1;\n    "
        + calls
        + "\n    return cost;\n}\n"
    )
    program = parse_program(source)
    if fork_available():
        analyze_program_parallel(program, workers=2)
    else:
        analyze_program(program)


#: The tier-2 micro-benchmark registry guarded by the CI perf gate.
MICRO_BENCHMARKS: dict[str, Callable[[], None]] = {
    "projection_chain": _micro_projection_chain,
    "hull_ladder": _micro_hull_ladder,
    "minimize_redundant": _micro_minimize_redundant,
    "dnf_product": _micro_dnf_product,
    "exact_infeasible": _micro_exact_infeasible,
    "simplex-int64": _micro_simplex_int64,
    "scc-parallel": _micro_scc_parallel,
}


def run_micro_benchmarks(repeats: int = 3) -> list[dict[str, Any]]:
    """Time every micro-benchmark (best of ``repeats``, caches cleared).

    The memo caches are force-cleared before every repetition — even inside
    a ``keep_warm`` scope or a worker that loaded a persisted memo snapshot
    — so the gate measures the cold algorithmic path, never a table lookup.
    The simplex kernel selection is reset to ``auto`` the same way: whatever
    mode the process had pinned (a test, a prior row) must not leak into the
    timings, exactly as warm memo tables must not.
    """
    from ..polyhedra.cache import clear_caches
    from ..polyhedra.simplex import reset_kernel_stats, set_simplex_kernel

    rows = []
    entry_mode = set_simplex_kernel("auto")
    try:
        for name, function in MICRO_BENCHMARKS.items():
            best = None
            for _ in range(max(1, repeats)):
                clear_caches(force=True)
                set_simplex_kernel("auto")
                reset_kernel_stats()
                started = time.perf_counter()
                function()
                elapsed = time.perf_counter() - started
                best = elapsed if best is None else min(best, elapsed)
            rows.append({"name": name, "seconds": round(best, 5)})
    finally:
        set_simplex_kernel(entry_mode)
    return rows


def micro_entry(label: str = "", repeats: int = 3) -> dict[str, Any]:
    """A perf entry recording one micro-benchmark sweep."""
    rows = run_micro_benchmarks(repeats)
    return {
        "kind": "micro",
        "suite": "micro",
        "label": label,
        "created": _timestamp(),
        "repeats": repeats,
        "rows": rows,
        "totals": {"seconds": round(sum(r["seconds"] for r in rows), 5)},
    }


# ---------------------------------------------------------------------- #
# The regression gate
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Regression:
    """One row that got slower than the gate allows."""

    name: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.baseline:.4f}s -> {self.current:.4f}s "
            f"({self.ratio:.2f}x)"
        )


def compare_entries(
    baseline: dict[str, Any],
    current: dict[str, Any],
    threshold: float = 0.25,
    min_seconds: float = 0.02,
) -> list[Regression]:
    """Rows of ``current`` that regressed beyond ``threshold`` vs ``baseline``.

    Rows absent from the baseline are skipped; rows faster than
    ``min_seconds`` in the baseline are ignored — at the sub-20ms scale a
    25% delta is scheduler noise, not a code regression.
    """
    base_rows = {row["name"]: row["seconds"] for row in baseline.get("rows", [])}
    regressions = []
    for row in current.get("rows", []):
        reference = base_rows.get(row["name"])
        if reference is None or reference < min_seconds:
            continue
        if row["seconds"] > reference * (1.0 + threshold):
            regressions.append(Regression(row["name"], reference, row["seconds"]))
    return regressions


def latest_entry(
    entries: Sequence[dict[str, Any]], label: Optional[str] = None
) -> Optional[dict[str, Any]]:
    """The newest entry (optionally the newest with a given label)."""
    for entry in reversed(entries):
        if label is None or entry.get("label") == label:
            return entry
    return None
