"""The batch-analysis engine: run many CHORA analyses fast and safely.

The engine is the scale substrate the evaluation harnesses sit on:

* :class:`~repro.engine.batch.BatchEngine` — analyse many programs
  concurrently in worker processes, with per-program timeout and crash
  isolation (one pathological benchmark cannot sink the batch);
* :class:`~repro.engine.cache.ResultCache` — a content-addressed on-disk
  result cache keyed by (program source, options fingerprint, code version),
  making re-runs of unchanged benchmarks near-instant;
* :class:`~repro.engine.tasks.AnalysisTask` — one unit of work, with an
  extensible registry of task kinds (CHORA complexity / assertion checking,
  the ICRA and unrolling baselines, whole-program summaries);
* :mod:`repro.engine.suites` — build task batches from the benchmark suites
  of :mod:`repro.benchlib`;
* :mod:`repro.engine.config` — the environment switches shared by the CLI,
  the bench scripts and the examples (``REPRO_FULL_BENCH``, cache location).
"""

from .batch import BatchEngine, BatchResult, summarize_batch
from .cache import ResultCache, make_cache
from .config import (
    CACHE_DIR_ENV,
    FULL_BENCH_ENV,
    NO_CACHE_ENV,
    cache_enabled,
    default_cache_directory,
    full_bench_enabled,
)
from .suites import suite_tasks
from .tasks import AnalysisTask, execute_task, register_kind, registered_kinds

__all__ = [
    "BatchEngine",
    "BatchResult",
    "summarize_batch",
    "ResultCache",
    "make_cache",
    "AnalysisTask",
    "execute_task",
    "register_kind",
    "registered_kinds",
    "suite_tasks",
    "CACHE_DIR_ENV",
    "FULL_BENCH_ENV",
    "NO_CACHE_ENV",
    "cache_enabled",
    "default_cache_directory",
    "full_bench_enabled",
]
