"""The batch-analysis engine: run many CHORA analyses fast and safely.

The engine is the scale substrate the evaluation harnesses sit on:

* :class:`~repro.engine.batch.BatchEngine` — analyse many programs
  concurrently in worker processes, with per-program timeout and crash
  isolation (one pathological benchmark cannot sink the batch);
* :class:`~repro.engine.cache.ResultCache` — a content-addressed on-disk
  result cache keyed by (program source, options fingerprint, code version),
  making re-runs of unchanged benchmarks near-instant;
* :class:`~repro.engine.tasks.AnalysisTask` — one unit of work, with an
  extensible registry of task kinds (CHORA complexity / assertion checking,
  the ICRA and unrolling baselines, whole-program summaries);
* :mod:`repro.engine.storage` — the pluggable storage interface behind the
  result cache (a local directory, a shared network directory serving N
  machines, an in-memory test backend);
* :mod:`repro.engine.shard` — deterministic suite sharding over the
  host-independent cache key (``repro bench --shard i/n``), merging the
  other shards' results from the shared store;
* :mod:`repro.engine.suites` — build task batches from the benchmark suites
  of :mod:`repro.benchlib`;
* :mod:`repro.engine.profile` — the perf-history recorder and regression
  gate (``repro profile``), including the cold-vs-warm engine comparison;
* :mod:`repro.engine.config` — the environment switches shared by the CLI,
  the bench scripts and the examples (``REPRO_FULL_BENCH``, cache location).

The *serving* counterpart — long-lived warm workers behind an HTTP
endpoint — lives in :mod:`repro.service` and reuses the task registry and
cache of this package.
"""

from .batch import BatchEngine, BatchResult, summarize_batch
from .cache import ResultCache, make_cache
from .config import (
    CACHE_DIR_ENV,
    FULL_BENCH_ENV,
    NO_CACHE_ENV,
    cache_enabled,
    default_cache_directory,
    full_bench_enabled,
)
from .shard import parse_shard, partition_tasks, shard_index
from .storage import CacheStorage, DirectoryStorage, MemoryStorage
from .suites import suite_tasks
from .tasks import (
    AnalysisTask,
    execute_task,
    register_kind,
    registered_kinds,
    set_program_analyzer,
)

__all__ = [
    "BatchEngine",
    "BatchResult",
    "summarize_batch",
    "ResultCache",
    "make_cache",
    "CacheStorage",
    "DirectoryStorage",
    "MemoryStorage",
    "AnalysisTask",
    "execute_task",
    "register_kind",
    "registered_kinds",
    "set_program_analyzer",
    "suite_tasks",
    "parse_shard",
    "partition_tasks",
    "shard_index",
    "CACHE_DIR_ENV",
    "FULL_BENCH_ENV",
    "NO_CACHE_ENV",
    "cache_enabled",
    "default_cache_directory",
    "full_bench_enabled",
]
