"""Deterministic suite sharding over the host-independent cache key.

``repro bench --shard i/n`` splits a suite into ``n`` disjoint, exhaustive
shards so that ``n`` machines pointing at one shared cache directory act as
one batch.  The partition is a pure function of each task's *cache
material* (the semantic fields that determine its analysis output — the
same material the result cache keys on), so:

* every machine computes the same partition with no coordination,
* renaming a benchmark or re-ordering a suite does not move work between
  shards, and
* a task appearing in two suites lands on the same shard both times.

After running its own slice, a shard *merges*: tasks owned by other shards
are looked up in the shared :class:`~repro.engine.cache.ResultCache` and
reported as cache hits when present, or as ``pending`` (with the owning
shard named) when that shard has not finished yet.  Once every shard has
run, any one of them therefore reports the complete suite — with verdicts
bit-identical to an unsharded run, because cached payloads are exactly what
the unsharded engine would have computed.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Optional, Sequence

from ..core import ChoraOptions
from .batch import BatchResult
from .cache import ResultCache
from .tasks import AnalysisTask

__all__ = [
    "parse_shard",
    "shard_index",
    "partition_tasks",
    "merge_foreign_results",
    "merged_shard_results",
]

_SHARD_SPEC = re.compile(r"^(\d+)/(\d+)$")


def parse_shard(spec: str) -> tuple[int, int]:
    """Parse an ``i/n`` shard spec into 1-based ``(index, count)``.

    Raises ``ValueError`` on malformed specs, ``n < 1`` or ``i`` outside
    ``1..n``.
    """
    match = _SHARD_SPEC.match(spec.strip())
    if not match:
        raise ValueError(f"bad shard spec {spec!r} (expected I/N, e.g. 2/4)")
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1:
        raise ValueError(f"bad shard spec {spec!r}: shard count must be >= 1")
    if not 1 <= index <= count:
        raise ValueError(f"bad shard spec {spec!r}: index must be in 1..{count}")
    return index, count


def shard_index(task: AnalysisTask, count: int) -> int:
    """The 1-based shard that owns ``task`` in an ``n=count`` partition.

    Derived from a SHA-256 of the task's cache material, so the assignment
    is deterministic across hosts, processes and suite orderings.
    """
    material = json.dumps(
        task.cache_material(), sort_keys=True, separators=(",", ":")
    )
    digest = hashlib.sha256(material.encode("utf-8")).hexdigest()
    return int(digest[:16], 16) % count + 1


def partition_tasks(
    tasks: Sequence[AnalysisTask], index: int, count: int
) -> tuple[list[tuple[int, AnalysisTask]], list[tuple[int, AnalysisTask]]]:
    """Split ``tasks`` into (mine, foreign) slices for shard ``index``/``count``.

    Both slices carry the original task positions so a merged report can be
    reassembled in suite order.
    """
    mine: list[tuple[int, AnalysisTask]] = []
    foreign: list[tuple[int, AnalysisTask]] = []
    for position, task in enumerate(tasks):
        if shard_index(task, count) == index:
            mine.append((position, task))
        else:
            foreign.append((position, task))
    return mine, foreign


def merge_foreign_results(
    foreign: Sequence[tuple[int, AnalysisTask]],
    cache: ResultCache,
    options: ChoraOptions,
    count: int,
) -> list[tuple[int, BatchResult]]:
    """Resolve other shards' tasks from the shared store.

    Each foreign task becomes either a cache-hit :class:`BatchResult`
    (bit-identical to what its owning shard computed) or a ``pending``
    record naming the shard responsible for it.  All foreign keys are
    fetched in one :meth:`ResultCache.get_many` round, so a remote shared
    store pays its per-request latency once per merge, not once per task.
    """
    keys = [cache.key(task, options) for _, task in foreign]
    payloads = cache.get_many(keys)
    merged: list[tuple[int, BatchResult]] = []
    for (position, task), key in zip(foreign, keys):
        payload = payloads.get(key)
        if payload is not None:
            merged.append(
                (
                    position,
                    BatchResult(
                        name=task.name,
                        kind=task.kind,
                        outcome="ok",
                        wall_time=0.0,
                        cache_hit=True,
                        suite=task.suite,
                        proved=payload.get("proved"),
                        bound=payload.get("bound"),
                        payload=payload,
                    ),
                )
            )
        else:
            owner = shard_index(task, count)
            merged.append(
                (
                    position,
                    BatchResult(
                        name=task.name,
                        kind=task.kind,
                        outcome="pending",
                        wall_time=0.0,
                        suite=task.suite,
                        detail=f"owned by shard {owner}/{count};"
                        " not in the shared cache yet",
                    ),
                )
            )
    return merged


def merged_shard_results(
    tasks: Sequence[AnalysisTask],
    own_results: Sequence[BatchResult],
    mine: Sequence[tuple[int, AnalysisTask]],
    foreign: Sequence[tuple[int, AnalysisTask]],
    cache: ResultCache,
    options: ChoraOptions,
    count: int,
) -> list[BatchResult]:
    """Assemble the full suite report of one shard run, in suite order.

    Every task of the suite appears exactly once in the report: a slot that
    received neither an own result nor a merged foreign one (an engine
    bookkeeping bug, e.g. ``own_results`` shorter than ``mine``) is filled
    with an explicit ``error`` record instead of being dropped — a silently
    shortened report would read as a smaller suite.
    """
    slots: list[Optional[BatchResult]] = [None] * len(tasks)
    for (position, _), result in zip(mine, own_results):
        slots[position] = result
    for position, result in merge_foreign_results(foreign, cache, options, count):
        slots[position] = result
    for position, task in enumerate(tasks):
        if slots[position] is None:
            slots[position] = BatchResult(
                name=task.name,
                kind=task.kind,
                outcome="error",
                wall_time=0.0,
                suite=task.suite,
                detail="no result was recorded for this task while merging"
                " shard reports; this is an engine bookkeeping bug, not an"
                " analysis outcome",
            )
    return list(slots)
