"""The batch engine: many analyses, worker processes, isolation, caching.

Each task runs in its own worker process (forked where available, so the
warm parent image — parsed modules, sympy caches — is shared for free).  The
parent schedules up to ``jobs`` workers at a time and enforces a per-task
deadline: a worker that overruns is terminated and recorded as ``timeout``,
a worker that dies without reporting (hard crash, OOM kill) is recorded as
``crash``, and an exception inside the analysis is recorded as ``error`` with
its traceback — in every case the rest of the batch keeps running.

Because each task executes in a process forked from the same parent state,
results are bit-for-bit independent of scheduling: ``jobs=4`` produces the
same outcomes as a serial run.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from ..core import ChoraOptions
from .cache import ResultCache
from .tasks import AnalysisTask, InvalidProgram, execute_task

__all__ = ["BatchEngine", "BatchResult", "summarize_batch"]

#: Result outcomes, from best to worst.  ``pending`` only appears in sharded
#: runs: the task belongs to another shard and its result has not reached
#: the shared cache yet.
OUTCOMES = ("ok", "pending", "timeout", "error", "crash")


@dataclass(frozen=True)
class BatchResult:
    """The structured record of one task's run."""

    name: str
    kind: str
    outcome: str
    wall_time: float
    cache_hit: bool = False
    suite: Optional[str] = None
    #: shorthand columns extracted from the payload when present.
    proved: Optional[bool] = None
    bound: Optional[str] = None
    #: error / timeout detail (empty on success).
    detail: str = ""
    payload: Mapping[str, Any] = field(default_factory=dict, hash=False)

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "suite": self.suite,
            "kind": self.kind,
            "outcome": self.outcome,
            "proved": self.proved,
            "bound": self.bound,
            "wall_time": round(self.wall_time, 4),
            "cache_hit": self.cache_hit,
            "detail": self.detail,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "BatchResult":
        """Rebuild a result from its :meth:`to_dict` record.

        Used by the ``repro batch`` client to render records a remote
        ``POST /batch`` returned with the same reporting code local engines
        use; unknown outcomes or missing fields raise ``ValueError``.
        """
        try:
            outcome = str(record["outcome"])
            if outcome not in OUTCOMES:
                raise ValueError(f"unknown outcome {outcome!r}")
            payload = record.get("payload") or {}
            if not isinstance(payload, Mapping):
                raise ValueError('"payload" must be an object')
            return cls(
                name=str(record["name"]),
                kind=str(record["kind"]),
                outcome=outcome,
                wall_time=float(record.get("wall_time") or 0.0),
                cache_hit=bool(record.get("cache_hit", False)),
                suite=record.get("suite"),
                proved=record.get("proved"),
                bound=record.get("bound"),
                detail=str(record.get("detail") or ""),
                payload=dict(payload),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed result record: {error}") from None


def _result_from_payload(
    task: AnalysisTask, payload: dict, wall_time: float, cache_hit: bool
) -> BatchResult:
    return BatchResult(
        name=task.name,
        kind=task.kind,
        outcome="ok",
        wall_time=wall_time,
        cache_hit=cache_hit,
        suite=task.suite,
        proved=payload.get("proved"),
        bound=payload.get("bound"),
        payload=payload,
    )


def _unreported_result(task: AnalysisTask) -> BatchResult:
    """The explicit error record for a slot no result ever landed in."""
    return BatchResult(
        name=task.name,
        kind=task.kind,
        outcome="error",
        wall_time=0.0,
        suite=task.suite,
        detail="no result was recorded for this task; this is an engine"
        " bookkeeping bug, not an analysis outcome",
    )


def _worker(
    task: AnalysisTask, options: ChoraOptions, connection, memo_storage=None
) -> None:
    """Entry point of one worker process: run the task, report once.

    When ``memo_storage`` is given the fork warm-starts its polyhedral memo
    tables from the persisted snapshot (written by warm-pool workers, see
    :mod:`repro.polyhedra.cache`) before running: the tables are force-
    cleared first so the fork is deterministic regardless of parent state,
    and the task executes inside ``keep_warm`` so ``execute_task``'s
    cold-per-task clearing keeps the loaded entries.  Memoized queries are
    pure functions of their keys, so the snapshot changes latency, never
    results.

    The result send is guarded separately from the analysis: a payload that
    fails to *serialize* (``connection.send`` pickles it) must be reported
    as an ``error`` carrying the serialization traceback, not die mid-send
    and surface as an unexplained ``crash`` in the batch report.
    """

    def run() -> tuple:
        try:
            return ("ok", execute_task(task, options))
        except InvalidProgram as error:
            # A front-end rejection is a structured outcome, not a bug: the
            # one-line detail (no traceback) is what the CLI prints verbatim
            # and what the service maps to a 400 answer.
            return ("error", f"invalid-program: {error}")
        except BaseException:
            return ("error", traceback.format_exc(limit=20))

    try:
        if memo_storage is not None:
            from ..polyhedra.cache import clear_caches, keep_warm, load_snapshot
            from .cache import code_fingerprint

            clear_caches(force=True)
            try:
                load_snapshot(memo_storage, code_fingerprint())
            except Exception:
                # A broken snapshot store must never sink the task; the
                # fork simply runs cold.
                pass
            with keep_warm():
                message = run()
        else:
            message = run()
        try:
            connection.send(message)
        except BaseException:
            connection.send(
                (
                    "error",
                    "the task succeeded but its result payload could not be"
                    " serialized for the parent process:\n"
                    + traceback.format_exc(limit=20),
                )
            )
    finally:
        connection.close()


class _Running:
    """Book-keeping for one in-flight worker."""

    __slots__ = ("process", "connection", "task", "key", "started")

    def __init__(self, process, connection, task, key, started):
        self.process = process
        self.connection = connection
        self.task = task
        self.key = key
        self.started = started


class BatchEngine:
    """Analyse batches of programs concurrently, with caching and isolation.

    Parameters
    ----------
    jobs:
        Maximum number of concurrently running worker processes.
    timeout:
        Per-task deadline in seconds.  ``None`` disables the deadline; ``0``
        is an *immediate* deadline — cache hits still serve, but no worker
        is ever spawned and every other task is reported as ``timeout``.
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching.
    options:
        The :class:`ChoraOptions` every task is analysed under.
    memo_snapshot:
        Whether worker forks warm-start their polyhedral memo tables from
        the snapshot persisted in the cache's ``memo`` namespace (written
        by warm-pool runs).  ``None`` — the default — enables it exactly
        when a cache is configured; it closes most of the cold-start gap
        between ``--engine pool`` and ``--engine warm`` without giving up
        per-task process isolation.  Forks only *load*; merging back is
        the warm pool's job (many short-lived forks racing on the snapshot
        would pay more in pickling than they could ever save).
    """

    def __init__(
        self,
        jobs: int = 1,
        timeout: Optional[float] = None,
        cache: Optional[ResultCache] = None,
        options: ChoraOptions = ChoraOptions(),
        memo_snapshot: Optional[bool] = None,
    ):
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.cache = cache
        self.options = options
        enabled = (cache is not None) if memo_snapshot is None else bool(memo_snapshot)
        self.memo_storage = (
            cache.memo_storage() if enabled and cache is not None else None
        )
        methods = multiprocessing.get_all_start_methods()
        # Fork shares the parent's warm module state with every worker and
        # keeps ad-hoc registered task kinds visible to them.
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    # ------------------------------------------------------------------ #
    def run(
        self,
        tasks: Sequence[AnalysisTask],
        progress: Optional[Callable[[BatchResult], None]] = None,
    ) -> list[BatchResult]:
        """Run every task; results come back in task order."""
        results: list[Optional[BatchResult]] = [None] * len(tasks)

        def finish(index: int, result: BatchResult) -> None:
            results[index] = result
            if progress is not None:
                progress(result)

        queue: deque[tuple[int, AnalysisTask, Optional[str]]] = deque()
        for index, task in enumerate(tasks):
            key = self.cache.key(task, self.options) if self.cache else None
            if key is not None:
                payload = self.cache.get(key)
                if payload is not None:
                    finish(index, _result_from_payload(task, payload, 0.0, True))
                    continue
            if self.timeout == 0:
                # An immediate deadline: deterministic, no worker is spawned
                # (a fast task must not win a race against the reaper).
                finish(
                    index,
                    BatchResult(
                        name=task.name,
                        kind=task.kind,
                        outcome="timeout",
                        wall_time=0.0,
                        suite=task.suite,
                        detail="exceeded the 0s deadline",
                    ),
                )
                continue
            queue.append((index, task, key))

        running: dict[int, _Running] = {}
        try:
            while queue or running:
                while queue and len(running) < self.jobs:
                    index, task, key = queue.popleft()
                    running[index] = self._spawn(task, key)
                self._reap(running, finish)
        finally:
            for state in running.values():
                self._kill(state)
        # Every task must be accounted for: a slot that never received a
        # result (an engine bookkeeping bug, or the run() above unwinding
        # through an exception) becomes an explicit error record instead of
        # silently shrinking the report.
        for index, task in enumerate(tasks):
            if results[index] is None:
                finish(index, _unreported_result(task))
        return [result for result in results if result is not None]

    def run_suite(
        self,
        suite: str,
        full: Optional[bool] = None,
        progress: Optional[Callable[[BatchResult], None]] = None,
    ) -> list[BatchResult]:
        """Analyse one of the paper's benchmark suites (or ``"all"``)."""
        from .suites import suite_tasks

        return self.run(suite_tasks(suite, full), progress)

    # ------------------------------------------------------------------ #
    def _spawn(self, task: AnalysisTask, key: Optional[str]) -> _Running:
        receiver, sender = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker,
            args=(task, self.options, sender, self.memo_storage),
            daemon=True,
        )
        started = time.monotonic()
        process.start()
        sender.close()
        return _Running(process, receiver, task, key, started)

    def _reap(
        self,
        running: dict[int, _Running],
        finish: Callable[[int, BatchResult], None],
    ) -> None:
        """Wait briefly for workers, then settle every finished/overdue one."""
        connections = [state.connection for state in running.values()]
        if connections:
            multiprocessing.connection.wait(connections, timeout=0.05)
        for index, state in list(running.items()):
            elapsed = time.monotonic() - state.started
            message = self._try_recv(state)
            dead = not state.process.is_alive()
            if message is None and dead:
                # The worker may have sent its result between our poll and
                # its exit — one final receive before declaring a crash.
                message = self._try_recv(state)
            if message is not None:
                state.process.join()
                state.connection.close()
                del running[index]
                status, body = message
                if status == "ok":
                    if state.key is not None and self.cache is not None:
                        self.cache.put(
                            state.key,
                            body,
                            task_name=state.task.name,
                            suite=state.task.suite,
                        )
                    finish(
                        index, _result_from_payload(state.task, body, elapsed, False)
                    )
                else:
                    finish(
                        index,
                        BatchResult(
                            name=state.task.name,
                            kind=state.task.kind,
                            outcome="error",
                            wall_time=elapsed,
                            suite=state.task.suite,
                            detail=str(body),
                        ),
                    )
            elif dead:
                state.process.join()
                state.connection.close()
                del running[index]
                finish(
                    index,
                    BatchResult(
                        name=state.task.name,
                        kind=state.task.kind,
                        outcome="crash",
                        wall_time=elapsed,
                        suite=state.task.suite,
                        detail=f"worker exited with code {state.process.exitcode}"
                        " without reporting a result",
                    ),
                )
            elif self.timeout is not None and elapsed > self.timeout:
                self._kill(state)
                del running[index]
                finish(
                    index,
                    BatchResult(
                        name=state.task.name,
                        kind=state.task.kind,
                        outcome="timeout",
                        wall_time=elapsed,
                        suite=state.task.suite,
                        detail=f"exceeded the {self.timeout:g}s deadline",
                    ),
                )

    @staticmethod
    def _try_recv(state: _Running):
        if state.connection.poll():
            try:
                return state.connection.recv()
            except (EOFError, OSError):
                return None
            except BaseException:
                # The worker reported, but its payload failed to
                # *deserialize* (a __reduce__ that raises on load, a class
                # that only exists in the worker, ...).  That is this task's
                # error, never a reason to sink the whole batch.
                return (
                    "error",
                    "the worker's result payload could not be deserialized:\n"
                    + traceback.format_exc(limit=20),
                )
        return None

    @staticmethod
    def _kill(state: _Running) -> None:
        if state.process.is_alive():
            state.process.terminate()
            state.process.join(5)
            if state.process.is_alive():  # pragma: no cover - stubborn worker
                state.process.kill()
                state.process.join()
        state.connection.close()


def summarize_batch(results: Sequence[BatchResult]) -> dict[str, Any]:
    """Aggregate counters for reports and CI logs.

    ``error`` (an exception inside the analysis, reported with a traceback)
    and ``crash`` (the worker process died without reporting) are distinct
    failure modes — a crash points at the engine or the environment, an
    error at the analysis — so they are counted separately.
    """
    return {
        "total": len(results),
        "ok": sum(result.outcome == "ok" for result in results),
        "proved": sum(bool(result.proved) for result in results),
        "timeout": sum(result.outcome == "timeout" for result in results),
        "error": sum(result.outcome == "error" for result in results),
        "crash": sum(result.outcome == "crash" for result in results),
        "pending": sum(result.outcome == "pending" for result in results),
        "cache_hits": sum(result.cache_hit for result in results),
        "wall_time": round(sum(result.wall_time for result in results), 3),
    }
