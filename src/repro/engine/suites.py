"""Build engine task batches from the paper's benchmark suites."""

from __future__ import annotations

from typing import Optional

from ..benchlib.suites import SUITES, get_suite
from .config import full_bench_enabled
from .tasks import AnalysisTask

__all__ = ["suite_tasks"]


def suite_tasks(suite: str, full: Optional[bool] = None) -> list[AnalysisTask]:
    """The tasks of one suite (or ``"all"``), respecting full-bench gating.

    ``full=None`` defers to the ``REPRO_FULL_BENCH`` environment switch, so
    the CLI, the bench scripts and the examples agree on what "the suite"
    means by default.
    """
    if full is None:
        full = full_bench_enabled()
    names = list(SUITES) if suite == "all" else [suite]
    tasks: list[AnalysisTask] = []
    for name in names:
        loaded = get_suite(name)
        tasks.extend(
            AnalysisTask.from_entry(entry, suite=loaded.name)
            for entry in loaded.iter(full)
        )
    return tasks
