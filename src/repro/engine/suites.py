"""Build engine task batches from the paper's benchmark suites."""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..benchlib.suites import SUITES, get_suite
from .config import full_bench_enabled
from .tasks import AnalysisTask

__all__ = ["suite_tasks", "TOOLS"]

#: Tool name -> mapping from an entry's native kind to the kind to run.
#: ``chora`` runs every suite natively; the baselines substitute their task
#: kind where they apply (bounded unrolling has no complexity-bound mode).
TOOLS: dict[str, dict[str, str]] = {
    "chora": {"complexity": "complexity", "assertion": "assertion"},
    "icra": {"complexity": "complexity-icra", "assertion": "assertion-icra"},
    "unrolling": {"assertion": "assertion-unrolling"},
}


def suite_tasks(
    suite: str,
    full: Optional[bool] = None,
    tool: str = "chora",
    depth: Optional[int] = None,
) -> list[AnalysisTask]:
    """The tasks of one suite (or ``"all"``), respecting full-bench gating.

    ``full=None`` defers to the ``REPRO_FULL_BENCH`` environment switch, so
    the CLI, the bench scripts and the examples agree on what "the suite"
    means by default.  ``tool`` selects the analyser (CHORA or one of the
    paper's comparison baselines); ``depth`` sets the unrolling depth for
    the ``unrolling`` tool.  A ``ValueError`` is raised when the tool has no
    mode for one of the suite's entries (e.g. unrolling on Table 1).
    """
    if full is None:
        full = full_bench_enabled()
    try:
        kind_map = TOOLS[tool]
    except KeyError:
        known = ", ".join(sorted(TOOLS))
        raise ValueError(f"unknown tool {tool!r} (known: {known})") from None
    if depth is not None and tool != "unrolling":
        raise ValueError("--depth only applies to --tool unrolling")
    names = list(SUITES) if suite == "all" else [suite]
    tasks: list[AnalysisTask] = []
    for name in names:
        loaded = get_suite(name)
        for entry in loaded.iter(full):
            kind = kind_map.get(entry.kind)
            if kind is None:
                raise ValueError(
                    f"tool {tool!r} has no mode for {entry.kind!r} entries "
                    f"(suite {loaded.name!r}, benchmark {entry.name!r})"
                )
            task = AnalysisTask.from_entry(entry, suite=loaded.name)
            if kind != entry.kind:
                task = dataclasses.replace(task, kind=kind)
            if kind == "assertion-unrolling" and depth is not None:
                task = dataclasses.replace(task, params=(("depth", int(depth)),))
            tasks.append(task)
    return tasks
