"""Open-loop load generation against a running ``repro serve``.

``repro loadtest --url URL --rps N --duration S`` measures the service the
way ``repro profile`` measures the engines: drive a known load, record
what happened into the append-only perf history
(``benchmarks/perf/BENCH_service.json``), so the throughput/latency
trajectory of the service front-end lives in the repository next to the
cold/warm engine numbers in ``BENCH_engines.json``.

The generator is **open loop**: request *i* is due at ``start + i/rps``
regardless of whether earlier requests have answered.  A closed loop (send
the next request when the last returns) hides overload — a saturated
server slows the generator down with itself and the measured latency
stays flat.  Open-loop load keeps arriving like real clients do, so queue
growth shows up as rising latency, then 429s once the admission queue
fills.  ``concurrency`` worker threads (each holding one keep-alive
:class:`~repro.service.client.ServiceClient` connection) pull due requests
from the shared schedule; when all of them are stuck waiting on the
server, further due requests simply start late, and that lag is reported
(``lag_p95_ms``) so an under-provisioned *generator* is visible too.

Every sample records its status class: 2xx (served), 429 (backpressure),
504 (deadline expired — when ``deadline_ms`` is set), other HTTP errors,
and transport errors.  Throughput counts only 2xx.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Mapping, Optional

from ..service.client import ServiceClient, ServiceError, ServiceHTTPError
from .profile import percentile

__all__ = [
    "DEFAULT_PROGRAM",
    "loadtest_entry",
    "run_loadtest",
]

#: The request every worker posts unless the caller supplies a body: small
#: enough that throughput exercises the HTTP front-end and pool dispatch
#: rather than the analyzer, but still a real end-to-end analysis.
DEFAULT_PROGRAM = (
    "int main(int n) { assume(n >= 0); int r = n + 1;"
    " assert(r >= 1); return r; }"
)


def _worker(
    schedule_start: float,
    interval: float,
    total: int,
    cursor: list[int],
    cursor_lock: threading.Lock,
    samples: list[tuple[int, float, float]],
    samples_lock: threading.Lock,
    make_client: Callable[[], ServiceClient],
    document: Mapping[str, Any],
    deadline_ms: Optional[float],
) -> None:
    """One generator thread: pull due slots, fire, record.

    Samples are ``(status, latency_seconds, lag_seconds)`` where status 0
    means the request never completed an HTTP conversation and lag is how
    far past its scheduled instant the request actually started.
    """
    client = make_client()
    try:
        while True:
            with cursor_lock:
                index = cursor[0]
                if index >= total:
                    return
                cursor[0] = index + 1
            due = schedule_start + index * interval
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            started = time.monotonic()
            lag = max(0.0, started - due)
            try:
                response = client.analyze(document, deadline_ms=deadline_ms)
                status = response.status
            except ServiceHTTPError as error:
                status = error.status
            except ServiceError:
                status = 0
            latency = time.monotonic() - started
            with samples_lock:
                samples.append((status, latency, lag))
    finally:
        client.close()


def run_loadtest(
    url: str,
    rps: float = 20.0,
    duration: float = 10.0,
    concurrency: int = 8,
    deadline_ms: Optional[float] = None,
    document: Optional[Mapping[str, Any]] = None,
    timeout: float = 60.0,
    client_factory: Callable[..., ServiceClient] = ServiceClient,
) -> dict[str, Any]:
    """Drive ``rps`` requests/second at ``url`` for ``duration`` seconds.

    Returns the report document (also the shape recorded into
    ``BENCH_service.json`` by :func:`loadtest_entry`): request/response
    counts by status class, 2xx throughput, latency percentiles over the
    served responses, and scheduling lag.  Raises ``ValueError`` on
    nonsensical parameters; transport failures are *data* (counted as
    ``unreachable``), not exceptions — a dead server is a valid finding.
    """
    if rps <= 0:
        raise ValueError(f"--rps must be positive, got {rps!r}")
    if duration <= 0:
        raise ValueError(f"--duration must be positive, got {duration!r}")
    if concurrency < 1:
        raise ValueError(f"--concurrency must be at least 1, got {concurrency!r}")
    total = max(1, int(rps * duration))
    interval = 1.0 / rps
    body = dict(document) if document is not None else {"source": DEFAULT_PROGRAM}
    cursor = [0]
    cursor_lock = threading.Lock()
    samples: list[tuple[int, float, float]] = []
    samples_lock = threading.Lock()
    make_client = lambda: client_factory(url, timeout=timeout)  # noqa: E731
    schedule_start = time.monotonic()
    threads = [
        threading.Thread(
            target=_worker,
            args=(
                schedule_start,
                interval,
                total,
                cursor,
                cursor_lock,
                samples,
                samples_lock,
                make_client,
                body,
                deadline_ms,
            ),
            daemon=True,
        )
        for _ in range(min(concurrency, total))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - schedule_start

    served = [s for s in samples if 200 <= s[0] < 300]
    latencies = [latency for _, latency, _ in served]
    lags = [lag for _, _, lag in samples]
    statuses: dict[str, int] = {}
    for status, _, _ in samples:
        key = str(status) if status else "unreachable"
        statuses[key] = statuses.get(key, 0) + 1

    def ms(value: Optional[float]) -> Optional[float]:
        return None if value is None else round(value * 1000.0, 3)

    return {
        "url": url,
        "rps_target": rps,
        "duration_target": duration,
        "concurrency": len(threads),
        "deadline_ms": deadline_ms,
        "elapsed_seconds": round(elapsed, 3),
        "requested": total,
        "completed": len(samples) - statuses.get("unreachable", 0),
        "served_2xx": len(served),
        "rejected_429": statuses.get("429", 0),
        "deadline_504": statuses.get("504", 0),
        "unreachable": statuses.get("unreachable", 0),
        "statuses": dict(sorted(statuses.items())),
        "throughput_rps": round(len(served) / elapsed, 3) if elapsed else 0.0,
        "latency": {
            "p50_ms": ms(percentile(latencies, 50)),
            "p95_ms": ms(percentile(latencies, 95)),
            "p99_ms": ms(percentile(latencies, 99)),
            "mean_ms": ms(sum(latencies) / len(latencies) if latencies else None),
            "max_ms": ms(max(latencies) if latencies else None),
        },
        "lag_p95_ms": ms(percentile(lags, 95)),
    }


def loadtest_entry(report: Mapping[str, Any], label: str = "") -> dict[str, Any]:
    """Wrap one loadtest report as a BENCH_service.json perf entry.

    The ``rows`` mirror the suite/micro entry shape (name + seconds) so
    :func:`repro.engine.profile.compare_entries` can diff service entries
    too; the full report rides along under ``"report"``.  Service entries
    are informational (CI records them without gating), like the
    ``engines`` comparisons.
    """
    from .profile import _timestamp

    latency = report.get("latency", {})
    rows = []
    for quantile in ("p50_ms", "p95_ms", "p99_ms"):
        value = latency.get(quantile)
        if value is not None:
            rows.append(
                {"name": f"analyze/{quantile[:-3]}", "seconds": round(value / 1000, 5)}
            )
    return {
        "kind": "service",
        "suite": "service",
        "label": label,
        "created": _timestamp(),
        "rows": rows,
        "totals": {
            "throughput_rps": report.get("throughput_rps"),
            "served_2xx": report.get("served_2xx"),
            "rejected_429": report.get("rejected_429"),
            "deadline_504": report.get("deadline_504"),
            "requested": report.get("requested"),
        },
        "report": dict(report),
    }
