"""Pluggable storage backends for the content-addressed result cache.

:class:`~repro.engine.cache.ResultCache` computes *what* to store (the
content key and the JSON entry); a :class:`CacheStorage` decides *where*.
The contract is deliberately tiny — atomic whole-entry reads and writes
under opaque string names — so that a backend can be a local directory, a
directory on a network file system shared by N machines (which is how
``repro bench --shard i/n`` turns N hosts into one batch: the cache key is
host-independent, so every shard reads the others' results from the shared
store), an in-memory dict in tests, or an object store.

Contract
--------
* ``write`` is atomic per entry: a concurrent ``read`` sees either the
  complete previous value or the complete new value, never a torn one.
  Last-writer-wins races are benign because entries are content-addressed —
  two writers for one name are writing the same analysis result.
* Failures are the caller's problem only for ``read``-side corruption
  (handled by :class:`ResultCache` as a miss); ``write`` failures must not
  raise in a way that sinks an analysis batch (``ResultCache.put`` wraps
  them).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Optional

__all__ = ["CacheStorage", "DirectoryStorage", "MemoryStorage", "PrefixStorage"]


class CacheStorage(ABC):
    """Atomic key→bytes storage for cache entries (see module docstring)."""

    @abstractmethod
    def read(self, name: str) -> Optional[bytes]:
        """The stored bytes for ``name``, or ``None`` when absent/unreadable."""

    @abstractmethod
    def write(self, name: str, data: bytes) -> None:
        """Atomically store ``data`` under ``name`` (may raise ``OSError``)."""

    @abstractmethod
    def delete(self, name: str) -> bool:
        """Remove ``name``; returns whether an entry was actually removed."""

    @abstractmethod
    def names(self) -> Iterator[str]:
        """Iterate over the stored entry names (order unspecified)."""

    @abstractmethod
    def location(self) -> str:
        """A human-readable description of where entries live."""

    def size_of(self, name: str) -> int:
        """Stored size of ``name`` in bytes (0 when absent)."""
        data = self.read(name)
        return len(data) if data is not None else 0

    def read_many(self, names: Iterable[str]) -> dict[str, bytes]:
        """The present entries among ``names``, as a name→bytes mapping.

        Absent or unreadable entries are simply omitted — the read contract
        per name is the same as :meth:`read`'s.  The default loops over
        :meth:`read`; backends with per-call latency (a remote store, an
        object store) override or inherit a transport that amortises it
        (the HTTP backend reuses one keep-alive connection).
        """
        found: dict[str, bytes] = {}
        for name in names:
            data = self.read(name)
            if data is not None:
                found[name] = data
        return found

    def write_many(self, entries: Mapping[str, bytes]) -> None:
        """Store every ``name → data`` pair (each write atomic per entry)."""
        for name, data in entries.items():
            self.write(name, data)

    def stats(self) -> dict[str, Any]:
        """Entry/byte counters of this store, plus its namespaces' counters.

        The uniform shape — ``{"location", "entries", "bytes",
        "namespaces": {name: {"entries", "bytes"}}}`` — is what ``repro
        cache stats`` and the service's ``GET /v1/cache/stats`` route
        render, so it must not assume a filesystem.  Backends that cannot
        enumerate their namespaces (the generic prefix view) report ``{}``.
        """
        entries = 0
        size = 0
        for name in self.names():
            entries += 1
            size += self.size_of(name)
        return {
            "location": self.location(),
            "entries": entries,
            "bytes": size,
            "namespaces": self._namespace_stats(),
        }

    def _namespace_stats(self) -> dict[str, dict[str, int]]:
        """Per-namespace counters for :meth:`stats` (empty when unknowable)."""
        return {}

    def namespace(self, name: str) -> "CacheStorage":
        """A sub-store of this backend under its own key space.

        Independent caches — analysis results and the polyhedral memo
        snapshot — share one backend without key collisions by writing
        through namespaces.  :class:`DirectoryStorage` maps a namespace to a
        subdirectory and :class:`MemoryStorage` to a child store, keeping
        namespaced entries out of the parent's :meth:`names`; the generic
        fallback prefixes entry names (a prefixed entry does appear in a
        backend's raw listing — override this method where that matters).
        """
        return PrefixStorage(self, name)


class PrefixStorage(CacheStorage):
    """A namespace view over another backend (name-prefix based)."""

    def __init__(self, inner: CacheStorage, prefix: str):
        self.inner = inner
        self.prefix = f"{prefix}::"

    def read(self, name: str) -> Optional[bytes]:
        return self.inner.read(self.prefix + name)

    def write(self, name: str, data: bytes) -> None:
        self.inner.write(self.prefix + name, data)

    def delete(self, name: str) -> bool:
        return self.inner.delete(self.prefix + name)

    def names(self) -> Iterator[str]:
        for name in self.inner.names():
            if name.startswith(self.prefix):
                yield name[len(self.prefix) :]

    def location(self) -> str:
        return f"{self.inner.location()}::{self.prefix.rstrip(':')}"

    def size_of(self, name: str) -> int:
        return self.inner.size_of(self.prefix + name)


class DirectoryStorage(CacheStorage):
    """One file per entry in a directory (the default backend).

    Writes go through a temp file + ``os.replace`` so concurrent engines —
    including shards on different machines pointing at one shared directory
    — can mix reads and writes safely.
    """

    #: File extension of cache entries (kept from the pre-interface layout,
    #: so existing cache directories remain valid).
    SUFFIX = ".json"

    def __init__(self, directory: Path | str):
        self.directory = Path(directory)

    def _path(self, name: str) -> Path:
        return self.directory / f"{name}{self.SUFFIX}"

    def read(self, name: str) -> Optional[bytes]:
        try:
            return self._path(name).read_bytes()
        except OSError:
            return None

    def write(self, name: str, data: bytes) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".cache-", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(data)
            os.replace(temp_path, self._path(name))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def delete(self, name: str) -> bool:
        try:
            self._path(name).unlink()
            return True
        except OSError:
            return False

    def names(self) -> Iterator[str]:
        if not self.directory.is_dir():
            return
        for path in self.directory.glob(f"*{self.SUFFIX}"):
            yield path.name[: -len(self.SUFFIX)]

    def location(self) -> str:
        return str(self.directory)

    def size_of(self, name: str) -> int:
        try:
            return self._path(name).stat().st_size
        except OSError:
            return 0

    def namespace(self, name: str) -> CacheStorage:
        # A subdirectory rather than a name prefix: ``names()`` globs are
        # non-recursive, so namespaced entries stay invisible to result-cache
        # scans, and the entry names stay portable filenames.
        return DirectoryStorage(self.directory / name)

    def _namespace_stats(self) -> dict[str, dict[str, int]]:
        if not self.directory.is_dir():
            return {}
        counters: dict[str, dict[str, int]] = {}
        for child in sorted(self.directory.iterdir()):
            if not child.is_dir() or child.name.startswith("."):
                continue
            store = DirectoryStorage(child)
            names = list(store.names())
            counters[child.name] = {
                "entries": len(names),
                "bytes": sum(store.size_of(name) for name in names),
            }
        return counters


class MemoryStorage(CacheStorage):
    """A process-local dict backend (tests, ephemeral service caches)."""

    def __init__(self) -> None:
        self._entries: dict[str, bytes] = {}
        self._namespaces: dict[str, "MemoryStorage"] = {}

    def read(self, name: str) -> Optional[bytes]:
        return self._entries.get(name)

    def write(self, name: str, data: bytes) -> None:
        self._entries[name] = data

    def delete(self, name: str) -> bool:
        return self._entries.pop(name, None) is not None

    def names(self) -> Iterator[str]:
        yield from list(self._entries)

    def location(self) -> str:
        return "<memory>"

    def namespace(self, name: str) -> CacheStorage:
        # A child store (mirroring DirectoryStorage's subdirectory), so
        # namespaced entries never appear in this store's own listing and
        # repeated calls share one namespace.
        store = self._namespaces.get(name)
        if store is None:
            store = self._namespaces[name] = MemoryStorage()
        return store

    def _namespace_stats(self) -> dict[str, dict[str, int]]:
        return {
            name: {
                "entries": len(store._entries),
                "bytes": sum(len(data) for data in store._entries.values()),
            }
            for name, store in sorted(self._namespaces.items())
        }
