"""Content-addressed on-disk cache of analysis results.

A cache entry is keyed by everything that determines the analysis output:
the program source, the task's semantic fields (kind, procedure, cost
variable, substitutions, extra parameters), the full
:class:`~repro.core.chora.ChoraOptions` fingerprint, and the code version —
a content hash of the installed ``repro`` sources, so editing a benchmark,
flipping an ablation switch, or changing *any* analysis code (even without
a version bump) each invalidates the affected entries.  Benchmark *names*
are deliberately not part of the key: two suites sharing a program share its
cached result.

Entries are single JSON documents named by the key's SHA-256 digest, held
in a pluggable :class:`~repro.engine.storage.CacheStorage` backend.  The
default backend is a directory of files written atomically (temp file +
rename) so concurrent engines — including ``repro bench --shard i/n``
shards on different machines pointing at one shared directory — can mix
reads and writes safely; the key is host-independent, so a shared store
turns N machines into one batch.
"""

from __future__ import annotations

import functools
import hashlib
import json
from pathlib import Path
from typing import Any, Optional, Sequence

from .. import __version__
from ..core import ChoraOptions
from .config import cache_enabled, default_cache_directory
from .storage import CacheStorage, DirectoryStorage
from .tasks import AnalysisTask

__all__ = ["ResultCache", "make_cache", "CACHE_SCHEMA_VERSION"]

#: Bump when the cached payload shape changes incompatibly.
CACHE_SCHEMA_VERSION = 1


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """A content hash of the installed ``repro`` package sources.

    Computed once per process; keying cache entries on it means an edit to
    any analysis module invalidates stale results even when the declared
    package version does not change (the common case during development).
    """
    root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256(__version__.encode("utf-8"))
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        try:
            digest.update(path.read_bytes())
        except OSError:
            continue
    return digest.hexdigest()


def cache_key(task: AnalysisTask, options: ChoraOptions) -> str:
    """The SHA-256 cache key of one (task, options) pair."""
    material = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "code": code_fingerprint(),
            "task": task.cache_material(),
            "options": options.to_dict(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def make_cache(
    no_cache: bool = False,
    directory: Optional[Path | str] = None,
    url: Optional[str] = None,
) -> Optional["ResultCache"]:
    """The cache implied by CLI-style switches (shared by CLI and examples).

    ``no_cache`` wins over everything; an explicitly requested ``url``
    (``--cache-url``, a remote cache plane served by ``repro serve``) or
    ``directory`` wins over the ``REPRO_NO_CACHE`` environment default;
    otherwise caching is on at the default location unless the environment
    disables it.
    """
    if no_cache:
        return None
    if url is not None and directory is not None:
        raise ValueError("pass either a cache directory or a cache URL, not both")
    if url is not None:
        # Imported lazily: the engine layer only depends on the service's
        # HTTP client when a remote cache plane is actually requested.
        from ..service.remote import RemoteStorage

        return ResultCache(storage=RemoteStorage(url))
    if directory is not None:
        return ResultCache(directory)
    if not cache_enabled():
        return None
    return ResultCache(default_cache_directory())


class ResultCache:
    """Content-addressed analysis payloads over a pluggable storage backend.

    ``ResultCache(directory)`` keeps the historical behaviour (one JSON file
    per entry in ``directory``); ``ResultCache(storage=backend)`` accepts
    any :class:`~repro.engine.storage.CacheStorage`, which is how a shared
    network directory, an in-memory test cache, or a future object store
    plug in without the engine noticing.
    """

    def __init__(
        self,
        directory: Optional[Path | str] = None,
        *,
        storage: Optional[CacheStorage] = None,
    ):
        if storage is None:
            if directory is None:
                raise ValueError("ResultCache needs a directory or a storage backend")
            storage = DirectoryStorage(directory)
        elif directory is not None:
            raise ValueError("pass either a directory or a storage backend, not both")
        self.storage = storage

    @property
    def directory(self) -> Optional[Path]:
        """The backing directory, when the backend has one (else ``None``)."""
        if isinstance(self.storage, DirectoryStorage):
            return self.storage.directory
        return None

    def key(self, task: AnalysisTask, options: ChoraOptions) -> str:
        return cache_key(task, options)

    def _load_entry(self, key: str) -> Optional[dict[str, Any]]:
        data = self.storage.read(key)
        if data is None:
            return None
        try:
            entry = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return entry if isinstance(entry, dict) else None

    def get(self, key: str) -> Optional[dict[str, Any]]:
        """The cached payload for ``key``, or ``None`` on a miss."""
        entry = self._load_entry(key)
        if entry is None:
            return None
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def get_many(self, keys: Sequence[str]) -> dict[str, dict[str, Any]]:
        """The cached payloads among ``keys`` (misses omitted).

        One :meth:`CacheStorage.read_many` round instead of a per-key
        :meth:`get` loop, so batch consumers (the shard merge, the stats
        breakdown) amortise a remote backend's per-request latency.
        """
        payloads: dict[str, dict[str, Any]] = {}
        for key, data in self.storage.read_many(keys).items():
            try:
                entry = json.loads(data.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue
            if not isinstance(entry, dict):
                continue
            payload = entry.get("payload")
            if isinstance(payload, dict):
                payloads[key] = payload
        return payloads

    def put(
        self,
        key: str,
        payload: dict[str, Any],
        *,
        task_name: str = "",
        suite: Optional[str] = None,
    ) -> None:
        """Store ``payload`` under ``key`` (atomic; failures are non-fatal).

        ``task_name`` and ``suite`` are reporting metadata (shown by
        ``repro cache stats``), not part of the content key.
        """
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "code": __version__,
            "task": task_name,
            "suite": suite,
            "payload": payload,
        }
        try:
            data = json.dumps(entry, sort_keys=True).encode("utf-8")
            self.storage.write(key, data)
        except (OSError, TypeError, ValueError):
            # A broken cache must never break the analysis run.
            return

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        removed = 0
        for name in list(self.storage.names()):
            if self.storage.delete(name):
                removed += 1
        return removed

    # ------------------------------------------------------------------ #
    # The polyhedral memo snapshot (persisted projection/LP memo tables)
    # lives in a ``memo`` namespace of the same storage backend.  Warm
    # service workers read and write it (see repro.service.pool); the
    # methods below only surface it to ``repro cache stats|clear``.
    # ------------------------------------------------------------------ #
    def memo_storage(self) -> CacheStorage:
        """The storage namespace holding the polyhedral memo snapshot."""
        return self.storage.namespace("memo")

    def memo_snapshot_stats(self) -> dict[str, Any]:
        """Presence/size/per-table entry counts of the memo snapshot."""
        from ..polyhedra.cache import snapshot_stats

        return snapshot_stats(self.memo_storage(), code_fingerprint())

    def clear_memo_snapshot(self) -> bool:
        """Remove the memo snapshot; returns whether one existed."""
        from ..polyhedra.cache import SNAPSHOT_NAME

        return self.memo_storage().delete(SNAPSHOT_NAME)

    # ------------------------------------------------------------------ #
    # The persisted incremental summary store (per-SCC procedure summaries
    # of the warm workers, see repro.core.incremental) lives in an
    # ``incremental`` namespace of the same backend.
    # ------------------------------------------------------------------ #
    def incremental_storage(self) -> CacheStorage:
        """The storage namespace holding the incremental summary store."""
        return self.storage.namespace("incremental")

    def incremental_store_stats(self) -> dict[str, Any]:
        """Presence/size/component counts of the incremental summary store."""
        from ..core.incremental import store_stats

        return store_stats(self.incremental_storage(), code_fingerprint())

    def clear_incremental_store(self) -> bool:
        """Remove the incremental summary store; returns whether one existed."""
        from ..core.incremental import STORE_NAME

        return self.incremental_storage().delete(STORE_NAME)

    def stats(self, per_suite: bool = True) -> dict[str, Any]:
        """Entry count, total size, and per-suite breakdown of the cache.

        The ``suites`` mapping counts entries by the suite that produced
        them; entries recorded outside any suite (``repro analyze``, the
        service) or predating the suite metadata appear under ``"(none)"``.
        The breakdown requires reading every entry, so hot-path callers
        (the service's ``/stats`` route) pass ``per_suite=False`` to get
        the counters from file metadata alone.
        """
        names = list(self.storage.names())
        stats: dict[str, Any] = {
            "directory": self.storage.location(),
            "entries": len(names),
        }
        if not per_suite:
            stats["bytes"] = sum(self.storage.size_of(name) for name in names)
            return stats
        size = 0
        suites: dict[str, int] = {}
        for data in self.storage.read_many(names).values():
            size += len(data)
            try:
                entry = json.loads(data.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                entry = None
            suite = (entry or {}).get("suite") or "(none)"
            suites[suite] = suites.get(suite, 0) + 1
        stats["bytes"] = size
        stats["suites"] = dict(sorted(suites.items()))
        return stats
