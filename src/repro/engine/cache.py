"""Content-addressed on-disk cache of analysis results.

A cache entry is keyed by everything that determines the analysis output:
the program source, the task's semantic fields (kind, procedure, cost
variable, substitutions, extra parameters), the full
:class:`~repro.core.chora.ChoraOptions` fingerprint, and the code version —
a content hash of the installed ``repro`` sources, so editing a benchmark,
flipping an ablation switch, or changing *any* analysis code (even without
a version bump) each invalidates the affected entries.  Benchmark *names*
are deliberately not part of the key: two suites sharing a program share its
cached result.

Entries are single JSON files named by the key's SHA-256 digest, written
atomically (temp file + rename) so concurrent engines can share a cache
directory safely.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional

from .. import __version__
from ..core import ChoraOptions
from .config import cache_enabled, default_cache_directory
from .tasks import AnalysisTask

__all__ = ["ResultCache", "make_cache", "CACHE_SCHEMA_VERSION"]

#: Bump when the cached payload shape changes incompatibly.
CACHE_SCHEMA_VERSION = 1


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """A content hash of the installed ``repro`` package sources.

    Computed once per process; keying cache entries on it means an edit to
    any analysis module invalidates stale results even when the declared
    package version does not change (the common case during development).
    """
    root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256(__version__.encode("utf-8"))
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        try:
            digest.update(path.read_bytes())
        except OSError:
            continue
    return digest.hexdigest()


def cache_key(task: AnalysisTask, options: ChoraOptions) -> str:
    """The SHA-256 cache key of one (task, options) pair."""
    material = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "code": code_fingerprint(),
            "task": task.cache_material(),
            "options": options.to_dict(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def make_cache(
    no_cache: bool = False, directory: Optional[Path | str] = None
) -> Optional["ResultCache"]:
    """The cache implied by CLI-style switches (shared by CLI and examples).

    ``no_cache`` wins over everything; an explicitly requested ``directory``
    wins over the ``REPRO_NO_CACHE`` environment default; otherwise caching
    is on at the default location unless the environment disables it.
    """
    if no_cache:
        return None
    if directory is not None:
        return ResultCache(directory)
    if not cache_enabled():
        return None
    return ResultCache(default_cache_directory())


class ResultCache:
    """A directory of content-addressed analysis payloads."""

    def __init__(self, directory: Path | str):
        self.directory = Path(directory)

    def key(self, task: AnalysisTask, options: ChoraOptions) -> str:
        return cache_key(task, options)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[dict[str, Any]]:
        """The cached payload for ``key``, or ``None`` on a miss."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, payload: dict[str, Any], *, task_name: str = "") -> None:
        """Store ``payload`` under ``key`` (atomic; failures are non-fatal)."""
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "code": __version__,
            "task": task_name,
            "payload": payload,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            descriptor, temp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".cache-", suffix=".tmp"
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle, sort_keys=True)
                os.replace(temp_path, self._path(key))
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except (OSError, TypeError, ValueError):
            # A broken cache must never break the analysis run.
            return

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict[str, Any]:
        """Entry count and total size of the cache directory."""
        entries = 0
        size = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    size += path.stat().st_size
                    entries += 1
                except OSError:
                    pass
        return {
            "directory": str(self.directory),
            "entries": entries,
            "bytes": size,
        }
