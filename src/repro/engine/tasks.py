"""Units of batch work and the registry of analysis kinds.

An :class:`AnalysisTask` is a self-contained, picklable description of one
analysis: the program source plus the semantic knobs of the run.  What
"running" a task means is dispatched on its ``kind`` through a registry, so
new workloads (baselines, ablations, test probes) plug into the batch engine
without touching it:

* ``"analyze"`` — whole-program procedure summaries (+ assertion checking
  when the program has assertions, + a cost bound when a procedure is named);
* ``"complexity"`` — a Table-1 style cost bound for one procedure;
* ``"assertion"`` — Table-2 / Fig.-3 style assertion checking;
* ``"complexity-icra"`` / ``"assertion-unrolling"`` — the baselines.

Every runner returns a JSON-serializable *payload* dict, which is what the
result cache stores and what :class:`~repro.engine.batch.BatchResult`
carries; the conventional keys ``"proved"`` (bool) and ``"bound"`` (str) are
surfaced as result columns when present.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Optional, TYPE_CHECKING

from ..baselines import analyze_program_icra, check_assertions_by_unrolling
from ..core import (
    AnalysisResult,
    ChoraOptions,
    analyze_program,
    analyze_program_parallel,
    check_assertions,
    configured_parallel_sccs,
    cost_bound,
)
from ..lang import ParseError, SemanticsError, parse_program

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..benchlib.suites import SuiteEntry

__all__ = [
    "AnalysisTask",
    "InvalidProgram",
    "KindRunner",
    "LINT_GATE_ENV",
    "execute_task",
    "lint_gate_enabled",
    "register_kind",
    "registered_kinds",
    "set_program_analyzer",
]

#: When set (to anything but ``""``/``"0"``), :func:`execute_task` lints each
#: program before analysing it and rejects programs with error-severity
#: diagnostics.  An environment variable — not an options field — so the
#: setting reaches forked and spawned batch workers without ever entering
#: task cache keys or analysis fingerprints: on lint-clean programs a gated
#: run is bit-identical to an ungated one.
LINT_GATE_ENV = "REPRO_LINT_GATE"


class InvalidProgram(Exception):
    """The front end rejects a task's program (parse error, unsupported
    construct, or — with the lint gate on — error-severity diagnostics).

    A structured, one-line task outcome: batch workers report it as an
    ``error`` result with an ``invalid-program:`` detail instead of a
    traceback, the CLI maps it to exit 2, and the service answers 400.
    """


def lint_gate_enabled() -> bool:
    return os.environ.get(LINT_GATE_ENV, "") not in ("", "0")


@dataclass(frozen=True)
class AnalysisTask:
    """One unit of work for the batch engine (picklable, hashable)."""

    name: str
    source: str
    kind: str = "analyze"
    procedure: Optional[str] = None
    cost_variable: str = "cost"
    substitutions: tuple[tuple[str, int], ...] = ()
    #: kind-specific parameters (e.g. ``("depth", 12)`` for unrolling).
    params: tuple[tuple[str, Any], ...] = ()
    #: the suite this task came from, if any (reporting only).
    suite: Optional[str] = None

    @classmethod
    def from_entry(cls, entry: "SuiteEntry", suite: Optional[str] = None) -> "AnalysisTask":
        """Build a task from a :class:`~repro.benchlib.suites.SuiteEntry`."""
        return cls(
            name=entry.name,
            source=entry.source,
            kind=entry.kind,
            procedure=entry.procedure,
            cost_variable=entry.cost_variable,
            substitutions=entry.substitutions,
            suite=suite,
        )

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def cache_material(self) -> dict[str, Any]:
        """The semantic fields that determine the analysis output.

        The task ``name`` and ``suite`` are labels, not inputs, and are left
        out so renamed or shared benchmarks reuse cached results.
        """
        return {
            "source": self.source,
            "kind": self.kind,
            "procedure": self.procedure,
            "cost_variable": self.cost_variable,
            "substitutions": list(map(list, self.substitutions)),
            "params": [[key, value] for key, value in self.params],
        }


KindRunner = Callable[[AnalysisTask, ChoraOptions], dict]

_KIND_RUNNERS: dict[str, KindRunner] = {}

#: Replacement for :func:`~repro.core.analyze_program` in CHORA-native kinds,
#: or ``None`` for the default.  The warm analysis service installs an
#: :class:`~repro.core.incremental.IncrementalAnalyzer` here so repeated and
#: lightly-edited programs splice cached procedure summaries.
_PROGRAM_ANALYZER: Optional[Callable] = None


def set_program_analyzer(analyzer: Optional[Callable]) -> Optional[Callable]:
    """Install (or, with ``None``, remove) the program-analysis override.

    Returns the previous override so callers can restore it.  The override
    applies to the ``analyze`` / ``assertion`` / ``complexity`` kinds, which
    run CHORA itself; the baseline kinds are never redirected.
    """
    global _PROGRAM_ANALYZER
    previous = _PROGRAM_ANALYZER
    _PROGRAM_ANALYZER = analyzer
    return previous


def _analyze(program, options: ChoraOptions) -> AnalysisResult:
    if _PROGRAM_ANALYZER is not None:
        # The warm service's IncrementalAnalyzer honours the configured SCC
        # worker count itself (splicing runs in-process, misses fork).
        return _PROGRAM_ANALYZER(program, options)
    if configured_parallel_sccs() > 1:
        # Results are bit-identical to the serial pass (verdicts, bounds,
        # payload key order), so the worker count never enters cache keys.
        return analyze_program_parallel(program, options)
    return analyze_program(program, options)


def register_kind(name: str) -> Callable[[KindRunner], KindRunner]:
    """Register the runner for a task kind (decorator).

    Runners must be module-level functions so tasks stay picklable across
    worker processes.
    """

    def decorate(runner: KindRunner) -> KindRunner:
        _KIND_RUNNERS[name] = runner
        return runner

    return decorate


def registered_kinds() -> tuple[str, ...]:
    return tuple(sorted(_KIND_RUNNERS))


def execute_task(task: AnalysisTask, options: ChoraOptions = ChoraOptions()) -> dict:
    """Run one task to completion and return its payload.

    This is the exact function batch workers execute; calling it directly
    gives the serial, in-process behaviour (used by the pytest-benchmark
    harness, where timing must not include process bookkeeping).
    """
    from ..polyhedra.cache import clear_caches

    try:
        runner = _KIND_RUNNERS[task.kind]
    except KeyError:
        known = ", ".join(registered_kinds())
        raise ValueError(f"unknown task kind {task.kind!r} (known: {known})") from None
    # Start from cold memo tables so a task's result is independent of what
    # ran before it in this process — the same guarantee forked batch
    # workers get — and so long batches cannot accumulate unbounded tables.
    # The gate runs first so clear_caches() then wipes any satisfiability
    # answers lint cached: the analysis proper starts cold either way and
    # its verdicts are bit-identical with or without the gate.
    _apply_lint_gate(task)
    clear_caches()
    try:
        return runner(task, options)
    except ParseError as error:
        raise InvalidProgram(f"parse error: {error}") from error
    except SemanticsError as error:
        raise InvalidProgram(f"unsupported construct: {error}") from error


def _apply_lint_gate(task: AnalysisTask) -> None:
    """Reject ``task`` when the lint gate is on and its program has errors.

    The fuzz kind is exempt: its oracle runs the lint cross-check itself and
    must see the program regardless.
    """
    if not lint_gate_enabled() or task.kind == "fuzz":
        return
    from ..formulas.symbols import preserved_fresh_counter
    from ..lint import lint_source

    # Lint translates conditions to formulas only to ask satisfiability
    # questions; restoring the fresh-symbol counter keeps the analysis's
    # own symbol numbering identical to a run without the gate.
    with preserved_fresh_counter():
        errors = [d for d in lint_source(task.source) if d.severity == "error"]
    if errors:
        rendered = "; ".join(d.render() for d in errors)
        raise InvalidProgram(f"lint: {rendered}")


# ---------------------------------------------------------------------- #
# Built-in kinds
# ---------------------------------------------------------------------- #
def _assertion_payload(outcomes) -> dict:
    return {
        "proved": bool(outcomes) and all(outcome.proved for outcome in outcomes),
        "assertions": [
            {
                "procedure": outcome.site.procedure,
                "text": outcome.site.text,
                "proved": outcome.proved,
            }
            for outcome in outcomes
        ],
    }


def _bound_payload(result: AnalysisResult, task: AnalysisTask) -> dict:
    bound = cost_bound(
        result,
        task.procedure,
        task.cost_variable,
        substitutions=dict(task.substitutions) or None,
    )
    return {
        "bound": bound.asymptotic,
        "expression": str(bound.expression) if bound.found else None,
        "found": bound.found,
    }


@register_kind("complexity")
def _run_complexity(task: AnalysisTask, options: ChoraOptions) -> dict:
    result = _analyze(parse_program(task.source), options)
    return _bound_payload(result, task)


@register_kind("complexity-icra")
def _run_complexity_icra(task: AnalysisTask, options: ChoraOptions) -> dict:
    result = analyze_program_icra(parse_program(task.source), options)
    return _bound_payload(result, task)


@register_kind("assertion")
def _run_assertion(task: AnalysisTask, options: ChoraOptions) -> dict:
    result = _analyze(parse_program(task.source), options)
    return _assertion_payload(check_assertions(result, options.abstraction))


@register_kind("assertion-icra")
def _run_assertion_icra(task: AnalysisTask, options: ChoraOptions) -> dict:
    result = analyze_program_icra(parse_program(task.source), options)
    return _assertion_payload(check_assertions(result, options.abstraction))


@register_kind("assertion-unrolling")
def _run_assertion_unrolling(task: AnalysisTask, options: ChoraOptions) -> dict:
    outcomes = check_assertions_by_unrolling(
        parse_program(task.source),
        depth=int(task.param("depth", 12)),
        options=options.abstraction,
    )
    return _assertion_payload(outcomes)


@register_kind("analyze")
def _run_analyze(task: AnalysisTask, options: ChoraOptions) -> dict:
    result = _analyze(parse_program(task.source), options)
    payload: dict[str, Any] = {
        "summaries": {name: str(summary) for name, summary in result.summaries.items()},
    }
    outcomes = check_assertions(result, options.abstraction)
    if outcomes:
        payload.update(_assertion_payload(outcomes))
    if task.procedure:
        payload.update(_bound_payload(result, task))
    return payload
