"""Loop summarization: the ``star`` operator of compositional recurrence analysis.

CHORA analyses loop-free fragments by composing transition formulas and
summarizes loops the same way it summarizes recursion: extract recurrences
from one iteration, solve them, and existentially quantify the iteration
count (Farzan & Kincaid's Compositional Recurrence Analysis, which the paper
uses for its ``Summary``/``PathSummary`` subroutines).  This module implements
that star operator:

1.  abstract the loop body's transition formula onto pre/post variable pairs;
2.  classify variables: *invariant* (``x' = x``), *induction* (``x' - x``
    bounded by a polynomial over invariant variables and constants), and
    *second-stratum* (``x' - x`` bounded by a polynomial over invariant
    variables plus the current values of induction variables);
3.  emit closed forms over a fresh iteration counter ``K`` (linear for
    induction variables, quadratic/cubic for the second stratum);
4.  strengthen with the loop guard evaluated at the last iteration (for
    variables whose closed form is exact), which yields the loop bounds
    (``K <= n - i``) that the cost and depth-bound analyses rely on;
5.  return ``identity  \\/  (exists K >= 1. closed forms)``.

Variables with no extractable recurrence are simply left unconstrained
(havoced) in the ``K >= 1`` branch — a sound over-approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from ..abstraction import AbstractionOptions, Inequation, abstract
from ..formulas import (
    Formula,
    Monomial,
    Polynomial,
    Symbol,
    TransitionFormula,
    atom_eq,
    atom_ge,
    atom_le,
    conjoin,
    exists,
    fresh,
    post,
    pre,
)

__all__ = ["summarize_loop", "LoopRecurrence", "extract_loop_recurrences"]


@dataclass(frozen=True)
class LoopRecurrence:
    """A per-iteration bound on one variable's change.

    ``x' - x <= increment`` when ``is_upper``, ``x' - x >= increment`` when
    not; ``is_exact`` marks bounds that came from an equality constraint.
    The increment is a polynomial over pre-state symbols of *other* variables
    (invariant or induction variables), never over post-state symbols.
    """

    variable: str
    increment: Polynomial
    is_exact: bool
    is_upper: bool


def _delta(variable: str) -> Polynomial:
    return Polynomial.var(post(variable)) - Polynomial.var(pre(variable))


def extract_loop_recurrences(
    inequations: Iterable[Inequation], variables: Iterable[str]
) -> tuple[set[str], list[LoopRecurrence]]:
    """Classify variables and extract per-iteration recurrences.

    Returns ``(invariant_variables, recurrences)``.  Recurrence increments are
    restricted to polynomials over pre-state symbols of variables other than
    the recurrence's own variable (the caller checks which of those symbols it
    can resolve to closed forms).
    """
    constraint_polys = [(i.polynomial, i.is_equality) for i in inequations]
    variables = list(variables)

    invariant: set[str] = set()
    for variable in variables:
        delta = _delta(variable)
        for poly, is_eq in constraint_polys:
            if is_eq and ((poly - delta).is_zero or (poly + delta).is_zero):
                invariant.add(variable)
                break

    pre_symbols = {pre(v) for v in variables}
    recurrences: list[LoopRecurrence] = []
    for variable in variables:
        if variable in invariant:
            continue
        delta = _delta(variable)
        own_pre = pre(variable)
        for poly, is_eq in constraint_polys:
            # Upper bound:  poly <= 0  of the shape  (x' - x) - inc <= 0.
            increment = delta - poly
            if increment.symbols <= (pre_symbols - {own_pre}):
                recurrences.append(LoopRecurrence(variable, increment, is_eq, True))
            # Lower bound:  poly <= 0  of the shape  inc - (x' - x) <= 0.
            lower_increment = poly + delta
            if lower_increment.symbols <= (pre_symbols - {own_pre}):
                recurrences.append(
                    LoopRecurrence(variable, lower_increment, is_eq, False)
                )
    return invariant, recurrences


def summarize_loop(
    body: TransitionFormula,
    options: AbstractionOptions = AbstractionOptions(),
) -> TransitionFormula:
    """The reflexive-transitive closure (star) of a loop body's transition."""
    if body.is_bottom or body.is_identity:
        return TransitionFormula.identity()
    # Read-only variables matter too: the loop guard typically compares a
    # modified counter against an unmodified bound, and that bound must be
    # visible (and recognized as invariant) for the closed forms to carry it.
    variables = sorted(body.footprint | body.referenced_variables())
    keep = [pre(v) for v in variables] + [post(v) for v in variables]
    abstraction = abstract(body.to_formula(variables), keep, options)
    if abstraction.polyhedron.is_empty():
        # The body is infeasible: zero iterations is the only behaviour.
        return TransitionFormula.identity()
    invariant, recurrences = extract_loop_recurrences(abstraction, variables)
    invariant_pre = {pre(v) for v in invariant}

    counter = fresh("K")
    k = Polynomial.var(counter)
    conjuncts: list[Formula] = [atom_ge(k, 1)]

    for variable in sorted(invariant):
        conjuncts.append(
            atom_eq(Polynomial.var(post(variable)), Polynomial.var(pre(variable)))
        )

    # Exact linear closed forms x_j = x_0 + j*inc for induction variables whose
    # increment is exact and over invariant symbols only.  These drive both the
    # second stratum and the last-iteration guard.
    exact_linear: dict[Symbol, tuple[Polynomial, Polynomial]] = {}
    for recurrence in recurrences:
        if recurrence.is_exact and recurrence.is_upper:
            if recurrence.increment.symbols <= invariant_pre:
                exact_linear.setdefault(
                    pre(recurrence.variable),
                    (Polynomial.var(pre(recurrence.variable)), recurrence.increment),
                )

    for recurrence in recurrences:
        total = _accumulate(recurrence.increment, invariant_pre, exact_linear, counter)
        if total is None:
            continue
        delta = _delta(recurrence.variable)
        if recurrence.is_exact and recurrence.is_upper and (
            recurrence.increment.symbols <= invariant_pre
        ):
            conjuncts.append(atom_eq(delta, total))
        elif recurrence.is_upper:
            conjuncts.append(atom_le(delta, total))
        else:
            conjuncts.append(atom_ge(delta, total))

    # Loop-guard strengthening: pre-state-only consequences of the body hold at
    # the start of every iteration, in particular the last one (index K - 1).
    for inequation in abstraction:
        poly = inequation.polynomial
        if inequation.is_equality or not poly.symbols:
            continue
        if not poly.symbols <= {pre(v) for v in variables}:
            continue
        substitution: dict[Symbol, Polynomial] = {}
        resolvable = True
        for symbol in poly.symbols:
            if symbol in exact_linear:
                start, increment = exact_linear[symbol]
                substitution[symbol] = start + (k - 1) * increment
            elif symbol in invariant_pre:
                continue
            else:
                resolvable = False
                break
        if not resolvable:
            continue
        conjuncts.append(atom_le(poly.substitute(substitution), 0))

    iterated = exists([counter], conjoin(conjuncts))
    loop_branch = TransitionFormula.relation(iterated, variables)
    return TransitionFormula.identity().join(loop_branch)


def _accumulate(
    increment: Polynomial,
    invariant_pre: set[Symbol],
    exact_linear: dict[Symbol, tuple[Polynomial, Polynomial]],
    counter: Symbol,
) -> Polynomial | None:
    """``sum_{j=0}^{K-1}`` of a per-iteration increment, as a polynomial in K.

    Symbols of the increment must be invariant (kept as-is) or have an exact
    linear closed form (substituted at iteration ``j`` before summing).
    Returns ``None`` when the increment cannot be resolved or the degree in
    the iteration index exceeds what the closed-form table covers.
    """
    k = Polynomial.var(counter)
    changing = [s for s in increment.symbols if s not in invariant_pre]
    if not changing:
        return increment * k
    if not all(s in exact_linear for s in changing):
        return None
    index = fresh("j")
    substitution = {
        s: exact_linear[s][0] + Polynomial.var(index) * exact_linear[s][1]
        for s in changing
    }
    at_iteration = increment.substitute(substitution)
    return _sum_over_counter(at_iteration, index, k)


def _sum_over_counter(
    polynomial: Polynomial, index: Symbol, count: Polynomial
) -> Polynomial | None:
    """``sum_{j=0}^{K-1} polynomial(j)`` for degrees up to 2 in ``j``."""
    coefficients: dict[int, Polynomial] = {}
    for monomial, coefficient in polynomial.items():
        degree = monomial.power_of(index)
        rest = {s: p for s, p in monomial.powers if s != index}
        base = Polynomial.monomial(Monomial.from_mapping(rest), coefficient)
        coefficients[degree] = coefficients.get(degree, Polynomial.zero()) + base
    result = Polynomial.zero()
    k = count
    for degree, coefficient in coefficients.items():
        if degree == 0:
            result = result + coefficient * k
        elif degree == 1:
            result = result + coefficient * (k * k - k).scale(Fraction(1, 2))
        elif degree == 2:
            result = result + coefficient * (
                (k * k * k).scale(Fraction(1, 3))
                - (k * k).scale(Fraction(1, 2))
                + k.scale(Fraction(1, 6))
            )
        else:
            return None
    return result
