"""Intraprocedural analysis: the Kleene algebra of transition formulas.

``PathSummary`` (state elimination with compose/join/star) and
``Summary(P, phi)`` (call-edge replacement + ``PathSummary``), as described in
§3 of the paper.  The star operator summarizes loops by extracting and
solving recurrences (compositional recurrence analysis).
"""

from .loop_summary import LoopRecurrence, extract_loop_recurrences, summarize_loop
from .intra import (
    CallInterpretation,
    ProcedureContext,
    inline_call,
    path_summary,
    summarize_procedure,
)

__all__ = [
    "LoopRecurrence",
    "extract_loop_recurrences",
    "summarize_loop",
    "CallInterpretation",
    "ProcedureContext",
    "inline_call",
    "path_summary",
    "summarize_procedure",
]
