"""Intraprocedural summarization: ``PathSummary`` and ``Summary(P, phi)``.

§3 of the paper formalizes two subroutines the interprocedural analysis is
built on:

* ``PathSummary(e, x, V, E)`` — a transition formula over-approximating all
  paths of a control-flow graph between two vertices; implemented here by
  state elimination over the Kleene algebra of transition formulas (compose /
  join / star, with the star of :mod:`repro.analysis.loop_summary`);
* ``Summary(P, phi)`` — a transition formula over-approximating procedure
  ``P`` when ``phi`` is used to interpret its recursive calls; implemented by
  replacing every call edge with an inlined copy of the appropriate summary
  (argument binding, renamed formals, return-value plumbing) and calling
  ``PathSummary`` on the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from ..abstraction import AbstractionOptions
from ..formulas import (
    RETURN_VARIABLE,
    Polynomial,
    TransitionFormula,
    atom_eq,
    exists,
    fresh,
    post,
    pre,
)
from ..lang import ast
from ..lang.cfg import CallEdge, ControlFlowGraph, build_cfg
from ..lang.semantics import translate_expression
from .loop_summary import summarize_loop

__all__ = [
    "CallInterpretation",
    "inline_call",
    "path_summary",
    "summarize_procedure",
    "ProcedureContext",
]

#: A function mapping a call edge to the transition formula that replaces it.
CallInterpretation = Callable[[CallEdge], TransitionFormula]


@dataclass
class ProcedureContext:
    """Per-procedure information needed to interpret its calls."""

    procedure: ast.Procedure
    cfg: ControlFlowGraph
    global_names: tuple[str, ...]

    @staticmethod
    def of(procedure: ast.Procedure, global_names: Sequence[str]) -> "ProcedureContext":
        return ProcedureContext(procedure, build_cfg(procedure), tuple(global_names))

    @property
    def name(self) -> str:
        return self.procedure.name

    @property
    def variables(self) -> tuple[str, ...]:
        return self.cfg.variables(self.global_names)

    @property
    def summary_variables(self) -> tuple[str, ...]:
        """The vocabulary of this procedure's summaries: globals, scalar
        parameters, and the return value."""
        names = list(self.global_names)
        for name in self.procedure.scalar_parameters + (RETURN_VARIABLE,):
            if name not in names:
                names.append(name)
        return tuple(names)

    @property
    def local_names(self) -> tuple[str, ...]:
        """Variables to hide from summaries (locals and temporaries)."""
        return tuple(
            name
            for name in self.cfg.locals
            if name not in self.global_names
        )


# ---------------------------------------------------------------------- #
# Call inlining
# ---------------------------------------------------------------------- #
def inline_call(
    edge: CallEdge,
    callee: ast.Procedure,
    callee_summary: TransitionFormula,
) -> TransitionFormula:
    """Replace a call edge with the callee's summary.

    The construction renames the callee's formal parameters and ``return`` to
    fresh names, binds the actual arguments to those names, composes with the
    renamed summary, assigns the return value to the caller's result variable
    (if any), and finally hides the fresh names again.
    """
    renaming: dict[str, str] = {}
    fresh_names: list[str] = []
    for parameter in callee.parameters:
        if parameter.is_array:
            continue
        name = f"__arg_{parameter.name}_{fresh('c').index}"
        renaming[parameter.name] = name
        fresh_names.append(name)
    return_name = f"__ret_{fresh('c').index}"
    renaming[RETURN_VARIABLE] = return_name
    fresh_names.append(return_name)

    renamed_summary = callee_summary.rename_variables(renaming)

    # Bind actual arguments to the renamed formals (array arguments skipped).
    binding = TransitionFormula.identity()
    scalar_arguments: list[tuple[str, ast.Expr]] = []
    for parameter, argument in zip(callee.parameters, edge.arguments):
        if parameter.is_array:
            continue
        scalar_arguments.append((renaming[parameter.name], argument))
    for name, argument in scalar_arguments:
        translated = translate_expression(argument)
        assignment = TransitionFormula.relation(
            exists(
                translated.fresh_symbols,
                (
                    translated.constraints
                    & atom_eq(Polynomial.var(post(name)), translated.value)
                ),
            ),
            [name],
        )
        binding = binding.compose(assignment)

    combined = binding.compose(renamed_summary)
    if edge.result is not None:
        result_assignment = TransitionFormula.relation(
            atom_eq(
                Polynomial.var(post(edge.result)), Polynomial.var(pre(return_name))
            ),
            [edge.result],
        )
        combined = combined.compose(result_assignment)
    return combined.exists_variables(fresh_names)


# ---------------------------------------------------------------------- #
# Path summaries by state elimination
# ---------------------------------------------------------------------- #
def path_summary(
    cfg: ControlFlowGraph,
    call_interpretation: CallInterpretation,
    source: Optional[int] = None,
    target: Optional[int] = None,
    options: AbstractionOptions = AbstractionOptions(),
) -> TransitionFormula:
    """``PathSummary``: summarize all paths from ``source`` to ``target``.

    ``call_interpretation`` supplies the transition formula substituted for
    each call edge (e.g. ``false`` for base-case analysis, a hypothetical
    summary for Alg. 2, or a previously computed procedure summary).
    """
    entry = cfg.entry if source is None else source
    exit_vertex = cfg.exit if target is None else target

    # Edge map with parallel edges joined.
    weights: dict[tuple[int, int], TransitionFormula] = {}

    def add(u: int, v: int, weight: TransitionFormula) -> None:
        if weight.is_bottom:
            return
        key = (u, v)
        if key in weights:
            weights[key] = weights[key].join(weight)
        else:
            weights[key] = weight

    for edge in cfg.weight_edges:
        add(edge.source, edge.target, edge.transition)
    for edge in cfg.call_edges:
        add(edge.source, edge.target, call_interpretation(edge))

    vertices = set(cfg.vertices)
    interior = [v for v in vertices if v not in (entry, exit_vertex)]
    # Eliminate cheap vertices first (fewest fan-in * fan-out).
    def cost(vertex: int) -> int:
        fan_in = sum(1 for (u, v) in weights if v == vertex and u != vertex)
        fan_out = sum(1 for (u, v) in weights if u == vertex and v != vertex)
        return fan_in * fan_out

    while interior:
        interior.sort(key=cost)
        vertex = interior.pop(0)
        self_loop = weights.pop((vertex, vertex), None)
        closure = (
            summarize_loop(self_loop, options) if self_loop is not None else None
        )
        incoming = [
            (u, w) for (u, v), w in list(weights.items()) if v == vertex and u != vertex
        ]
        outgoing = [
            (v, w) for (u, v), w in list(weights.items()) if u == vertex and v != vertex
        ]
        for (u, w_in) in incoming:
            del weights[(u, vertex)]
        for (v, w_out) in outgoing:
            del weights[(vertex, v)]
        for (u, w_in) in incoming:
            through = w_in if closure is None else w_in.compose(closure)
            for (v, w_out) in outgoing:
                add(u, v, through.compose(w_out))

    if entry == exit_vertex:
        self_loop = weights.get((entry, entry))
        return summarize_loop(self_loop, options) if self_loop else TransitionFormula.identity()

    entry_loop = weights.get((entry, entry))
    exit_loop = weights.get((exit_vertex, exit_vertex))
    direct = weights.get((entry, exit_vertex), TransitionFormula.bottom())
    if entry_loop is not None:
        direct = summarize_loop(entry_loop, options).compose(direct)
    if exit_loop is not None:
        direct = direct.compose(summarize_loop(exit_loop, options))
    return direct


# ---------------------------------------------------------------------- #
# Procedure summaries
# ---------------------------------------------------------------------- #
def summarize_procedure(
    context: ProcedureContext,
    recursive_interpretation: Mapping[str, TransitionFormula],
    external_summaries: Mapping[str, TransitionFormula],
    procedures: Mapping[str, ast.Procedure],
    options: AbstractionOptions = AbstractionOptions(),
    hide_locals: bool = True,
) -> TransitionFormula:
    """``Summary(P, phi)``: summarize ``context``'s procedure.

    Calls to procedures in ``recursive_interpretation`` (the procedure's own
    strongly connected component) are replaced by the given formulas — e.g.
    ``TransitionFormula.bottom()`` for base-case analysis (``Summary(P,
    false)``) or the hypothetical summary ``phi_call`` of Alg. 2.  Calls to
    already-analysed procedures are replaced by ``external_summaries``.
    """

    def interpret(edge: CallEdge) -> TransitionFormula:
        if edge.callee in recursive_interpretation:
            summary = recursive_interpretation[edge.callee]
        elif edge.callee in external_summaries:
            summary = external_summaries[edge.callee]
        else:
            # Unknown procedure: havoc the globals and the result.
            havoced = list(context.global_names)
            if edge.result is not None:
                havoced.append(edge.result)
            return TransitionFormula.havoc(havoced)
        if summary.is_bottom:
            return TransitionFormula.bottom()
        callee = procedures[edge.callee]
        return inline_call(edge, callee, summary)

    summary = path_summary(context.cfg, interpret, options=options)
    if hide_locals:
        summary = summary.exists_variables(context.local_names)
    return summary
