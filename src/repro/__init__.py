"""repro — a reproduction of "Templates and Recurrences: Better Together" (PLDI 2020).

The package implements CHORA-style compositional, recurrence-based invariant
generation for programs with loops, branches, and (possibly non-linear or
mutual) recursion, together with the substrates it needs: a small imperative
language and its CFGs, transition formulas, a polyhedral abstract domain,
symbolic abstraction, and an exponential-polynomial recurrence solver.

Public entry points
-------------------
* :func:`repro.lang.parse_program` — parse a mini-language program.
* :func:`repro.core.analyze_program` — compute procedure summaries (CHORA).
* :func:`repro.core.check_assertions` — prove the program's assertions.
* :func:`repro.core.complexity_bound` — symbolic + asymptotic cost bounds.
* :mod:`repro.baselines` — ICRA-style and bounded-unrolling baselines.
* :mod:`repro.benchlib` — every benchmark program used in the paper's
  evaluation (Table 1, Table 2, Figure 3, and the worked examples).
* :mod:`repro.engine` — the parallel batch engine, result cache and
  suite sharding behind ``repro bench``.
* :mod:`repro.service` — the warm-worker analysis service behind
  ``repro serve``.

The layer map and the data flow of one analysis request are documented in
``docs/architecture.md``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
