"""Greedy minimization of fuzz findings.

A raw finding is a generated program of a few dozen statements; the useful
artifact is the five-line core that still triggers the bug.  The shrinker
repeatedly applies three reductions and keeps any candidate for which the
caller's ``reproduces`` predicate still holds:

1. **procedure deletion** — drop an unreferenced non-entry procedure;
2. **statement deletion** — drop one statement (with its whole subtree:
   deleting an ``if`` or ``while`` removes its body too), indexed in
   preorder over all procedure bodies;
3. **constant shrinking** — replace an integer literal ``v`` with a smaller
   candidate (``0``, ``v // 2``, ``v - 1``).

Each pass restarts after a successful reduction (deleting statement 7 may
make procedure ``f2`` unreferenced), so the loop runs to a fixpoint: the
result is 1-minimal with respect to these reductions.  The predicate is a
black box — the CLI wires it to a single-task batch-engine run, so findings
that only reproduce through a crash or a timeout still shrink safely.

All reductions preserve well-formedness: a deleted statement never leaves a
dangling reference *to a procedure* (deleting a declaration may leave uses
of its variable behind, but the predicate rejects candidates that turn the
finding into an uninteresting ``oracle-error``, see the CLI's predicate).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from ..lang import ast, parse_program
from .generator import format_program

__all__ = ["shrink_program"]


# ---------------------------------------------------------------------- #
# Indexed rewriting
# ---------------------------------------------------------------------- #
class _StatementEditor:
    """Rebuilds a program with the ``target``-th preorder statement deleted.

    ``target < 0`` just counts the deletable statements.
    """

    def __init__(self, target: int = -1):
        self.target = target
        self.counter = 0

    def edit_program(self, program: ast.Program) -> ast.Program:
        return replace(
            program,
            procedures=tuple(
                replace(p, body=self.edit_block(p.body)) for p in program.procedures
            ),
        )

    def edit_block(self, block: ast.Block) -> ast.Block:
        statements: list[ast.Stmt] = []
        for statement in block.statements:
            index = self.counter
            self.counter += 1
            if index == self.target:
                continue  # delete: skip the statement and its whole subtree
            statements.append(self.edit_statement(statement))
        return ast.Block(tuple(statements))

    def edit_statement(self, statement: ast.Stmt) -> ast.Stmt:
        if isinstance(statement, ast.Block):
            return self.edit_block(statement)
        if isinstance(statement, ast.If):
            return replace(
                statement,
                then_branch=self.edit_block(statement.then_branch),
                else_branch=(
                    self.edit_block(statement.else_branch)
                    if statement.else_branch is not None
                    else None
                ),
            )
        if isinstance(statement, ast.While):
            return replace(statement, body=self.edit_block(statement.body))
        return statement

    # Counting statements *inside* a deleted subtree is unnecessary: the
    # subtree is gone, and the next fixpoint round re-enumerates anyway.


def _count_statements(program: ast.Program) -> int:
    editor = _StatementEditor(-1)
    editor.edit_program(program)
    return editor.counter


def _delete_statement(program: ast.Program, index: int) -> ast.Program:
    return _StatementEditor(index).edit_program(program)


class _LiteralEditor:
    """Replaces the ``target``-th preorder integer literal with ``value``."""

    def __init__(self, target: int = -1, value: int = 0):
        self.target = target
        self.value = value
        self.counter = 0
        self.original: Optional[int] = None

    def edit_program(self, program: ast.Program) -> ast.Program:
        return replace(
            program,
            procedures=tuple(
                replace(p, body=self.statement(p.body)) for p in program.procedures
            ),
        )

    def statement(self, statement: ast.Stmt) -> ast.Stmt:
        if isinstance(statement, ast.Block):
            return ast.Block(tuple(self.statement(s) for s in statement.statements))
        if isinstance(statement, ast.VarDecl) and statement.init is not None:
            return replace(statement, init=self.expression(statement.init))
        if isinstance(statement, ast.Assign):
            return replace(statement, value=self.expression(statement.value))
        if isinstance(statement, ast.ArrayWrite):
            return replace(
                statement,
                index=self.expression(statement.index),
                value=self.expression(statement.value),
            )
        if isinstance(statement, ast.CallStmt):
            return replace(statement, call=self.expression(statement.call))
        if isinstance(statement, ast.If):
            return replace(
                statement,
                condition=self.condition(statement.condition),
                then_branch=self.statement(statement.then_branch),
                else_branch=(
                    self.statement(statement.else_branch)
                    if statement.else_branch is not None
                    else None
                ),
            )
        if isinstance(statement, ast.While):
            return replace(
                statement,
                condition=self.condition(statement.condition),
                body=self.statement(statement.body),
            )
        if isinstance(statement, ast.Return) and statement.value is not None:
            return replace(statement, value=self.expression(statement.value))
        if isinstance(statement, (ast.Assert, ast.Assume)):
            return replace(statement, condition=self.condition(statement.condition))
        return statement

    def expression(self, expression: ast.Expr) -> ast.Expr:
        if isinstance(expression, ast.IntLit):
            index = self.counter
            self.counter += 1
            if index == self.target:
                self.original = expression.value
                return ast.IntLit(self.value)
            return expression
        if isinstance(expression, ast.UnaryNeg):
            return replace(expression, operand=self.expression(expression.operand))
        if isinstance(expression, ast.BinOp):
            if expression.op == "/":
                # Never rewrite a divisor: shrinking it to 0 or a negative
                # value would make the program malformed, masking the bug.
                return replace(expression, left=self.expression(expression.left))
            return replace(
                expression,
                left=self.expression(expression.left),
                right=self.expression(expression.right),
            )
        if isinstance(expression, ast.Nondet):
            return replace(
                expression,
                lower=(
                    self.expression(expression.lower)
                    if expression.lower is not None
                    else None
                ),
                upper=(
                    self.expression(expression.upper)
                    if expression.upper is not None
                    else None
                ),
            )
        if isinstance(expression, ast.ArrayRead):
            return replace(expression, index=self.expression(expression.index))
        if isinstance(expression, ast.CallExpr):
            return replace(
                expression, args=tuple(self.expression(a) for a in expression.args)
            )
        if isinstance(expression, ast.MinMax):
            return replace(
                expression,
                left=self.expression(expression.left),
                right=self.expression(expression.right),
            )
        if isinstance(expression, ast.Ternary):
            return replace(
                expression,
                condition=self.condition(expression.condition),
                then_value=self.expression(expression.then_value),
                else_value=self.expression(expression.else_value),
            )
        return expression

    def condition(self, condition: ast.Cond) -> ast.Cond:
        if isinstance(condition, ast.Compare):
            return replace(
                condition,
                left=self.expression(condition.left),
                right=self.expression(condition.right),
            )
        if isinstance(condition, ast.BoolOp):
            return replace(
                condition,
                left=self.condition(condition.left),
                right=self.condition(condition.right),
            )
        if isinstance(condition, ast.NotCond):
            return replace(condition, operand=self.condition(condition.operand))
        return condition


def _count_literals(program: ast.Program) -> int:
    editor = _LiteralEditor(-1)
    editor.edit_program(program)
    return editor.counter


def _referenced_procedures(program: ast.Program) -> set[str]:
    names: set[str] = set()

    def expr(expression: ast.Expr) -> None:
        if isinstance(expression, ast.CallExpr):
            names.add(expression.callee)
            for argument in expression.args:
                expr(argument)
        elif isinstance(expression, ast.UnaryNeg):
            expr(expression.operand)
        elif isinstance(expression, ast.BinOp):
            expr(expression.left)
            expr(expression.right)
        elif isinstance(expression, ast.Nondet):
            if expression.lower is not None:
                expr(expression.lower)
            if expression.upper is not None:
                expr(expression.upper)
        elif isinstance(expression, ast.ArrayRead):
            expr(expression.index)
        elif isinstance(expression, ast.MinMax):
            expr(expression.left)
            expr(expression.right)
        elif isinstance(expression, ast.Ternary):
            cond(expression.condition)
            expr(expression.then_value)
            expr(expression.else_value)

    def cond(condition: ast.Cond) -> None:
        if isinstance(condition, ast.Compare):
            expr(condition.left)
            expr(condition.right)
        elif isinstance(condition, ast.BoolOp):
            cond(condition.left)
            cond(condition.right)
        elif isinstance(condition, ast.NotCond):
            cond(condition.operand)

    def stmt(statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Block):
            for child in statement.statements:
                stmt(child)
        elif isinstance(statement, ast.VarDecl) and statement.init is not None:
            expr(statement.init)
        elif isinstance(statement, ast.Assign):
            expr(statement.value)
        elif isinstance(statement, ast.ArrayWrite):
            expr(statement.index)
            expr(statement.value)
        elif isinstance(statement, ast.CallStmt):
            expr(statement.call)
        elif isinstance(statement, ast.If):
            cond(statement.condition)
            stmt(statement.then_branch)
            if statement.else_branch is not None:
                stmt(statement.else_branch)
        elif isinstance(statement, ast.While):
            cond(statement.condition)
            stmt(statement.body)
        elif isinstance(statement, ast.Return) and statement.value is not None:
            expr(statement.value)
        elif isinstance(statement, (ast.Assert, ast.Assume)):
            cond(statement.condition)

    for procedure in program.procedures:
        stmt(procedure.body)
    return names


# ---------------------------------------------------------------------- #
# The greedy loop
# ---------------------------------------------------------------------- #
def shrink_program(
    source: str,
    reproduces: Callable[[str], bool],
    max_rounds: int = 50,
) -> str:
    """Minimize ``source`` while ``reproduces(candidate)`` stays true.

    ``reproduces`` is called on re-rendered source text; the initial source
    is assumed to reproduce (callers check before shrinking).  Returns the
    smallest text found — at worst the input itself.
    """
    program = parse_program(source)
    for _ in range(max_rounds):
        changed = False

        # Pass 1: drop unreferenced non-entry procedures.
        entry = program.procedures[-1].name
        referenced = _referenced_procedures(program) | {entry}
        for procedure in program.procedures:
            if procedure.name in referenced:
                continue
            candidate = replace(
                program,
                procedures=tuple(
                    p for p in program.procedures if p.name != procedure.name
                ),
            )
            if reproduces(format_program(candidate)):
                program = candidate
                changed = True
                break
        if changed:
            continue

        # Pass 2: delete one statement (largest-subtree-first would be
        # faster; front-to-back keeps the pass deterministic and simple).
        for index in range(_count_statements(program)):
            candidate = _delete_statement(program, index)
            if reproduces(format_program(candidate)):
                program = candidate
                changed = True
                break
        if changed:
            continue

        # Pass 3: shrink one integer literal.
        for index in range(_count_literals(program)):
            probe = _LiteralEditor(index, 0)
            probe.edit_program(program)
            original = probe.original if probe.original is not None else 0
            for smaller in _shrink_candidates(original):
                candidate = _LiteralEditor(index, smaller).edit_program(program)
                if reproduces(format_program(candidate)):
                    program = candidate
                    changed = True
                    break
            if changed:
                break
        if not changed:
            break
    return format_program(program)


def _shrink_candidates(value: int) -> list[int]:
    candidates = []
    for candidate in (0, value // 2, value - 1 if value > 0 else value + 1):
        if candidate != value and candidate not in candidates:
            candidates.append(candidate)
    return candidates
