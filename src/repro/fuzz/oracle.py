"""The concrete-execution oracle of the differential fuzzer.

For one generated program the oracle collects every *claim* the analysers
make — CHORA's cost/return/depth bounds for the entry procedure, CHORA's
(and optionally the unrolling and ICRA baselines') ``proved`` verdicts on
assertions — and then replays the program through N seeded runs of the
concrete interpreter (:mod:`repro.lang.interp`), flagging:

* **bound-violation** — an observed cost / return value / recursion depth
  strictly exceeds a claimed upper bound (evaluated at the run's concrete
  arguments; bounds with residual symbolic parameters, or referencing an
  argument outside the strictly-positive regime the closed forms are derived
  in, are skipped, never guessed);
* **assert-unsound** — a run fails an assertion some tool *proved*; matching
  is by assertion text, and a text is only eligible when **every** site with
  that text was proved (the interpreter reports failures by condition text);
* **analyzer-error** — an analyser raised an exception;
* **oracle-error** — the generated program itself is malformed (undefined
  variable, division by zero, arity mismatch): a generator bug, which must
  surface as loudly as an analyser bug;
* **generator-invariant** — the semantic lint (:mod:`repro.lint`) reports an
  error- or warning-severity diagnostic on the generated program.  The
  generator promises well-formed programs (every variable declared, divisors
  constant and positive, recursions with base cases that make progress), so
  a lint finding means the generator broke an invariant *before* any
  interpreter run could trip over it.  Info-severity diagnostics (dead
  stores, never-read globals, ...) are stylistic and deliberately excluded —
  generated programs are allowed to be ugly, not wrong.  The
  condition-triviality codes R203/R204 are likewise excluded: the generator
  makes no non-triviality promise about conditions (``m <= m`` and
  ``7 < min(5, n)`` are fair game), and those codes sharpen with the
  abstraction's precision, which would hold campaign cleanliness hostage to
  precision improvements;
* **disagreement** (info only) — tools return different ``proved`` verdicts
  for the same assertion; sound tools may legitimately differ in precision,
  so this is reported but never fails a campaign.

Runs blocked by a failed ``assume`` or an empty ``nondet(lo, hi)`` range are
**discarded** (counted, not flagged): blocked executions carry no information.
Runs that exhaust the step budget are likewise discarded.

The module also registers the ``"fuzz"`` batch-engine kind, so campaigns get
per-program timeout and crash isolation for free.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import sympy

from ..baselines import analyze_program_icra, check_assertions_by_unrolling
from ..core import ChoraOptions, analyze_program, check_assertions, cost_bound, return_bound
from ..engine.tasks import AnalysisTask, register_kind
from ..lang import ast, parse_program
from ..lang.interp import (
    AssertionFailure,
    AssumeBlocked,
    ExecutionLimitExceeded,
    Interpreter,
    InterpreterError,
)

__all__ = ["Finding", "OracleConfig", "OracleReport", "check_program"]

#: Numerical slack when comparing an observed integer against an evaluated
#: symbolic bound (sympy may produce e.g. ``2.9999999999999996``).
EPSILON = 1e-6


@dataclass(frozen=True)
class OracleConfig:
    """Knobs of one oracle check (all deterministic given ``seed``)."""

    #: number of seeded concrete runs per program.
    runs: int = 10
    #: base seed; run ``i`` uses ``seed * 1000003 + i``.
    seed: int = 0
    #: step budget per concrete run (exceeding it discards the run).
    max_steps: int = 200_000
    #: recursion-depth budget per concrete run.  Kept far below the
    #: interpreter's default: the interpreter itself recurses ~8 Python
    #: frames per program frame, so a generated program legitimately
    #: recursing thousands deep would hit Python's stack limit before the
    #: interpreter's own check.  Deep runs are discarded, not flagged.
    max_depth: int = 64
    #: concrete entry arguments are drawn from ``[0, max_arg]`` — bounds are
    #: stated over positive parameters, so the oracle stays in that regime.
    max_arg: int = 7
    #: also collect claims from the unrolling and ICRA baselines.
    baselines: bool = True
    #: recursion depth for the unrolling baseline (2 keeps the baseline an
    #: order of magnitude cheaper than depth 3 on generated programs while
    #: still exercising the sound beyond-depth over-approximation).
    unroll_depth: int = 2
    #: cross-check generated programs against the semantic lint; error- and
    #: warning-severity diagnostics become ``generator-invariant`` findings.
    lint: bool = True


@dataclass(frozen=True)
class Finding:
    """One oracle observation about one program."""

    kind: str  # bound-violation | assert-unsound | analyzer-error | oracle-error | disagreement
    detail: str
    run_seed: int | None = None

    @property
    def is_violation(self) -> bool:
        """Disagreements are informational; everything else is a bug."""
        return self.kind != "disagreement"

    def to_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail, "run_seed": self.run_seed}


@dataclass
class OracleReport:
    """Everything the oracle learned about one program."""

    findings: list[Finding] = field(default_factory=list)
    runs_completed: int = 0
    runs_discarded: int = 0
    #: human-readable claims that were actually checked, e.g.
    #: ``{"cost": "2*n + 1", "assert(cost >= 0)": "proved"}``.
    claims: dict[str, str] = field(default_factory=dict)

    @property
    def violations(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.is_violation]

    def to_dict(self) -> dict:
        return {
            "findings": [finding.to_dict() for finding in self.findings],
            "runs_completed": self.runs_completed,
            "runs_discarded": self.runs_discarded,
            "claims": self.claims,
        }


# ---------------------------------------------------------------------- #
# Claim collection
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _BoundClaim:
    """An upper bound some tool claims for an observable of the entry."""

    tool: str
    observable: str  # "cost" | "return" | "depth"
    expression: sympy.Expr

    def evaluated_at(self, arguments: dict[str, int]) -> float | None:
        """The bound at concrete arguments, or None if it is uncheckable.

        Uncheckable means residual free symbols; a referenced argument that
        is not strictly positive (closed forms are derived over
        ``sympy.Symbol(..., positive=True)`` — at ``n = 0`` the expression
        simply makes no claim, e.g. ``depth <= n`` for a procedure whose
        base case still costs one frame); or a value that is not a real
        number (``zoo``/``nan`` from a quotient whose denominator vanishes).
        Such bounds are skipped, never guessed; ``+oo`` evaluates fine and
        is trivially satisfied.
        """
        substitution = {
            symbol: arguments[symbol.name]
            for symbol in self.expression.free_symbols
            if symbol.name in arguments
        }
        if any(value < 1 for value in substitution.values()):
            return None
        value = self.expression.subs(substitution)
        if value.free_symbols:
            return None
        try:
            numeric = float(value)
        except (TypeError, ValueError):
            return None
        return None if math.isnan(numeric) else numeric


def _entry_bound_claims(
    program: ast.Program, result, tool: str, entry: str
) -> tuple[list[_BoundClaim], list[Finding]]:
    claims: list[Finding] = []
    bounds: list[_BoundClaim] = []
    try:
        cost = cost_bound(result, entry, "cost")
        if cost.found:
            bounds.append(_BoundClaim(tool, "cost", cost.expression))
        returned = return_bound(result, entry)
        if returned.found:
            bounds.append(_BoundClaim(tool, "return", returned.expression))
        summary = result.summaries.get(entry)
        if summary is not None and summary.is_recursive:
            depth = summary.depth_bound.symbolic_bound
            if depth is not None:
                bounds.append(_BoundClaim(tool, "depth", depth))
    except Exception as exc:  # noqa: BLE001 — any analyser exception is a finding
        claims.append(
            Finding("analyzer-error", f"{tool}: bound extraction raised {exc!r}")
        )
    return bounds, claims


def _proved_assertion_texts(outcomes) -> set[str]:
    """Texts for which *every* site was proved (text-level soundness claim)."""
    proved: dict[str, bool] = {}
    for outcome in outcomes:
        text = outcome.site.text
        proved[text] = proved.get(text, True) and outcome.proved
    return {text for text, all_proved in proved.items() if all_proved}


# ---------------------------------------------------------------------- #
# The oracle
# ---------------------------------------------------------------------- #
def check_program(
    program: ast.Program | str,
    config: OracleConfig = OracleConfig(),
    options: ChoraOptions = ChoraOptions(),
) -> OracleReport:
    """Differentially check one program; see the module docstring for rules."""
    if isinstance(program, str):
        program = parse_program(program)
    report = OracleReport()
    entry = program.procedures[-1].name

    # ---- lint cross-check ---------------------------------------------- #
    if config.lint:
        report.findings.extend(_lint_findings(program))

    # ---- collect claims ------------------------------------------------ #
    bounds: list[_BoundClaim] = []
    proved_by: dict[str, set[str]] = {}
    try:
        result = analyze_program(program, options)
    except Exception as exc:  # noqa: BLE001
        report.findings.append(Finding("analyzer-error", f"chora: analysis raised {exc!r}"))
        return report
    tool_bounds, findings = _entry_bound_claims(program, result, "chora", entry)
    bounds.extend(tool_bounds)
    report.findings.extend(findings)
    try:
        proved_by["chora"] = _proved_assertion_texts(
            check_assertions(result, options.abstraction)
        )
    except Exception as exc:  # noqa: BLE001
        report.findings.append(
            Finding("analyzer-error", f"chora: assertion checking raised {exc!r}")
        )

    if config.baselines:
        try:
            proved_by["unrolling"] = _proved_assertion_texts(
                check_assertions_by_unrolling(program, config.unroll_depth, options.abstraction)
            )
        except Exception as exc:  # noqa: BLE001
            report.findings.append(
                Finding("analyzer-error", f"unrolling: raised {exc!r}")
            )
        try:
            icra_result = analyze_program_icra(program, options)
            icra_bounds, icra_findings = _entry_bound_claims(
                program, icra_result, "icra", entry
            )
            bounds.extend(icra_bounds)
            report.findings.extend(icra_findings)
        except Exception as exc:  # noqa: BLE001
            report.findings.append(Finding("analyzer-error", f"icra: raised {exc!r}"))

    for claim in bounds:
        report.claims[f"{claim.tool}:{claim.observable}"] = str(claim.expression)
    for tool, texts in proved_by.items():
        for text in sorted(texts):
            report.claims[f"{tool}:assert({text})"] = "proved"

    # Precision disagreements between sound tools are informational.
    tools = sorted(proved_by)
    for index, first in enumerate(tools):
        for second in tools[index + 1 :]:
            for text in sorted(proved_by[first] ^ proved_by[second]):
                prover = first if text in proved_by[first] else second
                other = second if prover == first else first
                report.findings.append(
                    Finding(
                        "disagreement",
                        f"assert({text}): {prover} proves it, {other} does not",
                    )
                )

    # ---- concrete runs ------------------------------------------------- #
    proved_texts = {
        text: tool for tool, texts in proved_by.items() for text in texts
    }
    parameters = program.procedure(entry).scalar_parameters
    argument_rng = random.Random(config.seed ^ 0x5EED)
    for run_index in range(config.runs):
        run_seed = config.seed * 1000003 + run_index
        arguments = {
            name: argument_rng.randint(0, config.max_arg) for name in parameters
        }
        interpreter = Interpreter(
            program,
            rng=random.Random(run_seed),
            max_steps=config.max_steps,
            max_depth=config.max_depth,
        )
        try:
            execution = interpreter.run(entry, arguments)
        except (AssumeBlocked, ExecutionLimitExceeded, RecursionError):
            report.runs_discarded += 1
            continue
        except AssertionFailure as failure:
            text = str(failure)
            tool = proved_texts.get(text)
            if tool is not None:
                report.findings.append(
                    Finding(
                        "assert-unsound",
                        f"{tool} proved assert({text}) but it fails at"
                        f" {entry}({_format_args(arguments, parameters)})",
                        run_seed=run_seed,
                    )
                )
            # A failing *unproved* assertion is the expected behaviour of a
            # data-dependent assertion — the run still counts as completed.
            report.runs_completed += 1
            continue
        except (InterpreterError, KeyError, ZeroDivisionError, TypeError) as exc:
            report.findings.append(
                Finding(
                    "oracle-error",
                    f"generated program is malformed: {exc!r}",
                    run_seed=run_seed,
                )
            )
            continue

        report.runs_completed += 1
        observed = {
            "cost": execution.globals.get("cost"),
            "return": execution.return_value,
            "depth": execution.procedure_depths.get(entry),
        }
        for claim in bounds:
            actual = observed.get(claim.observable)
            if actual is None:
                continue
            limit = claim.evaluated_at(arguments)
            if limit is None:
                continue
            if actual > limit + EPSILON:
                report.findings.append(
                    Finding(
                        "bound-violation",
                        f"{claim.tool} claims {claim.observable} <="
                        f" {claim.expression} for {entry}, but"
                        f" {entry}({_format_args(arguments, parameters)}) observed"
                        f" {claim.observable} = {actual} > {limit}",
                        run_seed=run_seed,
                    )
                )
    return report


#: Lint codes the cross-check ignores: the generator promises well-formed
#: programs, not non-trivial conditions (see the module docstring).
_LINT_EXEMPT_CODES = frozenset({"R203", "R204"})


def _lint_findings(program: ast.Program) -> list[Finding]:
    """Error/warning lint diagnostics as ``generator-invariant`` findings.

    The lint translates conditions into formulas to ask satisfiability
    questions; the fresh-symbol counter is restored afterwards so the
    analyses below mint exactly the symbols they would without the check.
    """
    from ..formulas.symbols import preserved_fresh_counter
    from ..lint import lint_program

    with preserved_fresh_counter():
        diagnostics = lint_program(program)
    return [
        Finding("generator-invariant", diagnostic.render())
        for diagnostic in diagnostics
        if diagnostic.severity in ("error", "warning")
        and diagnostic.code not in _LINT_EXEMPT_CODES
    ]


def _format_args(arguments: dict[str, int], parameters: tuple[str, ...]) -> str:
    return ", ".join(f"{name}={arguments[name]}" for name in parameters)


# ---------------------------------------------------------------------- #
# Batch-engine integration
# ---------------------------------------------------------------------- #
@register_kind("fuzz")
def _run_fuzz(task: AnalysisTask, options: ChoraOptions) -> dict:
    """Batch runner: oracle-check ``task.source``.

    Params: ``runs`` (concrete runs), ``seed`` (oracle seed), ``baselines``
    (bool), ``max_steps``.  The payload surfaces ``proved`` as "no violations"
    so batch reports render fuzz campaigns like any other suite.
    """
    config = OracleConfig(
        runs=int(task.param("runs", 10)),
        seed=int(task.param("seed", 0)),
        baselines=bool(task.param("baselines", True)),
        max_steps=int(task.param("max_steps", 200_000)),
        lint=bool(task.param("lint", True)),
    )
    report = check_program(task.source, config, options)
    payload = report.to_dict()
    payload["proved"] = not report.violations
    payload["bound"] = report.claims.get("chora:cost", "n.b.")
    return payload
