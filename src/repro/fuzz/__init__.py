"""Differential fuzzing for the CHORA reproduction (``repro fuzz``).

Csmith-style loop: :mod:`generator` builds seeded well-formed random
programs in the paper's shapes, :mod:`oracle` cross-checks every analyzer
claim (cost/return/depth bounds, assertion verdicts) against seeded
concrete executions, and :mod:`shrink` minimizes any finding to a small
self-contained regression case.
"""

from .generator import GeneratorConfig, format_program, generate_program, program_seed
from .oracle import Finding, OracleConfig, check_program
from .shrink import shrink_program

__all__ = [
    "Finding",
    "GeneratorConfig",
    "OracleConfig",
    "check_program",
    "format_program",
    "generate_program",
    "program_seed",
    "shrink_program",
]
