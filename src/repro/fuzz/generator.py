"""A seeded, size-bounded random program generator over :mod:`repro.lang.ast`.

The generator is the supply side of the differential fuzzing loop
(``repro fuzz``): it builds random programs in the paper's shapes —
straight-line arithmetic, guarded ``while`` loops, self-recursive and
mutually-recursive procedures with base cases, stratified-recurrence nests
(a recursion whose body drives another recursion), and an instrumented
``cost`` counter global — and the oracle (:mod:`repro.fuzz.oracle`) then
checks every claim the analysers make about them against concrete runs.

Programs are **well-formed by construction**, so every finding the oracle
raises is a real bug, never a malformed input:

* every variable is declared before use (parameters, locals in scope,
  globals);
* every call passes exactly the callee's arity, and calls only reach
  *earlier* procedures (a DAG), except the explicitly constructed self- and
  mutual-recursive edges;
* every division is by a positive integer constant (the only form the
  relational semantics supports);
* every recursive procedure has a base case (``n <= b``) guarding descent
  that strictly decreases its first parameter (``n - c`` or ``n / c``),
  so every program terminates on every integer input;
* loop bounds are captured in a dedicated local that the loop body never
  assigns, so ``while`` loops always terminate.

Generation is **deterministic**: :func:`generate_program` is a pure function
of ``(seed, config)``, pinned by a unit test, so any finding is reproducible
from its seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..lang import ast

__all__ = [
    "GeneratorConfig",
    "format_program",
    "generate_program",
    "program_seed",
]

#: Name of the instrumented cost-counter global (the paper's methodology).
COST = "cost"

#: Name of the entry procedure every generated program ends with.
ENTRY = "main"


@dataclass(frozen=True)
class GeneratorConfig:
    """Size and shape knobs for one generated program.

    ``size`` is the headline budget: it scales the number of procedures and
    the statement budget per procedure.  The remaining knobs exist for tests
    and for shrinking experiments; the CLI only exposes ``size``.
    """

    size: int = 3
    max_constant: int = 8
    #: maximum expression nesting depth (0 = atoms only).
    max_expr_depth: int = 2
    #: recursive procedures keep their branching at most this wide so the
    #: concrete oracle can actually execute them (3 ** 8 frames is fine,
    #: 18 ** 8 is not).
    max_recursive_calls: int = 2

    @property
    def max_procedures(self) -> int:
        return max(1, min(4, self.size + 1))

    @property
    def statement_budget(self) -> int:
        return max(3, 2 * self.size)


def program_seed(campaign_seed: int, index: int) -> int:
    """The per-program seed of the ``index``-th program of a campaign.

    A splitmix-style hash rather than ``campaign_seed + index`` so
    neighbouring campaigns do not share program prefixes.
    """
    z = (campaign_seed * 0x9E3779B97F4A7C15 + index + 1) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return (z ^ (z >> 31)) & 0x7FFFFFFF


# ---------------------------------------------------------------------- #
# The builder
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _Signature:
    """What later procedures know about an earlier one."""

    name: str
    parameters: tuple[str, ...]
    recursive: bool
    returns_value: bool


class _Builder:
    def __init__(self, seed: int, config: GeneratorConfig):
        self.rng = random.Random(seed)
        self.config = config
        self.signatures: list[_Signature] = []
        self._fresh = 0

    # ------------------------------------------------------------------ #
    def fresh(self, prefix: str) -> str:
        self._fresh += 1
        return f"{prefix}{self._fresh}"

    def constant(self, low: int = 0) -> int:
        return self.rng.randint(low, self.config.max_constant)

    # ------------------------------------------------------------------ #
    # Expressions (always over names in ``scope``)
    # ------------------------------------------------------------------ #
    def expression(
        self, scope: list[str], depth: int | None = None, calls: bool = True
    ) -> ast.Expr:
        if depth is None:
            depth = self.config.max_expr_depth
        atoms = ["lit", "var", "var"]
        if depth > 0:
            atoms += ["binop", "binop", "div", "nondet", "minmax", "neg"]
            if calls:
                # Calls are only legal where the front end can hoist them
                # into call statements — never inside conditions.
                atoms.append("call")
        kind = self.rng.choice(atoms)
        if kind == "var" and not scope:
            kind = "lit"
        if kind == "lit":
            return ast.IntLit(self.constant())
        if kind == "var":
            return ast.VarRef(self.rng.choice(scope))
        if kind == "neg":
            return ast.UnaryNeg(self.expression(scope, depth - 1))
        if kind == "binop":
            op = self.rng.choice(["+", "+", "-", "*"])
            return ast.BinOp(
                op, self.expression(scope, depth - 1), self.expression(scope, depth - 1)
            )
        if kind == "div":
            # Positive constant divisors only: the single division form the
            # relational semantics supports (and it is exact floor division
            # for every dividend, negative ones included).
            return ast.BinOp(
                "/", self.expression(scope, depth - 1), ast.IntLit(self.rng.randint(2, 4))
            )
        if kind == "nondet":
            if self.rng.random() < 0.5:
                return ast.Nondet()
            # nondet(lo, hi): the range may be empty at runtime (hi a
            # variable that happens to be <= lo) — the interpreter then
            # blocks the run like a failed assume, and the oracle discards.
            lower = ast.IntLit(self.rng.randint(0, 2))
            if scope and self.rng.random() < 0.7:
                upper: ast.Expr = ast.VarRef(self.rng.choice(scope))
            else:
                upper = ast.IntLit(self.constant(low=1))
            return ast.Nondet(lower, upper)
        if kind == "minmax":
            return ast.MinMax(
                self.rng.random() < 0.5,
                self.expression(scope, depth - 1),
                self.expression(scope, depth - 1),
            )
        if kind == "call":
            callees = [s for s in self.signatures if s.returns_value]
            if not callees:
                return ast.IntLit(self.constant())
            return self.call(self.rng.choice(callees), scope, depth - 1)
        raise AssertionError(kind)

    def call(self, callee: _Signature, scope: list[str], depth: int = 0) -> ast.CallExpr:
        """A call with exactly the callee's arity.

        Arguments to *recursive* callees are kept small (a variable or a
        small constant) so the concrete oracle's step budget survives; a
        non-recursive callee takes arbitrary expressions.
        """
        arguments: list[ast.Expr] = []
        for _ in callee.parameters:
            if callee.recursive:
                if scope and self.rng.random() < 0.7:
                    arguments.append(ast.VarRef(self.rng.choice(scope)))
                else:
                    arguments.append(ast.IntLit(self.rng.randint(0, 6)))
            else:
                arguments.append(self.expression(scope, min(depth, 1)))
        return ast.CallExpr(callee.name, tuple(arguments))

    def condition(self, scope: list[str]) -> ast.Cond:
        roll = self.rng.random()
        if roll < 0.1:
            return ast.NondetBool()
        op = self.rng.choice(["<", "<=", ">", ">=", "==", "!="])
        condition: ast.Cond = ast.Compare(
            op,
            self.expression(scope, 1, calls=False),
            self.expression(scope, 1, calls=False),
        )
        if roll < 0.25:
            condition = ast.BoolOp(
                self.rng.choice(["&&", "||"]),
                condition,
                ast.Compare(
                    self.rng.choice(["<", "<=", ">", ">="]),
                    self.expression(scope, 0),
                    self.expression(scope, 0),
                ),
            )
        if self.rng.random() < 0.1:
            condition = ast.NotCond(condition)
        return condition

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def statements(
        self, scope: list[str], budget: int, assignable: list[str]
    ) -> list[ast.Stmt]:
        """A straight-line/branching statement sequence of roughly ``budget``
        statements.  ``scope`` is extended in place with new locals;
        ``assignable`` lists the names stores may target (loop counters and
        captured bounds are excluded by their creators)."""
        out: list[ast.Stmt] = []
        remaining = budget
        while remaining > 0:
            remaining -= 1
            kind = self.rng.choice(
                ["decl", "assign", "cost", "if", "loop", "assert", "assume", "callstmt"]
            )
            if kind == "decl" or (kind == "assign" and not assignable):
                name = self.fresh("t")
                out.append(ast.VarDecl(name, self.expression(scope)))
                scope.append(name)
                assignable.append(name)
            elif kind == "assign":
                target = self.rng.choice(assignable)
                if self.rng.random() < 0.08:
                    out.append(ast.Havoc(target))
                else:
                    out.append(ast.Assign(target, self.expression(scope)))
            elif kind == "cost":
                out.append(_cost_bump(self.rng.randint(1, 3)))
            elif kind == "if" and remaining >= 1:
                then_scope = list(scope)
                then_branch = ast.Block(
                    tuple(self.statements(then_scope, min(remaining, 2), list(assignable)))
                )
                else_branch = None
                if self.rng.random() < 0.4:
                    else_scope = list(scope)
                    else_branch = ast.Block(
                        tuple(
                            self.statements(else_scope, min(remaining, 2), list(assignable))
                        )
                    )
                out.append(ast.If(self.condition(scope), then_branch, else_branch))
                remaining -= 2
            elif kind == "loop" and remaining >= 2:
                out.append(self.loop(scope, min(remaining, 3), assignable))
                remaining -= 3
            elif kind == "assert" and self.rng.random() < 0.5:
                out.append(ast.Assert(self.assertion(scope)))
            elif kind == "assume" and self.rng.random() < 0.25:
                # Sparse on purpose: assumes block concrete runs, and a
                # program that blocks every run teaches the oracle nothing.
                out.append(ast.Assume(self.condition(scope)))
            elif kind == "callstmt" and self.signatures:
                out.append(ast.CallStmt(self.call(self.rng.choice(self.signatures), scope)))
        return out

    def assertion(self, scope: list[str]) -> ast.Cond:
        """Assertions biased toward *plausible* facts.

        A mix of certainly-true facts (sound tools must never refute them),
        and data-dependent claims (sound tools may prove them only when they
        actually hold — the concrete oracle cross-checks every "proved").
        """
        roll = self.rng.random()
        if roll < 0.4:
            return ast.Compare(">=", ast.VarRef(COST), ast.IntLit(0))
        if roll < 0.6 and scope:
            x = ast.VarRef(self.rng.choice(scope))
            c = ast.IntLit(self.constant(low=1))
            return ast.Compare("<=", x, ast.BinOp("+", x, c))
        if roll < 0.8 and scope:
            return ast.Compare(
                self.rng.choice(["<=", ">=", "<", ">"]),
                ast.VarRef(self.rng.choice(scope)),
                ast.IntLit(self.constant()),
            )
        return self.condition(scope)

    def loop(self, scope: list[str], body_budget: int, assignable: list[str]) -> ast.Stmt:
        """A guarded, always-terminating ``while`` loop.

        The bound is captured in a local the body never assigns; the counter
        only the trailing increment touches.  Returns the capture + loop as
        one block."""
        bound = self.fresh("b")
        counter = self.fresh("i")
        capture = ast.VarDecl(bound, self.expression(scope, 1))
        init = ast.VarDecl(counter, ast.IntLit(0))
        inner_scope = scope + [bound, counter]
        # assignable deliberately excludes the counter and the bound.
        body = self.statements(list(inner_scope), body_budget, list(assignable))
        body.append(ast.Assign(counter, ast.BinOp("+", ast.VarRef(counter), ast.IntLit(1))))
        loop = ast.While(
            ast.Compare("<", ast.VarRef(counter), ast.VarRef(bound)),
            ast.Block(tuple(body)),
        )
        return ast.Block((capture, init, loop))

    # ------------------------------------------------------------------ #
    # Procedures
    # ------------------------------------------------------------------ #
    def straight_procedure(self, name: str) -> ast.Procedure:
        parameters = self.parameters()
        scope = [COST] + list(parameters)
        body: list[ast.Stmt] = [_cost_bump(1)]
        body += self.statements(scope, self.config.statement_budget, list(parameters))
        body.append(ast.Return(self.expression(scope, 1)))
        return ast.Procedure(
            name, tuple(ast.Parameter(p) for p in parameters), ast.Block(tuple(body))
        )

    def loop_procedure(self, name: str) -> ast.Procedure:
        parameters = self.parameters()
        scope = [COST] + list(parameters)
        body: list[ast.Stmt] = [_cost_bump(1)]
        for _ in range(self.rng.randint(1, 2)):
            body.append(self.loop(scope, 3, list(parameters)))
        body.append(ast.Return(self.expression(scope, 1)))
        return ast.Procedure(
            name, tuple(ast.Parameter(p) for p in parameters), ast.Block(tuple(body))
        )

    def recursive_procedure(self, name: str, mutual_with: str | None = None) -> ast.Procedure:
        """A self-recursive (or half of a mutually-recursive) procedure:
        base case up front, strict descent on the first parameter."""
        parameters = self.parameters()
        n = parameters[0]
        scope = [COST] + list(parameters)
        base_limit = self.rng.randint(0, 1)
        base_scope = list(scope)
        base_body = self.statements(base_scope, 2, list(parameters))
        base_body.append(ast.Return(self.expression(base_scope, 1)))
        base = ast.If(
            ast.Compare("<=", ast.VarRef(n), ast.IntLit(base_limit)),
            ast.Block(tuple(base_body)),
        )
        body: list[ast.Stmt] = [_cost_bump(1), base]
        body += self.statements(scope, self.config.statement_budget // 2, list(parameters))
        callee = mutual_with or name
        divide = self.rng.random() < 0.4
        calls = self.rng.randint(1, self.config.max_recursive_calls)
        if divide and calls > 2:
            calls = 2
        for index in range(calls):
            if divide:
                descent: ast.Expr = ast.BinOp("/", ast.VarRef(n), ast.IntLit(self.rng.randint(2, 3)))
            else:
                descent = ast.BinOp("-", ast.VarRef(n), ast.IntLit(self.rng.randint(1, 2)))
            arguments: list[ast.Expr] = [descent]
            for _ in parameters[1:]:
                arguments.append(self.expression(scope, 1))
            call = ast.CallExpr(callee, tuple(arguments))
            if self.rng.random() < 0.5:
                local = self.fresh("r")
                body.append(ast.VarDecl(local, call))
                scope.append(local)
            elif index == 0 and self.rng.random() < 0.3:
                # Tree recursion guarded by non-determinism (the paper's
                # ``differ`` shape): still strictly descending.
                body.append(
                    ast.If(ast.NondetBool(), ast.Block((ast.CallStmt(call),)))
                )
            else:
                body.append(ast.CallStmt(call))
        body += self.statements(scope, 2, list(parameters))
        body.append(ast.Return(self.expression(scope, 1)))
        return ast.Procedure(
            name, tuple(ast.Parameter(p) for p in parameters), ast.Block(tuple(body))
        )

    def parameters(self) -> tuple[str, ...]:
        return ("n",) if self.rng.random() < 0.6 else ("n", "m")

    # ------------------------------------------------------------------ #
    def build(self) -> ast.Program:
        globals_: list[ast.GlobalDecl] = [ast.GlobalDecl(COST, 0)]
        if self.rng.random() < 0.3:
            globals_.append(ast.GlobalDecl("g0", self.rng.randint(0, 2)))
        procedures: list[ast.Procedure] = []
        helper_count = self.rng.randint(0, self.config.max_procedures - 1)
        index = 0
        while index < helper_count:
            name = f"f{index}"
            shape = self.rng.choice(["straight", "loop", "selfrec", "mutual"])
            if shape == "mutual" and index + 1 < helper_count:
                other = f"f{index + 1}"
                first = self.recursive_procedure(name, mutual_with=other)
                # Register the pair before building the second half so the
                # oracle and later procedures see both as recursive.
                self.signatures.append(
                    _Signature(name, first.scalar_parameters, True, True)
                )
                second = self.recursive_procedure(other, mutual_with=name)
                # The mutual edge must share the pair's arity: regenerate the
                # second half until the parameter draw matches.
                while len(second.parameters) != len(first.parameters):
                    second = self.recursive_procedure(other, mutual_with=name)
                procedures += [first, second]
                self.signatures.append(
                    _Signature(other, second.scalar_parameters, True, True)
                )
                index += 2
                continue
            if shape == "selfrec" or shape == "mutual":
                procedure = self.recursive_procedure(name)
                recursive = True
            elif shape == "loop":
                procedure = self.loop_procedure(name)
                recursive = False
            else:
                procedure = self.straight_procedure(name)
                recursive = False
            procedures.append(procedure)
            self.signatures.append(
                _Signature(name, procedure.scalar_parameters, recursive, True)
            )
            index += 1
        # The entry: recursive more often than not — recursion is what the
        # paper (and the oracle's depth/cost checks) are about.  A recursive
        # entry whose body calls an earlier recursive helper is exactly the
        # stratified-recurrence nest shape.
        entry_shape = self.rng.choice(["selfrec", "selfrec", "selfrec", "loop", "straight"])
        if entry_shape == "selfrec":
            entry = self.recursive_procedure(ENTRY)
        elif entry_shape == "loop":
            entry = self.loop_procedure(ENTRY)
        else:
            entry = self.straight_procedure(ENTRY)
        procedures.append(entry)
        return ast.Program(tuple(globals_), tuple(procedures))


def _cost_bump(amount: int) -> ast.Stmt:
    return ast.Assign(COST, ast.BinOp("+", ast.VarRef(COST), ast.IntLit(amount)))


def generate_program(seed: int, config: GeneratorConfig = GeneratorConfig()) -> ast.Program:
    """Generate one well-formed program — a pure function of its inputs."""
    return _Builder(seed, config).build()


# ---------------------------------------------------------------------- #
# Pretty printer
# ---------------------------------------------------------------------- #
def format_program(program: ast.Program) -> str:
    """Render a program as indented, re-parseable source text.

    ``str(program)`` already round-trips through the parser but prints each
    procedure on one line; fuzz findings are written for humans to read.
    """
    lines: list[str] = [str(g) for g in program.globals]
    for procedure in program.procedures:
        if lines:
            lines.append("")
        kind = "int" if procedure.returns_value else "void"
        params = ", ".join(str(p) for p in procedure.parameters)
        lines.append(f"{kind} {procedure.name}({params}) {{")
        lines += _format_block(procedure.body, 1)
        lines.append("}")
    return "\n".join(lines) + "\n"


def _format_block(block: ast.Block, indent: int) -> list[str]:
    lines: list[str] = []
    pad = "    " * indent
    for statement in block.statements:
        if isinstance(statement, ast.Block):
            lines += _format_block(statement, indent)
        elif isinstance(statement, ast.If):
            lines.append(f"{pad}if ({statement.condition}) {{")
            lines += _format_block(statement.then_branch, indent + 1)
            if statement.else_branch is not None:
                lines.append(f"{pad}}} else {{")
                lines += _format_block(statement.else_branch, indent + 1)
            lines.append(f"{pad}}}")
        elif isinstance(statement, ast.While):
            lines.append(f"{pad}while ({statement.condition}) {{")
            lines += _format_block(statement.body, indent + 1)
            lines.append(f"{pad}}}")
        else:
            lines.append(f"{pad}{statement}")
    return lines
