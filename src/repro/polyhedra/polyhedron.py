"""Convex polyhedra in constraint representation.

A :class:`Polyhedron` is a finite conjunction of linear constraints over
symbols.  It provides the abstract-domain operations the paper relies on
(§3, "Symbolic abstraction"): meet, projection (via Fourier–Motzkin), the
join (closed convex hull of the union, see :mod:`repro.polyhedra.hull`),
entailment, and upper-bound queries for linear expressions.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from ..formulas.formula import Formula, conjoin
from ..formulas.polynomial import Polynomial
from ..formulas.symbols import Symbol
from .constraint import ConstraintKind, LinearConstraint
from . import fourier_motzkin, lp

__all__ = ["Polyhedron"]


class Polyhedron:
    """A (possibly unbounded) convex polyhedron in constraint form."""

    __slots__ = ("_constraints",)

    def __init__(self, constraints: Iterable[LinearConstraint] = ()):
        self._constraints: tuple[LinearConstraint, ...] = tuple(
            c for c in constraints if not c.is_trivial
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def universe() -> "Polyhedron":
        """The unconstrained polyhedron (top)."""
        return Polyhedron(())

    @staticmethod
    def empty() -> "Polyhedron":
        """A canonical empty polyhedron (bottom)."""
        return Polyhedron(
            (LinearConstraint.make({}, Fraction(1), ConstraintKind.LE),)
        )

    @staticmethod
    def of_polynomials(
        le_zero: Sequence[Polynomial] = (), eq_zero: Sequence[Polynomial] = ()
    ) -> "Polyhedron":
        """Build from linear polynomials ``p <= 0`` and ``q == 0``."""
        constraints = [LinearConstraint.le(p) for p in le_zero]
        constraints += [LinearConstraint.eq(q) for q in eq_zero]
        return Polyhedron(constraints)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def constraints(self) -> tuple[LinearConstraint, ...]:
        return self._constraints

    @property
    def symbols(self) -> frozenset[Symbol]:
        out: set[Symbol] = set()
        for constraint in self._constraints:
            out |= constraint.symbols
        return frozenset(out)

    @property
    def is_universe(self) -> bool:
        return not self._constraints

    def is_empty(self) -> bool:
        """Whether the polyhedron has no rational points (LP check)."""
        if any(c.is_contradiction for c in self._constraints):
            return True
        if not self._constraints:
            return False
        return not lp.is_satisfiable(self._constraints)

    # ------------------------------------------------------------------ #
    # Domain operations
    # ------------------------------------------------------------------ #
    def meet(self, other: "Polyhedron") -> "Polyhedron":
        """Intersection."""
        return Polyhedron(self._constraints + other._constraints)

    def add_constraints(
        self, constraints: Iterable[LinearConstraint]
    ) -> "Polyhedron":
        return Polyhedron(self._constraints + tuple(constraints))

    def eliminate(self, symbols: Iterable[Symbol]) -> "Polyhedron":
        """Project away the given symbols (existential quantification)."""
        symbols = list(symbols)
        if not symbols:
            return self
        return Polyhedron(fourier_motzkin.eliminate(self._constraints, symbols))

    def project_onto(self, symbols: Iterable[Symbol]) -> "Polyhedron":
        """Project onto the given symbols (eliminate all others)."""
        keep = frozenset(symbols)
        drop = [s for s in self.symbols if s not in keep]
        return self.eliminate(drop)

    def join(self, other: "Polyhedron") -> "Polyhedron":
        """Closed convex hull of the union (the polyhedral join ``⊔``)."""
        from .hull import convex_hull_pair  # local import to avoid a cycle

        return convex_hull_pair(self, other)

    def widen(self, other: "Polyhedron") -> "Polyhedron":
        """Standard polyhedral widening: keep only constraints of ``self``
        that ``other`` still satisfies.

        Used by the ICRA-style baseline's Kleene-iteration fallback, not by
        the CHORA analysis itself.
        """
        if self.is_empty():
            return other
        kept = [c for c in self._constraints if other.entails(c)]
        return Polyhedron(kept)

    def entails(self, constraint: LinearConstraint) -> bool:
        """Whether every point of the polyhedron satisfies ``constraint``."""
        return lp.entails(self._constraints, constraint)

    def entails_all(self, constraints: Iterable[LinearConstraint]) -> bool:
        return all(self.entails(c) for c in constraints)

    def contains(self, other: "Polyhedron") -> bool:
        """Whether ``other`` is a subset of ``self``."""
        return all(lp.entails(other._constraints, c) for c in self._constraints)

    def minimize(self) -> "Polyhedron":
        """Remove redundant constraints."""
        return Polyhedron(fourier_motzkin.minimize_constraints(self._constraints))

    def rename(self, mapping: Mapping[Symbol, Symbol]) -> "Polyhedron":
        return Polyhedron(c.rename(mapping) for c in self._constraints)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def upper_bound(self, objective: Mapping[Symbol, Fraction | int]) -> float | None:
        """Supremum of a linear expression over the polyhedron.

        Returns ``None`` when the expression is unbounded above (or the LP
        solver fails), ``float('-inf')`` when the polyhedron is empty.
        """
        if self.is_empty():
            return float("-inf")
        result = lp.maximize(objective, self._constraints)
        if result.is_optimal and result.value is not None:
            return result.value
        return None

    def sample_point(self) -> dict[Symbol, float] | None:
        """An arbitrary point of the polyhedron, or None if empty."""
        result = lp.maximize({}, self._constraints)
        if result.is_optimal:
            return result.point or {}
        return None

    def to_formula(self) -> Formula:
        """The conjunction of the constraints as a formula."""
        return conjoin([c.to_atom() for c in self._constraints])

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polyhedron):
            return NotImplemented
        return self.contains(other) and other.contains(self)

    def __hash__(self) -> int:  # pragma: no cover - polyhedra are not dict keys
        return hash(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __str__(self) -> str:
        if not self._constraints:
            return "{ true }"
        return "{ " + " ; ".join(str(c) for c in self._constraints) + " }"

    def __repr__(self) -> str:
        return f"Polyhedron({self!s})"
