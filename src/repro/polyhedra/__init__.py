"""Polyhedral abstract domain: linear constraints, LP queries, projection, hulls.

This package implements the machinery behind the paper's ``Abstract`` /
convex-hull procedure (Alg. 1): linear constraints with exact rational
coefficients, satisfiability/entailment/optimization via LP, Fourier–Motzkin
projection, and the polyhedral join (closed convex hull of unions).

The hot queries — projection, LP satisfiability/entailment, constraint-set
minimization — are memoized in process-local tables keyed on canonicalised
constraint systems (:mod:`repro.polyhedra.cache`); ``clear_caches`` resets
them and ``cache_stats`` reports their hit rates.
"""

from .cache import cache_stats, clear_caches
from .constraint import ConstraintKind, LinearConstraint, constraint_from_atom
from .fourier_motzkin import eliminate, minimize_constraints
from .hull import convex_hull, convex_hull_pair, weak_join
from .lp import LpResult, LpStatus, entails, is_satisfiable, maximize
from .polyhedron import Polyhedron

__all__ = [
    "ConstraintKind",
    "LinearConstraint",
    "constraint_from_atom",
    "cache_stats",
    "clear_caches",
    "eliminate",
    "minimize_constraints",
    "convex_hull",
    "convex_hull_pair",
    "weak_join",
    "LpResult",
    "LpStatus",
    "entails",
    "is_satisfiable",
    "maximize",
    "Polyhedron",
]
