"""Linear-programming queries over sets of linear constraints.

The paper's implementation delegates satisfiability and entailment checks to
an SMT solver; this reproduction uses LP (``scipy.optimize.linprog`` with the
HiGHS backend) instead.  Three queries are provided:

* :func:`is_satisfiable` — is the constraint system non-empty (over Q)?
* :func:`maximize` — the supremum of a linear objective over the system;
* :func:`entails` — does the system imply a given constraint?

Constraints are normalized (scaled so the largest absolute coefficient is 1)
before being handed to the floating-point solver, and all comparisons use a
small absolute tolerance.  Entailment errs on the side of answering "no"
(which only ever loses precision, never soundness, for the over-approximating
clients in this code base).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import linprog

from ..formulas.symbols import Symbol
from . import cache
from .constraint import ConstraintKind, LinearConstraint

__all__ = ["LpResult", "LpStatus", "maximize", "is_satisfiable", "entails", "TOLERANCE"]

#: Absolute tolerance used when interpreting floating-point LP results.
TOLERANCE = 1e-7

#: Systems with at most this many constraints skip the floating-point solver
#: entirely: the fraction-free integer simplex decides them outright in well
#: under the scipy wrapper's per-call overhead, and its answers are exact, so
#: no confirmation pass is needed.  Larger systems keep the float-first
#: screen, where HiGHS's asymptotics win.
EXACT_FIRST_LIMIT = 12

#: Memo tables for the two soundness-critical (and frequently repeated)
#: queries.  Both are pure functions of the canonicalised constraint system,
#: so the tables survive across polyhedra, hull folds and minimization passes.
_SAT_CACHE = cache.register_cache("lp.is_satisfiable", persistent=True)
_ENTAILS_CACHE = cache.register_cache("lp.entails", persistent=True)


@dataclass(frozen=True)
class LpStatus:
    """Status constants for :class:`LpResult`."""

    OPTIMAL = "optimal"
    UNBOUNDED = "unbounded"
    INFEASIBLE = "infeasible"
    ERROR = "error"


@dataclass(frozen=True)
class LpResult:
    """Result of an LP query."""

    status: str
    value: float | None = None
    point: dict[Symbol, float] | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status == LpStatus.OPTIMAL

    @property
    def is_unbounded(self) -> bool:
        return self.status == LpStatus.UNBOUNDED

    @property
    def is_infeasible(self) -> bool:
        return self.status == LpStatus.INFEASIBLE


def _build_matrices(
    constraints: Sequence[LinearConstraint], symbols: Sequence[Symbol]
):
    """Build (A_ub, b_ub, A_eq, b_eq) float matrices for the constraints."""
    index = {s: i for i, s in enumerate(symbols)}
    a_ub: list[list[float]] = []
    b_ub: list[float] = []
    a_eq: list[list[float]] = []
    b_eq: list[float] = []
    for constraint in constraints:
        row = [0.0] * len(symbols)
        scale = max(
            (abs(c) for _, c in constraint.coeffs), default=Fraction(1)
        ) or Fraction(1)
        for s, c in constraint.coeffs:
            row[index[s]] = float(c / scale)
        rhs = float(-constraint.constant / scale)
        if constraint.kind is ConstraintKind.LE:
            a_ub.append(row)
            b_ub.append(rhs)
        else:
            a_eq.append(row)
            b_eq.append(rhs)
    return a_ub, b_ub, a_eq, b_eq


def maximize(
    objective: Mapping[Symbol, Fraction | int | float],
    constraints: Sequence[LinearConstraint],
) -> LpResult:
    """Maximize ``sum objective[s]*s`` subject to ``constraints``."""
    symbols = sorted(
        {s for c in constraints for s in c.symbols} | set(objective.keys()),
        key=str,
    )
    if not symbols:
        # No variables at all: the objective is identically zero.
        for constraint in constraints:
            if constraint.is_contradiction:
                return LpResult(LpStatus.INFEASIBLE)
        return LpResult(LpStatus.OPTIMAL, 0.0, {})
    a_ub, b_ub, a_eq, b_eq = _build_matrices(constraints, symbols)
    c = [0.0] * len(symbols)
    for i, s in enumerate(symbols):
        c[i] = -float(objective.get(s, 0))  # linprog minimizes
    try:
        result = linprog(
            c,
            A_ub=np.array(a_ub) if a_ub else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=np.array(a_eq) if a_eq else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=[(None, None)] * len(symbols),
            method="highs",
        )
    except (ValueError, OverflowError):
        return LpResult(LpStatus.ERROR)
    if result.status == 0:
        point = {s: float(result.x[i]) for i, s in enumerate(symbols)}
        return LpResult(LpStatus.OPTIMAL, -float(result.fun), point)
    if result.status == 2:
        return LpResult(LpStatus.INFEASIBLE)
    if result.status == 3:
        return LpResult(LpStatus.UNBOUNDED)
    return LpResult(LpStatus.ERROR)


def is_satisfiable(constraints: Sequence[LinearConstraint]) -> bool:
    """Whether the constraints admit a rational solution.

    A trivial syntactic contradiction check runs first; otherwise a zero
    objective LP decides feasibility.  An "infeasible" verdict from the
    floating-point solver is confirmed with the exact rational simplex
    (claiming emptiness of a non-empty set would be unsound for clients that
    prune DNF cubes); LP solver errors are treated as "satisfiable".
    """
    for constraint in constraints:
        if constraint.is_contradiction:
            return False
    nontrivial = [c for c in constraints if c.coeffs]
    if not nontrivial:
        return True
    if interval_contradiction(nontrivial):
        return False
    key = cache.canonical_key(nontrivial)
    return _SAT_CACHE.lookup(key, lambda: _is_satisfiable_uncached(nontrivial))


def _is_satisfiable_uncached(nontrivial: Sequence[LinearConstraint]) -> bool:
    from .simplex import exact_is_satisfiable  # local import avoids a cycle

    if len(nontrivial) <= EXACT_FIRST_LIMIT:
        return exact_is_satisfiable(nontrivial)
    result = maximize({}, nontrivial)
    if result.status == LpStatus.INFEASIBLE:
        return exact_is_satisfiable(nontrivial)
    return True


def interval_contradiction(constraints: Sequence[LinearConstraint]) -> bool:
    """Cheap syntactic emptiness test from single-symbol constraints.

    Collects the tightest lower/upper bound each single-symbol constraint
    puts on its symbol (equalities contribute both); a crossed pair of
    bounds proves the system empty with no LP call.  ``False`` means
    "unknown", never "non-empty".
    """
    lower: dict[Symbol, Fraction] = {}
    upper: dict[Symbol, Fraction] = {}
    for constraint in constraints:
        if len(constraint.coeffs) != 1:
            continue
        symbol, coeff = constraint.coeffs[0]
        bound = -constraint.constant / coeff
        if constraint.kind is ConstraintKind.EQ:
            is_upper = is_lower = True
        else:
            is_upper = coeff > 0
            is_lower = not is_upper
        if is_upper and (symbol not in upper or bound < upper[symbol]):
            upper[symbol] = bound
        if is_lower and (symbol not in lower or bound > lower[symbol]):
            lower[symbol] = bound
    for symbol, low in lower.items():
        high = upper.get(symbol)
        if high is not None and low > high:
            return True
    return False


def entails(
    constraints: Sequence[LinearConstraint], candidate: LinearConstraint
) -> bool:
    """Whether ``constraints`` implies ``candidate`` over the rationals.

    For an LE candidate ``t + d <= 0`` this checks ``sup t <= -d``; for an EQ
    candidate both directions are checked.  An infeasible constraint system
    entails everything.
    """
    if candidate.is_trivial:
        return True
    key = cache.entailment_key(constraints, candidate)
    return _ENTAILS_CACHE.lookup(
        key, lambda: _entails_uncached(constraints, candidate)
    )


def _entails_uncached(
    constraints: Sequence[LinearConstraint], candidate: LinearConstraint
) -> bool:
    if not is_satisfiable(list(constraints)):
        return True
    if candidate.kind is ConstraintKind.EQ:
        le = LinearConstraint.make(candidate.coeff_map, candidate.constant)
        ge = LinearConstraint.make(
            {s: -c for s, c in candidate.coeffs}, -candidate.constant
        )
        return entails(constraints, le) and entails(constraints, ge)
    from .simplex import exact_entails  # local import avoids a cycle

    if len(constraints) <= EXACT_FIRST_LIMIT:
        return exact_entails(list(constraints), candidate)
    objective = candidate.coeff_map
    scale = max((abs(c) for c in objective.values()), default=Fraction(1)) or Fraction(1)
    scaled_objective = {s: c / scale for s, c in objective.items()}
    bound = float(-candidate.constant / scale)
    result = maximize(scaled_objective, constraints)
    if result.is_optimal and result.value is not None:
        tolerance = TOLERANCE * max(1.0, abs(bound))
        if result.value > bound + tolerance:
            # Clearly not entailed according to the float LP.  Answering "no"
            # is always sound for our clients, so accept the fast verdict.
            return False
    # The float LP suggests the candidate is entailed (or is inconclusive);
    # "yes" is the soundness-critical direction, so confirm exactly.
    return exact_entails(list(constraints), candidate)
