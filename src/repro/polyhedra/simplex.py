"""Exact rational linear programming (fraction-free two-phase simplex).

The floating-point LP backend (:mod:`repro.polyhedra.lp`) is fast but its
answers near the decision boundary cannot be trusted for *soundness-critical*
queries: claiming that a constraint system entails a candidate inequation when
it does not would let an unsound invariant into a procedure summary.  This
module provides an exact simplex that the LP layer consults whenever the
floating-point answer is in the unsound direction or too close to call.

The solver maximizes a linear objective subject to ``A x + b <= 0`` /
``A x + b == 0`` constraints with *free* variables.  Free variables are split
into differences of non-negative variables, inequalities receive slack
variables, and a standard two-phase simplex with Bland's anti-cycling rule is
run on the resulting standard-form problem.

Arithmetic is **fraction-free**: every constraint is scaled to integers by
the common denominator on entry, and the tableau stores one integer row plus
a single positive integer denominator per row (the rational entry is
``rows[i][j] / den[i]``).  A pivot is then pure integer multiply-and-subtract
in the style of Bareiss — the systematic factor is divided out once per row
via a single gcd pass — instead of a `fractions.Fraction` normalisation (two
gcds and an object allocation) per tableau cell.  Optimal values, feasibility
and boundedness are properties of the LP itself, not of the tableau
representation, so the results are bit-identical to the previous
``Fraction``-based tableau; the Hypothesis differential suite in
``tests/unit/test_simplex_integer.py`` pins the two implementations against
each other on random LPs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from ..formulas.symbols import Symbol
from .constraint import ConstraintKind, LinearConstraint

__all__ = ["ExactLpResult", "exact_maximize", "exact_is_satisfiable", "exact_entails"]


@dataclass(frozen=True)
class ExactLpResult:
    """Result of an exact LP: status is 'optimal', 'unbounded' or 'infeasible'."""

    status: str
    value: Fraction | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    @property
    def is_unbounded(self) -> bool:
        return self.status == "unbounded"

    @property
    def is_infeasible(self) -> bool:
        return self.status == "infeasible"


class _Tableau:
    """Fraction-free integer simplex tableau with per-row denominators.

    Row ``i`` holds integers ``rows[i]`` and ``rhs[i]`` plus a positive
    integer ``den[i]``; the rational tableau entry is ``rows[i][j] / den[i]``
    and the basic value is ``rhs[i] / den[i]``.  Rows are constraints
    ``sum a_ij x_j = b_i`` with ``b_i >= 0``; ``basis[i]`` is the column
    basic in row ``i``.  All comparisons the simplex needs (signs, ratio
    tests) are answered with integer cross-multiplication, so no rational
    normalisation ever happens inside the pivot loop.
    """

    __slots__ = ("rows", "rhs", "den", "basis", "ncols")

    def __init__(self, rows: list[list[int]], rhs: list[int], basis: list[int]):
        self.rows = rows
        self.rhs = rhs
        self.den = [1] * len(rows)
        self.basis = basis
        self.ncols = len(rows[0]) if rows else 0

    def _reduce_row(self, r: int) -> None:
        """Divide row ``r`` by the gcd of its entries and denominator.

        This is the fraction-free analogue of `Fraction` normalisation, paid
        once per row per pivot instead of once per cell per operation; it
        keeps the integers near their minimal size so later multiplications
        stay cheap.
        """
        g = math.gcd(self.den[r], self.rhs[r])
        if g == 1:
            return
        for a in self.rows[r]:
            if a:
                g = math.gcd(g, a)
                if g == 1:
                    return
        self.rows[r] = [a // g for a in self.rows[r]]
        self.rhs[r] //= g
        self.den[r] //= g

    def pivot(self, row: int, col: int) -> None:
        """Make ``col`` basic in ``row``.

        The tableau is mostly zeros (slack and artificial columns), so rows
        with a zero entry in the pivot column are skipped entirely — their
        rational values are unchanged and, with per-row denominators, so is
        their integer representation.
        """
        pivot_row = self.rows[row]
        p = pivot_row[col]
        if p < 0:
            # Only reachable from the drive-artificials-out path, where the
            # row's basic value is exactly zero, so flipping the equality
            # row's sign keeps the right-hand side non-negative.
            pivot_row = self.rows[row] = [-a for a in pivot_row]
            self.rhs[row] = -self.rhs[row]
            p = -p
        pivot_rhs = self.rhs[row]
        for r in range(len(self.rows)):
            if r == row:
                continue
            factor = self.rows[r][col]
            if factor == 0:
                continue
            # true' = true_r - (factor/den_r) * (pivot_row/p)
            #       = (rows_r * p - factor * pivot_row) / (den_r * p)
            self.rows[r] = [
                a * p - factor * b if b else a * p
                for a, b in zip(self.rows[r], pivot_row)
            ]
            self.rhs[r] = self.rhs[r] * p - factor * pivot_rhs
            self.den[r] *= p
            self._reduce_row(r)
        # The pivot row is divided by the pivot value, which with per-row
        # denominators is just a denominator change: rows/den / (p/den) = rows/p.
        self.den[row] = p
        self._reduce_row(row)
        self.basis[row] = col

    def optimize(
        self, obj_num: list[int], obj_den: int, allowed_cols: Sequence[int]
    ) -> tuple[str, Fraction]:
        """Maximize the objective ``obj_num / obj_den`` over the current basis.

        ``allowed_cols`` restricts (in ascending order, for Bland's rule)
        which columns may enter the basis — used to keep artificial variables
        out in phase 2.  Returns (status, value) where value is the optimal
        objective value when status == 'optimal'.
        """
        # Reduced costs: maintain the objective row as one integer vector
        # over its own positive denominator, priced out against the basic
        # rows exactly like the classic "objective row" trick.
        onum = list(obj_num)
        oden = obj_den
        val_num = 0  # -(objective of the basic solution), over oden
        for i, basic_col in enumerate(self.basis):
            coeff = onum[basic_col]
            if coeff == 0:
                continue
            d = self.den[i]
            onum = [a * d - coeff * b if b else a * d for a, b in zip(onum, self.rows[i])]
            val_num = val_num * d - coeff * self.rhs[i]
            oden *= d
            onum, val_num, oden = _reduce_objective(onum, val_num, oden)
        while True:
            entering = None
            for col in allowed_cols:
                if onum[col] > 0:  # Bland: smallest index, sign via numerator
                    entering = col
                    break
            if entering is None:
                return "optimal", Fraction(-val_num, oden)
            leaving = None
            best_num = best_den = 0  # ratio rhs/a with a > 0; den cancels
            for row in range(len(self.rows)):
                a = self.rows[row][entering]
                if a > 0:
                    num = self.rhs[row]
                    cross = num * best_den - best_num * a
                    if (
                        leaving is None
                        or cross < 0
                        or (cross == 0 and self.basis[row] < self.basis[leaving])
                    ):
                        best_num, best_den = num, a
                        leaving = row
            if leaving is None:
                return "unbounded", Fraction(0)
            coeff = onum[entering]
            self.pivot(leaving, entering)
            d = self.den[leaving]
            onum = [
                a * d - coeff * b if b else a * d
                for a, b in zip(onum, self.rows[leaving])
            ]
            val_num = val_num * d - coeff * self.rhs[leaving]
            oden *= d
            onum, val_num, oden = _reduce_objective(onum, val_num, oden)


def _reduce_objective(
    onum: list[int], val_num: int, oden: int
) -> tuple[list[int], int, int]:
    """Divide the objective row by the gcd of its entries and denominator."""
    g = math.gcd(oden, val_num)
    if g > 1:
        for a in onum:
            if a:
                g = math.gcd(g, a)
                if g == 1:
                    break
    if g > 1:
        onum = [a // g for a in onum]
        val_num //= g
        oden //= g
    return onum, val_num, oden


def _standard_form(
    objective: Mapping[Symbol, Fraction],
    constraints: Sequence[LinearConstraint],
) -> tuple[list[list[int]], list[int], list[int], int, int]:
    """Convert to integer standard form ``A x = b, x >= 0`` with split free vars.

    Every constraint is scaled by the least common multiple of its
    coefficients' denominators (a positive factor, so the feasible set is
    unchanged), which makes the whole tableau integral on entry.  The
    objective is scaled the same way by its own common denominator.

    Returns (rows, rhs, objective_numerators, objective_denominator,
    n_structural_columns).
    """
    symbols = sorted(
        {s for c in constraints for s in c.symbols} | set(objective.keys()), key=str
    )
    index = {s: i for i, s in enumerate(symbols)}
    n_free = len(symbols)
    n_slack = sum(1 for c in constraints if c.kind is ConstraintKind.LE)
    ncols = 2 * n_free + n_slack
    rows: list[list[int]] = []
    rhs: list[int] = []
    slack_cursor = 0
    for constraint in constraints:
        scale = math.lcm(
            constraint.constant.denominator,
            *(c.denominator for _, c in constraint.coeffs),
        )
        row = [0] * ncols
        for s, c in constraint.coeffs:
            v = int(c * scale)
            j = index[s]
            row[2 * j] = v
            row[2 * j + 1] = -v
        if constraint.kind is ConstraintKind.LE:
            row[2 * n_free + slack_cursor] = 1
            slack_cursor += 1
        rows.append(row)
        rhs.append(int(-constraint.constant * scale))
    obj_scale = math.lcm(1, *(c.denominator for c in objective.values()))
    obj = [0] * ncols
    for s, c in objective.items():
        v = int(c * obj_scale)
        j = index[s]
        obj[2 * j] = v
        obj[2 * j + 1] = -v
    return rows, rhs, obj, obj_scale, ncols


def _presolve(
    objective: Mapping[Symbol, Fraction],
    constraints: Sequence[LinearConstraint],
) -> tuple[dict[Symbol, Fraction], list[LinearConstraint], Fraction] | None:
    """Gaussian-substitute every equality before the tableau is built.

    An equality ``a*s + e + k == 0`` determines ``s`` exactly, so ``s`` can
    be eliminated from the system *and the objective* without changing the
    feasible region's image or the optimum (the objective picks up a
    constant offset, which is returned and added back by the caller).  Cube
    polyhedra are dominated by assignment equalities, so this routinely
    shrinks the tableau from dozens of columns to a handful — and simplex
    cost is superlinear in the tableau size.

    Returns ``(objective, inequalities, offset)``, or ``None`` when a
    substitution chain exposes a contradiction (the system is infeasible).
    """
    obj = {s: Fraction(c) for s, c in objective.items() if Fraction(c) != 0}
    offset = Fraction(0)
    pending = list(constraints)
    inequalities: list[LinearConstraint] = []
    while pending:
        constraint = pending.pop()
        if constraint.is_contradiction:
            return None
        if constraint.is_trivial:
            continue
        if constraint.kind is not ConstraintKind.EQ:
            inequalities.append(constraint)
            continue
        symbol, coeff = constraint.coeffs[0]
        factor_map = {s: c / coeff for s, c in constraint.coeffs}
        constant = constraint.constant / coeff

        def substitute(target: LinearConstraint) -> LinearConstraint:
            c = target.coefficient(symbol)
            if c == 0:
                return target
            coeffs = target.coeff_map
            for s, e in factor_map.items():
                coeffs[s] = coeffs.get(s, Fraction(0)) - c * e
            return LinearConstraint.make(
                coeffs, target.constant - c * constant, target.kind
            )

        pending = [substitute(c) for c in pending]
        inequalities = [substitute(c) for c in inequalities]
        weight = obj.pop(symbol, Fraction(0))
        if weight != 0:
            # s = -(rest + constant)/coeff; fold it into the objective.
            for s, e in factor_map.items():
                if s is not symbol:
                    obj[s] = obj.get(s, Fraction(0)) - weight * e
            offset -= weight * constant
            obj = {s: c for s, c in obj.items() if c != 0}
    survivors = []
    for constraint in inequalities:
        if constraint.is_contradiction:
            return None
        if not constraint.is_trivial:
            survivors.append(constraint)
    return obj, survivors, offset


def exact_maximize(
    objective: Mapping[Symbol, Fraction],
    constraints: Sequence[LinearConstraint],
) -> ExactLpResult:
    """Exactly maximize ``objective`` subject to ``constraints`` (free vars)."""
    reduced = _presolve(objective, constraints)
    if reduced is None:
        return ExactLpResult("infeasible")
    objective, constraints, offset = reduced
    if not constraints:
        if not objective:
            return ExactLpResult("optimal", offset)
        return ExactLpResult("unbounded")
    rows, rhs, obj, obj_scale, ncols = _standard_form(objective, constraints)
    nrows = len(rows)
    # Phase 1: add one artificial variable per row (after flipping rows with
    # negative right-hand sides), minimize their sum.
    total_cols = ncols + nrows
    tab_rows: list[list[int]] = []
    tab_rhs: list[int] = []
    basis: list[int] = []
    for i in range(nrows):
        row = list(rows[i])
        b = rhs[i]
        if b < 0:
            row = [-a for a in row]
            b = -b
        row.extend(0 for _ in range(nrows))
        row[ncols + i] = 1
        tab_rows.append(row)
        tab_rhs.append(b)
        basis.append(ncols + i)
    tableau = _Tableau(tab_rows, tab_rhs, basis)
    phase1_obj = [0] * ncols + [-1] * nrows  # maximize -(sum of artificials)
    status, value = tableau.optimize(phase1_obj, 1, range(total_cols))
    if status != "optimal" or value < 0:
        return ExactLpResult("infeasible")
    # Drive any artificial variable that is still basic out of the basis.
    for i in range(nrows):
        if tableau.basis[i] >= ncols:
            pivot_col = next(
                (j for j in range(ncols) if tableau.rows[i][j] != 0), None
            )
            if pivot_col is not None:
                tableau.pivot(i, pivot_col)
    # Phase 2: maximize the real objective over structural + slack columns.
    phase2_obj = list(obj) + [0] * nrows
    status, value = tableau.optimize(phase2_obj, obj_scale, range(ncols))
    if status == "unbounded":
        return ExactLpResult("unbounded")
    return ExactLpResult("optimal", value + offset)


def exact_is_satisfiable(constraints: Sequence[LinearConstraint]) -> bool:
    """Exact rational satisfiability of a constraint system."""
    return not exact_maximize({}, constraints).is_infeasible


def exact_entails(
    constraints: Sequence[LinearConstraint], candidate: LinearConstraint
) -> bool:
    """Exact entailment check ``constraints |= candidate``."""
    if candidate.is_trivial:
        return True
    if candidate.is_contradiction:
        return not exact_is_satisfiable(constraints)
    if candidate.kind is ConstraintKind.EQ:
        le = LinearConstraint.make(candidate.coeff_map, candidate.constant)
        ge = LinearConstraint.make(
            {s: -c for s, c in candidate.coeffs}, -candidate.constant
        )
        return exact_entails(constraints, le) and exact_entails(constraints, ge)
    result = exact_maximize(candidate.coeff_map, constraints)
    if result.is_infeasible:
        return True
    if not result.is_optimal or result.value is None:
        return False
    return result.value <= -candidate.constant
