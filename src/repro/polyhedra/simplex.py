"""Exact rational linear programming (two-phase simplex, Bland's rule).

The floating-point LP backend (:mod:`repro.polyhedra.lp`) is fast but its
answers near the decision boundary cannot be trusted for *soundness-critical*
queries: claiming that a constraint system entails a candidate inequation when
it does not would let an unsound invariant into a procedure summary.  This
module provides an exact simplex over :class:`fractions.Fraction` that the LP
layer consults whenever the floating-point answer is in the unsound direction
or too close to call.

The solver maximizes a linear objective subject to ``A x + b <= 0`` /
``A x + b == 0`` constraints with *free* variables.  Free variables are split
into differences of non-negative variables, inequalities receive slack
variables, and a standard two-phase simplex with Bland's anti-cycling rule is
run on the resulting standard-form problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from ..formulas.symbols import Symbol
from .constraint import ConstraintKind, LinearConstraint

__all__ = ["ExactLpResult", "exact_maximize", "exact_is_satisfiable", "exact_entails"]


@dataclass(frozen=True)
class ExactLpResult:
    """Result of an exact LP: status is 'optimal', 'unbounded' or 'infeasible'."""

    status: str
    value: Fraction | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    @property
    def is_unbounded(self) -> bool:
        return self.status == "unbounded"

    @property
    def is_infeasible(self) -> bool:
        return self.status == "infeasible"


class _Tableau:
    """Dense simplex tableau over exact rationals.

    Rows are constraints ``sum a_ij x_j = b_i`` with ``b_i >= 0``; the last row
    is the (negated) objective.  ``basis[i]`` is the column basic in row ``i``.
    """

    def __init__(self, rows: list[list[Fraction]], rhs: list[Fraction], basis: list[int]):
        self.rows = rows
        self.rhs = rhs
        self.basis = basis
        self.ncols = len(rows[0]) if rows else 0

    def pivot(self, row: int, col: int) -> None:
        """Make ``col`` basic in ``row``.

        The tableau is mostly zeros (slack and artificial columns), so every
        update skips zero entries instead of paying a Fraction multiply-and-
        subtract for them — the values produced are identical.
        """
        pivot_value = self.rows[row][col]
        if pivot_value != 1:
            inv = Fraction(1) / pivot_value
            self.rows[row] = [a * inv if a else a for a in self.rows[row]]
            self.rhs[row] *= inv
        pivot_row = self.rows[row]
        for r in range(len(self.rows)):
            if r == row:
                continue
            factor = self.rows[r][col]
            if factor == 0:
                continue
            self.rows[r] = [
                a - factor * p if p else a
                for a, p in zip(self.rows[r], pivot_row)
            ]
            self.rhs[r] -= factor * self.rhs[row]
        self.basis[row] = col

    def optimize(self, objective: list[Fraction], allowed: set[int]) -> tuple[str, Fraction]:
        """Maximize ``objective`` over the current feasible basis.

        ``allowed`` restricts which columns may enter the basis (used to keep
        artificial variables out in phase 2).  Returns (status, value) where
        value is the optimal objective value when status == 'optimal'.
        """
        # Reduced costs: z_j - c_j computed incrementally via the usual
        # "objective row" trick: maintain obj_row = c - sum over basic rows.
        obj_row = list(objective)
        obj_value = Fraction(0)
        for i, basic_col in enumerate(self.basis):
            coeff = obj_row[basic_col]
            if coeff == 0:
                continue
            obj_row = [
                a - coeff * b if b else a for a, b in zip(obj_row, self.rows[i])
            ]
            obj_value -= coeff * self.rhs[i]
        # obj_value currently holds -(objective of the basic solution).
        while True:
            entering = None
            for col in range(self.ncols):
                if col in allowed and obj_row[col] > 0:
                    entering = col  # Bland: smallest index with positive reduced cost
                    break
            if entering is None:
                return "optimal", -obj_value
            leaving = None
            best_ratio: Fraction | None = None
            for row in range(len(self.rows)):
                a = self.rows[row][entering]
                if a > 0:
                    ratio = self.rhs[row] / a
                    if (
                        best_ratio is None
                        or ratio < best_ratio
                        or (ratio == best_ratio and self.basis[row] < self.basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = row
            if leaving is None:
                return "unbounded", Fraction(0)
            coeff = obj_row[entering]
            self.pivot(leaving, entering)
            obj_row = [
                a - coeff * b if b else a
                for a, b in zip(obj_row, self.rows[leaving])
            ]
            obj_value -= coeff * self.rhs[leaving]


def _standard_form(
    objective: Mapping[Symbol, Fraction],
    constraints: Sequence[LinearConstraint],
) -> tuple[list[list[Fraction]], list[Fraction], list[Fraction], int]:
    """Convert to standard form ``A x = b, x >= 0`` with split free variables.

    Returns (rows, rhs, objective_vector, n_structural_columns).
    """
    symbols = sorted(
        {s for c in constraints for s in c.symbols} | set(objective.keys()), key=str
    )
    index = {s: i for i, s in enumerate(symbols)}
    n_free = len(symbols)
    n_slack = sum(1 for c in constraints if c.kind is ConstraintKind.LE)
    ncols = 2 * n_free + n_slack
    rows: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    slack_cursor = 0
    for constraint in constraints:
        row = [Fraction(0)] * ncols
        for s, c in constraint.coeffs:
            j = index[s]
            row[2 * j] += c
            row[2 * j + 1] -= c
        if constraint.kind is ConstraintKind.LE:
            row[2 * n_free + slack_cursor] = Fraction(1)
            slack_cursor += 1
        b = -constraint.constant
        rows.append(row)
        rhs.append(b)
    obj = [Fraction(0)] * ncols
    for s, c in objective.items():
        j = index[s]
        obj[2 * j] += Fraction(c)
        obj[2 * j + 1] -= Fraction(c)
    return rows, rhs, obj, ncols


def _presolve(
    objective: Mapping[Symbol, Fraction],
    constraints: Sequence[LinearConstraint],
) -> tuple[dict[Symbol, Fraction], list[LinearConstraint], Fraction] | None:
    """Gaussian-substitute every equality before the tableau is built.

    An equality ``a*s + e + k == 0`` determines ``s`` exactly, so ``s`` can
    be eliminated from the system *and the objective* without changing the
    feasible region's image or the optimum (the objective picks up a
    constant offset, which is returned and added back by the caller).  Cube
    polyhedra are dominated by assignment equalities, so this routinely
    shrinks the tableau from dozens of columns to a handful — and simplex
    cost is superlinear in the tableau size.

    Returns ``(objective, inequalities, offset)``, or ``None`` when a
    substitution chain exposes a contradiction (the system is infeasible).
    """
    obj = {s: Fraction(c) for s, c in objective.items() if Fraction(c) != 0}
    offset = Fraction(0)
    pending = list(constraints)
    inequalities: list[LinearConstraint] = []
    while pending:
        constraint = pending.pop()
        if constraint.is_contradiction:
            return None
        if constraint.is_trivial:
            continue
        if constraint.kind is not ConstraintKind.EQ:
            inequalities.append(constraint)
            continue
        symbol, coeff = constraint.coeffs[0]
        factor_map = {s: c / coeff for s, c in constraint.coeffs}
        constant = constraint.constant / coeff

        def substitute(target: LinearConstraint) -> LinearConstraint:
            c = target.coefficient(symbol)
            if c == 0:
                return target
            coeffs = target.coeff_map
            for s, e in factor_map.items():
                coeffs[s] = coeffs.get(s, Fraction(0)) - c * e
            return LinearConstraint.make(
                coeffs, target.constant - c * constant, target.kind
            )

        pending = [substitute(c) for c in pending]
        inequalities = [substitute(c) for c in inequalities]
        weight = obj.pop(symbol, Fraction(0))
        if weight != 0:
            # s = -(rest + constant)/coeff; fold it into the objective.
            for s, e in factor_map.items():
                if s is not symbol:
                    obj[s] = obj.get(s, Fraction(0)) - weight * e
            offset -= weight * constant
            obj = {s: c for s, c in obj.items() if c != 0}
    survivors = []
    for constraint in inequalities:
        if constraint.is_contradiction:
            return None
        if not constraint.is_trivial:
            survivors.append(constraint)
    return obj, survivors, offset


def exact_maximize(
    objective: Mapping[Symbol, Fraction],
    constraints: Sequence[LinearConstraint],
) -> ExactLpResult:
    """Exactly maximize ``objective`` subject to ``constraints`` (free vars)."""
    reduced = _presolve(objective, constraints)
    if reduced is None:
        return ExactLpResult("infeasible")
    objective, constraints, offset = reduced
    if not constraints:
        if not objective:
            return ExactLpResult("optimal", offset)
        return ExactLpResult("unbounded")
    rows, rhs, obj, ncols = _standard_form(objective, constraints)
    nrows = len(rows)
    # Phase 1: add one artificial variable per row (after flipping rows with
    # negative right-hand sides), minimize their sum.
    total_cols = ncols + nrows
    tab_rows: list[list[Fraction]] = []
    tab_rhs: list[Fraction] = []
    basis: list[int] = []
    for i in range(nrows):
        row = list(rows[i])
        b = rhs[i]
        if b < 0:
            row = [-a for a in row]
            b = -b
        row.extend(Fraction(0) for _ in range(nrows))
        row[ncols + i] = Fraction(1)
        tab_rows.append(row)
        tab_rhs.append(b)
        basis.append(ncols + i)
    tableau = _Tableau(tab_rows, tab_rhs, basis)
    phase1_obj = [Fraction(0)] * total_cols
    for i in range(nrows):
        phase1_obj[ncols + i] = Fraction(-1)  # maximize -(sum of artificials)
    status, value = tableau.optimize(phase1_obj, allowed=set(range(total_cols)))
    if status != "optimal" or value < 0:
        return ExactLpResult("infeasible")
    # Drive any artificial variable that is still basic out of the basis.
    for i in range(nrows):
        if tableau.basis[i] >= ncols:
            pivot_col = next(
                (j for j in range(ncols) if tableau.rows[i][j] != 0), None
            )
            if pivot_col is not None:
                tableau.pivot(i, pivot_col)
    # Phase 2: maximize the real objective over structural + slack columns.
    phase2_obj = list(obj) + [Fraction(0)] * nrows
    allowed = set(range(ncols))
    status, value = tableau.optimize(phase2_obj, allowed=allowed)
    if status == "unbounded":
        return ExactLpResult("unbounded")
    return ExactLpResult("optimal", value + offset)


def exact_is_satisfiable(constraints: Sequence[LinearConstraint]) -> bool:
    """Exact rational satisfiability of a constraint system."""
    return not exact_maximize({}, constraints).is_infeasible


def exact_entails(
    constraints: Sequence[LinearConstraint], candidate: LinearConstraint
) -> bool:
    """Exact entailment check ``constraints |= candidate``."""
    if candidate.is_trivial:
        return True
    if candidate.is_contradiction:
        return not exact_is_satisfiable(constraints)
    if candidate.kind is ConstraintKind.EQ:
        le = LinearConstraint.make(candidate.coeff_map, candidate.constant)
        ge = LinearConstraint.make(
            {s: -c for s, c in candidate.coeffs}, -candidate.constant
        )
        return exact_entails(constraints, le) and exact_entails(constraints, ge)
    result = exact_maximize(candidate.coeff_map, constraints)
    if result.is_infeasible:
        return True
    if not result.is_optimal or result.value is None:
        return False
    return result.value <= -candidate.constant
