"""Exact rational linear programming (fraction-free two-phase simplex).

The floating-point LP backend (:mod:`repro.polyhedra.lp`) is fast but its
answers near the decision boundary cannot be trusted for *soundness-critical*
queries: claiming that a constraint system entails a candidate inequation when
it does not would let an unsound invariant into a procedure summary.  This
module provides an exact simplex that the LP layer consults whenever the
floating-point answer is in the unsound direction or too close to call.

The solver maximizes a linear objective subject to ``A x + b <= 0`` /
``A x + b == 0`` constraints with *free* variables.  Free variables are split
into differences of non-negative variables, inequalities receive slack
variables, and a standard two-phase simplex with Bland's anti-cycling rule is
run on the resulting standard-form problem.

Arithmetic is **fraction-free**: every constraint is scaled to integers by
the common denominator on entry, and the tableau stores one integer row plus
a single positive integer denominator per row (the rational entry is
``rows[i][j] / den[i]``).  A pivot is then pure integer multiply-and-subtract
in the style of Bareiss — the systematic factor is divided out once per row
via a single gcd pass — instead of a `fractions.Fraction` normalisation (two
gcds and an object allocation) per tableau cell.  Optimal values, feasibility
and boundedness are properties of the LP itself, not of the tableau
representation, so the results are bit-identical to the previous
``Fraction``-based tableau; the Hypothesis differential suite in
``tests/unit/test_simplex_integer.py`` pins the two implementations against
each other on random LPs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from ..formulas.symbols import Symbol
from .constraint import ConstraintKind, LinearConstraint

try:  # numpy backs the fixed-width kernel; without it every LP runs bignum.
    import numpy as _np
except ImportError:  # pragma: no cover - the test image ships numpy
    _np = None

__all__ = [
    "ExactLpResult",
    "exact_maximize",
    "exact_is_satisfiable",
    "exact_entails",
    "set_simplex_kernel",
    "simplex_kernel",
    "int64_available",
    "kernel_stats",
    "reset_kernel_stats",
]

# ---------------------------------------------------------------------------
# Kernel selection.
#
# Two pivot kernels implement the same fraction-free Bareiss tableau: the
# original per-row Python bignum lists (`_Tableau`) and a vectorised numpy
# int64 matrix (`_Int64Tableau`).  Both perform *identical* integer
# arithmetic — same pivots, same gcd reductions, same Bland/ratio decisions
# made on exact Python integers — so every result is bit-identical; the
# int64 kernel merely refuses (via `_Int64Overflow`) any pivot whose
# intermediates could exceed the fixed width, at which point the whole LP is
# re-run on the bignum tableau.  The kernel choice is therefore invisible to
# callers: memo keys, verdicts and optimal values never depend on it.
# ---------------------------------------------------------------------------

_KERNEL_MODES = ("auto", "int64", "bignum")
_kernel_mode = "auto"
# Any tableau entry, denominator or pivot intermediate must stay strictly
# below this bound.  2^62 leaves headroom so that the multiply-subtract
# `a*p - f*b` (bounded by rows_max*p + f_max*prow_max, checked before the
# pivot) can never reach 2^63 even transiently.  Tests shrink it to force
# the overflow detector to fire on small inputs.
_INT64_SAFE = 1 << 62
# In "auto" mode only tableaus with at least this many cells take the numpy
# path: below it the per-pivot numpy dispatch overhead exceeds the bignum
# loop it replaces.  "int64" mode ignores the floor (used by benchmarks and
# the differential tests to exercise the kernel on any size).
_INT64_MIN_CELLS = 256

_KERNEL_STATS = {"int64": 0, "bignum": 0, "fallbacks": 0}


def set_simplex_kernel(mode: str) -> str:
    """Select the pivot kernel; returns the previous mode.

    ``auto`` (default) routes large integral tableaus to the int64 kernel,
    ``int64`` prefers it regardless of size, ``bignum`` disables it.  All
    modes produce bit-identical results.
    """
    global _kernel_mode
    if mode not in _KERNEL_MODES:
        raise ValueError(f"unknown simplex kernel {mode!r}; expected one of {_KERNEL_MODES}")
    previous = _kernel_mode
    _kernel_mode = mode
    return previous


def simplex_kernel() -> str:
    """Return the current kernel mode ('auto', 'int64' or 'bignum')."""
    return _kernel_mode


def int64_available() -> bool:
    """True when numpy is importable, i.e. the int64 kernel can run."""
    return _np is not None


def kernel_stats() -> dict[str, int]:
    """Counters: LPs solved per kernel plus int64→bignum overflow fallbacks."""
    return dict(_KERNEL_STATS)


def reset_kernel_stats() -> None:
    for key in _KERNEL_STATS:
        _KERNEL_STATS[key] = 0


class _Int64Overflow(Exception):
    """Raised by the int64 kernel when a pivot could exceed the fixed width."""


@dataclass(frozen=True)
class ExactLpResult:
    """Result of an exact LP: status is 'optimal', 'unbounded' or 'infeasible'."""

    status: str
    value: Fraction | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    @property
    def is_unbounded(self) -> bool:
        return self.status == "unbounded"

    @property
    def is_infeasible(self) -> bool:
        return self.status == "infeasible"


class _Tableau:
    """Fraction-free integer simplex tableau with per-row denominators.

    Row ``i`` holds integers ``rows[i]`` and ``rhs[i]`` plus a positive
    integer ``den[i]``; the rational tableau entry is ``rows[i][j] / den[i]``
    and the basic value is ``rhs[i] / den[i]``.  Rows are constraints
    ``sum a_ij x_j = b_i`` with ``b_i >= 0``; ``basis[i]`` is the column
    basic in row ``i``.  All comparisons the simplex needs (signs, ratio
    tests) are answered with integer cross-multiplication, so no rational
    normalisation ever happens inside the pivot loop.
    """

    __slots__ = ("rows", "rhs", "den", "basis", "ncols")

    def __init__(self, rows: list[list[int]], rhs: list[int], basis: list[int]):
        self.rows = rows
        self.rhs = rhs
        self.den = [1] * len(rows)
        self.basis = basis
        self.ncols = len(rows[0]) if rows else 0

    def _reduce_row(self, r: int) -> None:
        """Divide row ``r`` by the gcd of its entries and denominator.

        This is the fraction-free analogue of `Fraction` normalisation, paid
        once per row per pivot instead of once per cell per operation; it
        keeps the integers near their minimal size so later multiplications
        stay cheap.
        """
        g = math.gcd(self.den[r], self.rhs[r])
        if g == 1:
            return
        for a in self.rows[r]:
            if a:
                g = math.gcd(g, a)
                if g == 1:
                    return
        self.rows[r] = [a // g for a in self.rows[r]]
        self.rhs[r] //= g
        self.den[r] //= g

    def pivot(self, row: int, col: int) -> None:
        """Make ``col`` basic in ``row``.

        The tableau is mostly zeros (slack and artificial columns), so rows
        with a zero entry in the pivot column are skipped entirely — their
        rational values are unchanged and, with per-row denominators, so is
        their integer representation.
        """
        pivot_row = self.rows[row]
        p = pivot_row[col]
        if p < 0:
            # Only reachable from the drive-artificials-out path, where the
            # row's basic value is exactly zero, so flipping the equality
            # row's sign keeps the right-hand side non-negative.
            pivot_row = self.rows[row] = [-a for a in pivot_row]
            self.rhs[row] = -self.rhs[row]
            p = -p
        pivot_rhs = self.rhs[row]
        for r in range(len(self.rows)):
            if r == row:
                continue
            factor = self.rows[r][col]
            if factor == 0:
                continue
            # true' = true_r - (factor/den_r) * (pivot_row/p)
            #       = (rows_r * p - factor * pivot_row) / (den_r * p)
            self.rows[r] = [
                a * p - factor * b if b else a * p
                for a, b in zip(self.rows[r], pivot_row)
            ]
            self.rhs[r] = self.rhs[r] * p - factor * pivot_rhs
            self.den[r] *= p
            self._reduce_row(r)
        # The pivot row is divided by the pivot value, which with per-row
        # denominators is just a denominator change: rows/den / (p/den) = rows/p.
        self.den[row] = p
        self._reduce_row(row)
        self.basis[row] = col

    def first_nonzero(self, row: int, limit: int) -> int | None:
        """Smallest column index < ``limit`` with a nonzero entry in ``row``."""
        return next((j for j in range(limit) if self.rows[row][j] != 0), None)

    def optimize(
        self, obj_num: list[int], obj_den: int, allowed_cols: Sequence[int]
    ) -> tuple[str, Fraction]:
        """Maximize the objective ``obj_num / obj_den`` over the current basis.

        ``allowed_cols`` restricts (in ascending order, for Bland's rule)
        which columns may enter the basis — used to keep artificial variables
        out in phase 2.  Returns (status, value) where value is the optimal
        objective value when status == 'optimal'.
        """
        # Reduced costs: maintain the objective row as one integer vector
        # over its own positive denominator, priced out against the basic
        # rows exactly like the classic "objective row" trick.
        onum = list(obj_num)
        oden = obj_den
        val_num = 0  # -(objective of the basic solution), over oden
        for i, basic_col in enumerate(self.basis):
            coeff = onum[basic_col]
            if coeff == 0:
                continue
            d = self.den[i]
            onum = [a * d - coeff * b if b else a * d for a, b in zip(onum, self.rows[i])]
            val_num = val_num * d - coeff * self.rhs[i]
            oden *= d
            onum, val_num, oden = _reduce_objective(onum, val_num, oden)
        while True:
            entering = None
            for col in allowed_cols:
                if onum[col] > 0:  # Bland: smallest index, sign via numerator
                    entering = col
                    break
            if entering is None:
                return "optimal", Fraction(-val_num, oden)
            leaving = None
            best_num = best_den = 0  # ratio rhs/a with a > 0; den cancels
            for row in range(len(self.rows)):
                a = self.rows[row][entering]
                if a > 0:
                    num = self.rhs[row]
                    cross = num * best_den - best_num * a
                    if (
                        leaving is None
                        or cross < 0
                        or (cross == 0 and self.basis[row] < self.basis[leaving])
                    ):
                        best_num, best_den = num, a
                        leaving = row
            if leaving is None:
                return "unbounded", Fraction(0)
            coeff = onum[entering]
            self.pivot(leaving, entering)
            d = self.den[leaving]
            onum = [
                a * d - coeff * b if b else a * d
                for a, b in zip(onum, self.rows[leaving])
            ]
            val_num = val_num * d - coeff * self.rhs[leaving]
            oden *= d
            onum, val_num, oden = _reduce_objective(onum, val_num, oden)


def _reduce_objective(
    onum: list[int], val_num: int, oden: int
) -> tuple[list[int], int, int]:
    """Divide the objective row by the gcd of its entries and denominator."""
    g = math.gcd(oden, val_num)
    if g > 1:
        for a in onum:
            if a:
                g = math.gcd(g, a)
                if g == 1:
                    break
    if g > 1:
        onum = [a // g for a in onum]
        val_num //= g
        oden //= g
    return onum, val_num, oden


class _Int64Tableau:
    """Vectorised int64 twin of :class:`_Tableau`.

    The tableau lives in one ``(nrows, ncols + 1)`` int64 matrix whose last
    column is the right-hand side, plus an int64 denominator vector, so the
    Bareiss multiply-subtract and the per-row gcd normalisation become whole-
    matrix numpy expressions.  Everything *decision-shaped* — the priced-out
    objective row, Bland's entering scan and the cross-multiplied ratio
    test — stays in exact Python integers (those touch a single row or
    column per pivot, so they are cheap, and keeping them exact removes any
    fixed-width concern from the pivot-selection logic).  The pivot sequence
    is therefore identical to the bignum kernel's, and so is every integer
    the tableau ever holds.

    Before each pivot a bound on the multiply-subtract intermediates is
    computed in Python integers; if it could reach ``_INT64_SAFE`` the kernel
    raises :class:`_Int64Overflow` and the caller restarts the LP on the
    bignum tableau (tableau-wise fallback — by construction no partially
    wrapped state can ever be observed).
    """

    __slots__ = ("m", "den", "basis", "ncols")

    def __init__(self, rows: list[list[int]], rhs: list[int], basis: list[int]):
        nrows = len(rows)
        self.ncols = len(rows[0]) if rows else 0
        try:
            m = _np.empty((nrows, self.ncols + 1), dtype=_np.int64)
            for i, row in enumerate(rows):
                m[i, :-1] = row
                m[i, -1] = rhs[i]
        except OverflowError as exc:  # an entry does not even fit in int64
            raise _Int64Overflow from exc
        # Magnitude check via min/max, not np.abs: abs(-2^63) wraps in int64.
        if m.size and max(-int(m.min()), int(m.max())) >= _INT64_SAFE:
            raise _Int64Overflow
        self.m = m
        self.den = _np.ones(nrows, dtype=_np.int64)
        self.basis = basis

    def _reduce_rows(self, mask: "_np.ndarray") -> None:
        """gcd-normalise every masked row (entries, rhs and denominator)."""
        rows = self.m[mask]
        g = _np.gcd.reduce(_np.abs(rows), axis=1)
        g = _np.gcd(g, self.den[mask])
        if bool((g > 1).any()):
            # Exact: g divides every entry, so floor division is exact
            # division even for negative entries.
            self.m[mask] = rows // g[:, None]
            self.den[mask] = self.den[mask] // g

    def _reduce_row(self, r: int) -> None:
        row = self.m[r]
        g = math.gcd(int(_np.gcd.reduce(_np.abs(row))), int(self.den[r]))
        if g > 1:
            row //= g
            self.den[r] //= g

    def pivot(self, row: int, col: int) -> None:
        """Make ``col`` basic in ``row`` — same arithmetic as `_Tableau.pivot`."""
        m = self.m
        p = int(m[row, col])
        if p < 0:
            # Same drive-artificials-out corner as the bignum kernel; the
            # negation cannot overflow because entries stay < _INT64_SAFE.
            _np.negative(m[row], out=m[row])
            p = -p
        pivot_row = m[row]
        factors = m[:, col].copy()
        factors[row] = 0
        mask = factors != 0
        if bool(mask.any()):
            touched = m[mask]
            rows_max = int(_np.abs(touched).max())
            factor_max = int(_np.abs(factors[mask]).max())
            prow_max = int(_np.abs(pivot_row).max())
            den_max = int(self.den[mask].max())
            # Python-int bound check: |a*p - f*b| <= rows_max*p +
            # factor_max*prow_max, and each intermediate product is bounded
            # by one of the two addends, so passing here guarantees no
            # transient wraps either.
            if rows_max * p + factor_max * prow_max >= _INT64_SAFE or den_max * p >= _INT64_SAFE:
                raise _Int64Overflow
            m[mask] = touched * p - factors[mask, None] * pivot_row
            self.den[mask] = self.den[mask] * p
            self._reduce_rows(mask)
        self.den[row] = p
        self._reduce_row(row)
        self.basis[row] = col

    def first_nonzero(self, row: int, limit: int) -> int | None:
        nz = _np.nonzero(self.m[row, :limit])[0]
        return int(nz[0]) if nz.size else None

    def optimize(
        self, obj_num: list[int], obj_den: int, allowed_cols: Sequence[int]
    ) -> tuple[str, Fraction]:
        """Maximize ``obj_num / obj_den`` — decision logic mirrors `_Tableau`."""
        onum = list(obj_num)
        oden = obj_den
        val_num = 0
        for i, basic_col in enumerate(self.basis):
            coeff = onum[basic_col]
            if coeff == 0:
                continue
            d = int(self.den[i])
            row = self.m[i].tolist()
            row_rhs = row.pop()
            onum = [a * d - coeff * b if b else a * d for a, b in zip(onum, row)]
            val_num = val_num * d - coeff * row_rhs
            oden *= d
            onum, val_num, oden = _reduce_objective(onum, val_num, oden)
        nrows = len(self.basis)
        while True:
            entering = None
            for col in allowed_cols:
                if onum[col] > 0:
                    entering = col
                    break
            if entering is None:
                return "optimal", Fraction(-val_num, oden)
            column = self.m[:, entering].tolist()
            rhs = self.m[:, -1].tolist()
            leaving = None
            best_num = best_den = 0
            for r in range(nrows):
                a = column[r]
                if a > 0:
                    num = rhs[r]
                    cross = num * best_den - best_num * a
                    if (
                        leaving is None
                        or cross < 0
                        or (cross == 0 and self.basis[r] < self.basis[leaving])
                    ):
                        best_num, best_den = num, a
                        leaving = r
            if leaving is None:
                return "unbounded", Fraction(0)
            coeff = onum[entering]
            self.pivot(leaving, entering)
            d = int(self.den[leaving])
            lrow = self.m[leaving].tolist()
            lrhs = lrow.pop()
            onum = [a * d - coeff * b if b else a * d for a, b in zip(onum, lrow)]
            val_num = val_num * d - coeff * lrhs
            oden *= d
            onum, val_num, oden = _reduce_objective(onum, val_num, oden)


def _standard_form(
    objective: Mapping[Symbol, Fraction],
    constraints: Sequence[LinearConstraint],
) -> tuple[list[list[int]], list[int], list[int], int, int]:
    """Convert to integer standard form ``A x = b, x >= 0`` with split free vars.

    Every constraint is scaled by the least common multiple of its
    coefficients' denominators (a positive factor, so the feasible set is
    unchanged), which makes the whole tableau integral on entry.  The
    objective is scaled the same way by its own common denominator.

    Returns (rows, rhs, objective_numerators, objective_denominator,
    n_structural_columns).
    """
    symbols = sorted(
        {s for c in constraints for s in c.symbols} | set(objective.keys()), key=str
    )
    index = {s: i for i, s in enumerate(symbols)}
    n_free = len(symbols)
    n_slack = sum(1 for c in constraints if c.kind is ConstraintKind.LE)
    ncols = 2 * n_free + n_slack
    rows: list[list[int]] = []
    rhs: list[int] = []
    slack_cursor = 0
    for constraint in constraints:
        scale = math.lcm(
            constraint.constant.denominator,
            *(c.denominator for _, c in constraint.coeffs),
        )
        row = [0] * ncols
        for s, c in constraint.coeffs:
            v = int(c * scale)
            j = index[s]
            row[2 * j] = v
            row[2 * j + 1] = -v
        if constraint.kind is ConstraintKind.LE:
            row[2 * n_free + slack_cursor] = 1
            slack_cursor += 1
        rows.append(row)
        rhs.append(int(-constraint.constant * scale))
    obj_scale = math.lcm(1, *(c.denominator for c in objective.values()))
    obj = [0] * ncols
    for s, c in objective.items():
        v = int(c * obj_scale)
        j = index[s]
        obj[2 * j] = v
        obj[2 * j + 1] = -v
    return rows, rhs, obj, obj_scale, ncols


def _presolve(
    objective: Mapping[Symbol, Fraction],
    constraints: Sequence[LinearConstraint],
) -> tuple[dict[Symbol, Fraction], list[LinearConstraint], Fraction] | None:
    """Gaussian-substitute every equality before the tableau is built.

    An equality ``a*s + e + k == 0`` determines ``s`` exactly, so ``s`` can
    be eliminated from the system *and the objective* without changing the
    feasible region's image or the optimum (the objective picks up a
    constant offset, which is returned and added back by the caller).  Cube
    polyhedra are dominated by assignment equalities, so this routinely
    shrinks the tableau from dozens of columns to a handful — and simplex
    cost is superlinear in the tableau size.

    Returns ``(objective, inequalities, offset)``, or ``None`` when a
    substitution chain exposes a contradiction (the system is infeasible).
    """
    obj = {s: Fraction(c) for s, c in objective.items() if Fraction(c) != 0}
    offset = Fraction(0)
    pending = list(constraints)
    inequalities: list[LinearConstraint] = []
    while pending:
        constraint = pending.pop()
        if constraint.is_contradiction:
            return None
        if constraint.is_trivial:
            continue
        if constraint.kind is not ConstraintKind.EQ:
            inequalities.append(constraint)
            continue
        symbol, coeff = constraint.coeffs[0]
        factor_map = {s: c / coeff for s, c in constraint.coeffs}
        constant = constraint.constant / coeff

        def substitute(target: LinearConstraint) -> LinearConstraint:
            c = target.coefficient(symbol)
            if c == 0:
                return target
            coeffs = target.coeff_map
            for s, e in factor_map.items():
                coeffs[s] = coeffs.get(s, Fraction(0)) - c * e
            return LinearConstraint.make(
                coeffs, target.constant - c * constant, target.kind
            )

        pending = [substitute(c) for c in pending]
        inequalities = [substitute(c) for c in inequalities]
        weight = obj.pop(symbol, Fraction(0))
        if weight != 0:
            # s = -(rest + constant)/coeff; fold it into the objective.
            for s, e in factor_map.items():
                if s is not symbol:
                    obj[s] = obj.get(s, Fraction(0)) - weight * e
            offset -= weight * constant
            obj = {s: c for s, c in obj.items() if c != 0}
    survivors = []
    for constraint in inequalities:
        if constraint.is_contradiction:
            return None
        if not constraint.is_trivial:
            survivors.append(constraint)
    return obj, survivors, offset


def exact_maximize(
    objective: Mapping[Symbol, Fraction],
    constraints: Sequence[LinearConstraint],
) -> ExactLpResult:
    """Exactly maximize ``objective`` subject to ``constraints`` (free vars)."""
    reduced = _presolve(objective, constraints)
    if reduced is None:
        return ExactLpResult("infeasible")
    objective, constraints, offset = reduced
    if not constraints:
        if not objective:
            return ExactLpResult("optimal", offset)
        return ExactLpResult("unbounded")
    rows, rhs, obj, obj_scale, ncols = _standard_form(objective, constraints)
    nrows = len(rows)
    # Phase 1: add one artificial variable per row (after flipping rows with
    # negative right-hand sides), minimize their sum.
    tab_rows: list[list[int]] = []
    tab_rhs: list[int] = []
    basis: list[int] = []
    for i in range(nrows):
        row = list(rows[i])
        b = rhs[i]
        if b < 0:
            row = [-a for a in row]
            b = -b
        row.extend(0 for _ in range(nrows))
        row[ncols + i] = 1
        tab_rows.append(row)
        tab_rhs.append(b)
        basis.append(ncols + i)
    result: ExactLpResult | None = None
    if _use_int64(nrows, ncols + nrows):
        try:
            # The numpy constructor copies tab_rows/tab_rhs, so the bignum
            # restart below always starts from pristine inputs.
            tableau = _Int64Tableau(tab_rows, tab_rhs, list(basis))
            result = _solve_two_phase(tableau, obj, obj_scale, ncols, nrows)
            _KERNEL_STATS["int64"] += 1
        except _Int64Overflow:
            _KERNEL_STATS["fallbacks"] += 1
    if result is None:
        _KERNEL_STATS["bignum"] += 1
        tableau = _Tableau(tab_rows, tab_rhs, basis)
        result = _solve_two_phase(tableau, obj, obj_scale, ncols, nrows)
    if result.status != "optimal":
        return result
    assert result.value is not None
    return ExactLpResult("optimal", result.value + offset)


def _use_int64(nrows: int, total_cols: int) -> bool:
    if _np is None or _kernel_mode == "bignum":
        return False
    return _kernel_mode == "int64" or nrows * (total_cols + 1) >= _INT64_MIN_CELLS


def _solve_two_phase(
    tableau: "_Tableau | _Int64Tableau",
    obj: list[int],
    obj_scale: int,
    ncols: int,
    nrows: int,
) -> ExactLpResult:
    """Run both simplex phases on an already-built phase-1 tableau."""
    total_cols = ncols + nrows
    phase1_obj = [0] * ncols + [-1] * nrows  # maximize -(sum of artificials)
    status, value = tableau.optimize(phase1_obj, 1, range(total_cols))
    if status != "optimal" or value < 0:
        return ExactLpResult("infeasible")
    # Drive any artificial variable that is still basic out of the basis.
    for i in range(nrows):
        if tableau.basis[i] >= ncols:
            pivot_col = tableau.first_nonzero(i, ncols)
            if pivot_col is not None:
                tableau.pivot(i, pivot_col)
    # Phase 2: maximize the real objective over structural + slack columns.
    phase2_obj = list(obj) + [0] * nrows
    status, value = tableau.optimize(phase2_obj, obj_scale, range(ncols))
    if status == "unbounded":
        return ExactLpResult("unbounded")
    return ExactLpResult("optimal", value)


def exact_is_satisfiable(constraints: Sequence[LinearConstraint]) -> bool:
    """Exact rational satisfiability of a constraint system."""
    return not exact_maximize({}, constraints).is_infeasible


def exact_entails(
    constraints: Sequence[LinearConstraint], candidate: LinearConstraint
) -> bool:
    """Exact entailment check ``constraints |= candidate``."""
    if candidate.is_trivial:
        return True
    if candidate.is_contradiction:
        return not exact_is_satisfiable(constraints)
    if candidate.kind is ConstraintKind.EQ:
        le = LinearConstraint.make(candidate.coeff_map, candidate.constant)
        ge = LinearConstraint.make(
            {s: -c for s, c in candidate.coeffs}, -candidate.constant
        )
        return exact_entails(constraints, le) and exact_entails(constraints, ge)
    result = exact_maximize(candidate.coeff_map, constraints)
    if result.is_infeasible:
        return True
    if not result.is_optimal or result.value is None:
        return False
    return result.value <= -candidate.constant
