"""Exact rational linear programming (two-phase simplex, Bland's rule).

The floating-point LP backend (:mod:`repro.polyhedra.lp`) is fast but its
answers near the decision boundary cannot be trusted for *soundness-critical*
queries: claiming that a constraint system entails a candidate inequation when
it does not would let an unsound invariant into a procedure summary.  This
module provides an exact simplex over :class:`fractions.Fraction` that the LP
layer consults whenever the floating-point answer is in the unsound direction
or too close to call.

The solver maximizes a linear objective subject to ``A x + b <= 0`` /
``A x + b == 0`` constraints with *free* variables.  Free variables are split
into differences of non-negative variables, inequalities receive slack
variables, and a standard two-phase simplex with Bland's anti-cycling rule is
run on the resulting standard-form problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from ..formulas.symbols import Symbol
from .constraint import ConstraintKind, LinearConstraint

__all__ = ["ExactLpResult", "exact_maximize", "exact_is_satisfiable", "exact_entails"]


@dataclass(frozen=True)
class ExactLpResult:
    """Result of an exact LP: status is 'optimal', 'unbounded' or 'infeasible'."""

    status: str
    value: Fraction | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    @property
    def is_unbounded(self) -> bool:
        return self.status == "unbounded"

    @property
    def is_infeasible(self) -> bool:
        return self.status == "infeasible"


class _Tableau:
    """Dense simplex tableau over exact rationals.

    Rows are constraints ``sum a_ij x_j = b_i`` with ``b_i >= 0``; the last row
    is the (negated) objective.  ``basis[i]`` is the column basic in row ``i``.
    """

    def __init__(self, rows: list[list[Fraction]], rhs: list[Fraction], basis: list[int]):
        self.rows = rows
        self.rhs = rhs
        self.basis = basis
        self.ncols = len(rows[0]) if rows else 0

    def pivot(self, row: int, col: int) -> None:
        """Make ``col`` basic in ``row``."""
        pivot_value = self.rows[row][col]
        inv = Fraction(1) / pivot_value
        self.rows[row] = [a * inv for a in self.rows[row]]
        self.rhs[row] *= inv
        for r in range(len(self.rows)):
            if r == row:
                continue
            factor = self.rows[r][col]
            if factor == 0:
                continue
            self.rows[r] = [
                a - factor * p for a, p in zip(self.rows[r], self.rows[row])
            ]
            self.rhs[r] -= factor * self.rhs[row]
        self.basis[row] = col

    def optimize(self, objective: list[Fraction], allowed: set[int]) -> tuple[str, Fraction]:
        """Maximize ``objective`` over the current feasible basis.

        ``allowed`` restricts which columns may enter the basis (used to keep
        artificial variables out in phase 2).  Returns (status, value) where
        value is the optimal objective value when status == 'optimal'.
        """
        # Reduced costs: z_j - c_j computed incrementally via the usual
        # "objective row" trick: maintain obj_row = c - sum over basic rows.
        obj_row = list(objective)
        obj_value = Fraction(0)
        for i, basic_col in enumerate(self.basis):
            coeff = obj_row[basic_col]
            if coeff == 0:
                continue
            obj_row = [a - coeff * b for a, b in zip(obj_row, self.rows[i])]
            obj_value -= coeff * self.rhs[i]
        # obj_value currently holds -(objective of the basic solution).
        while True:
            entering = None
            for col in range(self.ncols):
                if col in allowed and obj_row[col] > 0:
                    entering = col  # Bland: smallest index with positive reduced cost
                    break
            if entering is None:
                return "optimal", -obj_value
            leaving = None
            best_ratio: Fraction | None = None
            for row in range(len(self.rows)):
                a = self.rows[row][entering]
                if a > 0:
                    ratio = self.rhs[row] / a
                    if (
                        best_ratio is None
                        or ratio < best_ratio
                        or (ratio == best_ratio and self.basis[row] < self.basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = row
            if leaving is None:
                return "unbounded", Fraction(0)
            coeff = obj_row[entering]
            self.pivot(leaving, entering)
            obj_row = [a - coeff * b for a, b in zip(obj_row, self.rows[leaving])]
            obj_value -= coeff * self.rhs[leaving]


def _standard_form(
    objective: Mapping[Symbol, Fraction],
    constraints: Sequence[LinearConstraint],
) -> tuple[list[list[Fraction]], list[Fraction], list[Fraction], int]:
    """Convert to standard form ``A x = b, x >= 0`` with split free variables.

    Returns (rows, rhs, objective_vector, n_structural_columns).
    """
    symbols = sorted(
        {s for c in constraints for s in c.symbols} | set(objective.keys()), key=str
    )
    index = {s: i for i, s in enumerate(symbols)}
    n_free = len(symbols)
    n_slack = sum(1 for c in constraints if c.kind is ConstraintKind.LE)
    ncols = 2 * n_free + n_slack
    rows: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    slack_cursor = 0
    for constraint in constraints:
        row = [Fraction(0)] * ncols
        for s, c in constraint.coeffs:
            j = index[s]
            row[2 * j] += c
            row[2 * j + 1] -= c
        if constraint.kind is ConstraintKind.LE:
            row[2 * n_free + slack_cursor] = Fraction(1)
            slack_cursor += 1
        b = -constraint.constant
        rows.append(row)
        rhs.append(b)
    obj = [Fraction(0)] * ncols
    for s, c in objective.items():
        j = index[s]
        obj[2 * j] += Fraction(c)
        obj[2 * j + 1] -= Fraction(c)
    return rows, rhs, obj, ncols


def exact_maximize(
    objective: Mapping[Symbol, Fraction],
    constraints: Sequence[LinearConstraint],
) -> ExactLpResult:
    """Exactly maximize ``objective`` subject to ``constraints`` (free vars)."""
    for constraint in constraints:
        if constraint.is_contradiction:
            return ExactLpResult("infeasible")
    constraints = [c for c in constraints if c.coeffs]
    if not constraints:
        if not objective or all(Fraction(c) == 0 for c in objective.values()):
            return ExactLpResult("optimal", Fraction(0))
        return ExactLpResult("unbounded")
    rows, rhs, obj, ncols = _standard_form(objective, constraints)
    nrows = len(rows)
    # Phase 1: add one artificial variable per row (after flipping rows with
    # negative right-hand sides), minimize their sum.
    total_cols = ncols + nrows
    tab_rows: list[list[Fraction]] = []
    tab_rhs: list[Fraction] = []
    basis: list[int] = []
    for i in range(nrows):
        row = list(rows[i])
        b = rhs[i]
        if b < 0:
            row = [-a for a in row]
            b = -b
        row.extend(Fraction(0) for _ in range(nrows))
        row[ncols + i] = Fraction(1)
        tab_rows.append(row)
        tab_rhs.append(b)
        basis.append(ncols + i)
    tableau = _Tableau(tab_rows, tab_rhs, basis)
    phase1_obj = [Fraction(0)] * total_cols
    for i in range(nrows):
        phase1_obj[ncols + i] = Fraction(-1)  # maximize -(sum of artificials)
    status, value = tableau.optimize(phase1_obj, allowed=set(range(total_cols)))
    if status != "optimal" or value < 0:
        return ExactLpResult("infeasible")
    # Drive any artificial variable that is still basic out of the basis.
    for i in range(nrows):
        if tableau.basis[i] >= ncols:
            pivot_col = next(
                (j for j in range(ncols) if tableau.rows[i][j] != 0), None
            )
            if pivot_col is not None:
                tableau.pivot(i, pivot_col)
    # Phase 2: maximize the real objective over structural + slack columns.
    phase2_obj = list(obj) + [Fraction(0)] * nrows
    allowed = set(range(ncols))
    status, value = tableau.optimize(phase2_obj, allowed=allowed)
    if status == "unbounded":
        return ExactLpResult("unbounded")
    return ExactLpResult("optimal", value)


def exact_is_satisfiable(constraints: Sequence[LinearConstraint]) -> bool:
    """Exact rational satisfiability of a constraint system."""
    return not exact_maximize({}, constraints).is_infeasible


def exact_entails(
    constraints: Sequence[LinearConstraint], candidate: LinearConstraint
) -> bool:
    """Exact entailment check ``constraints |= candidate``."""
    if candidate.is_trivial:
        return True
    if candidate.is_contradiction:
        return not exact_is_satisfiable(constraints)
    if candidate.kind is ConstraintKind.EQ:
        le = LinearConstraint.make(candidate.coeff_map, candidate.constant)
        ge = LinearConstraint.make(
            {s: -c for s, c in candidate.coeffs}, -candidate.constant
        )
        return exact_entails(constraints, le) and exact_entails(constraints, ge)
    result = exact_maximize(candidate.coeff_map, constraints)
    if result.is_infeasible:
        return True
    if not result.is_optimal or result.value is None:
        return False
    return result.value <= -candidate.constant
