"""Linear constraints over symbols.

A :class:`LinearConstraint` denotes ``sum_i coeff_i * symbol_i + constant REL 0``
where ``REL`` is ``<=`` or ``==``.  Strict inequalities are soundly weakened to
non-strict ones when converting from formula atoms (the polyhedral domain of
the paper is a closed-convex-set domain, so this loses no precision for the
over-approximation direction the analysis needs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from ..formulas.formula import Atom, AtomKind
from ..formulas.polynomial import Monomial, Polynomial
from ..formulas.symbols import Symbol

__all__ = ["ConstraintKind", "LinearConstraint", "constraint_from_atom"]

_ZERO = Fraction(0)


class ConstraintKind(enum.Enum):
    """Relation of a linear constraint to zero."""

    LE = "<="
    EQ = "=="


@dataclass(frozen=True)
class LinearConstraint:
    """``sum coeffs[s]*s + constant (<=|==) 0`` with exact rational arithmetic."""

    coeffs: tuple[tuple[Symbol, Fraction], ...]
    constant: Fraction
    kind: ConstraintKind

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def make(
        coeffs: Mapping[Symbol, Fraction | int],
        constant: Fraction | int = 0,
        kind: ConstraintKind = ConstraintKind.LE,
    ) -> "LinearConstraint":
        cleaned = tuple(
            sorted(
                ((s, Fraction(c)) for s, c in coeffs.items() if Fraction(c) != 0),
                key=lambda kv: str(kv[0]),
            )
        )
        return LinearConstraint(cleaned, Fraction(constant), kind)

    @staticmethod
    def le(polynomial: Polynomial) -> "LinearConstraint":
        """``polynomial <= 0`` (polynomial must be linear)."""
        return _from_linear_polynomial(polynomial, ConstraintKind.LE)

    @staticmethod
    def eq(polynomial: Polynomial) -> "LinearConstraint":
        """``polynomial == 0`` (polynomial must be linear)."""
        return _from_linear_polynomial(polynomial, ConstraintKind.EQ)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def coeff_map(self) -> dict[Symbol, Fraction]:
        return dict(self.coeffs)

    @property
    def symbols(self) -> frozenset[Symbol]:
        return frozenset(s for s, _ in self.coeffs)

    @property
    def is_trivial(self) -> bool:
        """True when the constraint has no symbols and is satisfied."""
        if self.coeffs:
            return False
        if self.kind is ConstraintKind.LE:
            return self.constant <= 0
        return self.constant == 0

    @property
    def is_contradiction(self) -> bool:
        """True when the constraint has no symbols and is violated."""
        if self.coeffs:
            return False
        if self.kind is ConstraintKind.LE:
            return self.constant > 0
        return self.constant != 0

    def coefficient(self, symbol: Symbol) -> Fraction:
        # Hot query (the projection and simplex layers call it per symbol
        # per constraint); a lazily built lookup table replaces the linear
        # scan.  ``object.__setattr__`` sidesteps the frozen-dataclass guard
        # for what is a pure cache of the ``coeffs`` field.
        try:
            table = self._coefficient_table
        except AttributeError:
            table = dict(self.coeffs)
            object.__setattr__(self, "_coefficient_table", table)
        return table.get(symbol, _ZERO)

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def scale(self, factor: Fraction | int) -> "LinearConstraint":
        """Scale by a factor (must be positive for LE constraints)."""
        factor = Fraction(factor)
        if self.kind is ConstraintKind.LE and factor <= 0:
            raise ValueError("LE constraints may only be scaled by positive factors")
        return LinearConstraint.make(
            {s: c * factor for s, c in self.coeffs}, self.constant * factor, self.kind
        )

    def add(self, other: "LinearConstraint") -> "LinearConstraint":
        """Sum of two constraints (LE + LE = LE, EQ + EQ = EQ, mixed = LE)."""
        coeffs = self.coeff_map
        for s, c in other.coeffs:
            coeffs[s] = coeffs.get(s, Fraction(0)) + c
        kind = (
            ConstraintKind.EQ
            if self.kind is ConstraintKind.EQ and other.kind is ConstraintKind.EQ
            else ConstraintKind.LE
        )
        return LinearConstraint.make(coeffs, self.constant + other.constant, kind)

    def normalize(self) -> "LinearConstraint":
        """Divide through by the gcd-like scale so the leading coefficient is 1/-1."""
        if not self.coeffs:
            return self
        lead = abs(self.coeffs[0][1])
        if lead == 0 or lead == 1:
            return self
        if self.kind is ConstraintKind.EQ:
            return LinearConstraint.make(
                {s: c / lead for s, c in self.coeffs}, self.constant / lead, self.kind
            )
        return self.scale(Fraction(1) / lead)

    def to_polynomial(self) -> Polynomial:
        """The linear polynomial ``sum coeffs*sym + constant``."""
        poly = Polynomial.constant(self.constant)
        for s, c in self.coeffs:
            poly = poly + Polynomial({Monomial.of(s): c})
        return poly

    def to_atom(self) -> Atom:
        """The corresponding formula atom."""
        kind = AtomKind.LE if self.kind is ConstraintKind.LE else AtomKind.EQ
        return Atom(self.to_polynomial(), kind)

    def rename(self, mapping: Mapping[Symbol, Symbol]) -> "LinearConstraint":
        coeffs: dict[Symbol, Fraction] = {}
        for s, c in self.coeffs:
            target = mapping.get(s, s)
            coeffs[target] = coeffs.get(target, Fraction(0)) + c
        return LinearConstraint.make(coeffs, self.constant, self.kind)

    def evaluate(self, assignment: Mapping[Symbol, Fraction | int]) -> bool:
        value = self.constant
        for s, c in self.coeffs:
            value += c * Fraction(assignment[s])
        if self.kind is ConstraintKind.LE:
            return value <= 0
        return value == 0

    def __str__(self) -> str:
        lhs = " + ".join(f"{c}*{s}" for s, c in self.coeffs) or "0"
        return f"{lhs} + {self.constant} {self.kind.value} 0"


def _from_linear_polynomial(
    polynomial: Polynomial, kind: ConstraintKind
) -> LinearConstraint:
    if not polynomial.is_linear:
        raise ValueError(f"polynomial {polynomial} is not linear")
    linear, constant, _ = polynomial.split_linear()
    return LinearConstraint.make(linear, constant, kind)


def constraint_from_atom(atom: Atom) -> LinearConstraint:
    """Convert a *linear* atom to a constraint, weakening ``<`` to ``<=``."""
    if atom.kind is AtomKind.EQ:
        return LinearConstraint.eq(atom.polynomial)
    return LinearConstraint.le(atom.polynomial)
