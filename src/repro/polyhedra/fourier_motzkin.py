"""Quantifier elimination for linear constraints (Fourier–Motzkin).

Polyhedral projection is the work-horse of the convex-hull algorithm (Alg. 1
in the paper, line 4: ``project(Q, X)``).  The implementation here eliminates
one symbol at a time:

* a symbol defined by an *equality* constraint is eliminated by Gaussian
  substitution (cheap, exact, and by far the most common case because
  transition-formula composition introduces mid-state symbols that are defined
  by assignment equalities);
* otherwise classic Fourier–Motzkin combination of the positive and negative
  occurrences is used.

Derived constraints carry their **history**: the set of input constraints
they descend from, together with the set of symbols eliminated along their
derivation.  Imbert's first acceleration theorem states that a derived
inequality whose history contains more than ``1 + #eliminated`` input
constraints is redundant — implied by the other constraints the algorithm
keeps — so such combinations are dropped *at generation time*, before they
can feed the quadratic blow-up of later elimination steps or trigger an
LP-based minimization pass.  The pruning is exact: it removes only redundant
rows, so the projection's solution set is unchanged.

After each elimination step syntactically redundant constraints are removed;
when the constraint count still grows beyond a threshold an LP-based
minimization pass prunes semantically redundant constraints to keep the
blow-up bounded.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from ..formulas.symbols import Symbol
from . import cache as memo
from .constraint import ConstraintKind, LinearConstraint
from . import lp

__all__ = ["eliminate", "minimize_constraints", "MINIMIZE_THRESHOLD"]

#: When more than this many constraints accumulate during elimination, run an
#: LP-based redundancy-removal pass.
MINIMIZE_THRESHOLD = 120

#: Hard cap after which elimination falls back to dropping the constraints
#: that mention the symbol (a sound over-approximation of the projection).
BLOWUP_LIMIT = 600

#: Memo tables keyed on canonicalised systems: identical projections recur
#: constantly (the hull re-eliminates equal lifted systems whenever a join
#: is revisited, and fresh-symbol indices never hit a key twice without the
#: canonical renaming).
_PROJECTION_CACHE = memo.register_cache("fm.eliminate", persistent=True)
_MINIMIZE_CACHE = memo.register_cache("fm.minimize", persistent=True)


class _Tracked:
    """One constraint plus its Imbert derivation history.

    ``history`` is a bitmask over the input-constraint indices the row
    descends from; ``eliminated`` is a bitmask over the symbols officially
    eliminated along its derivation.  Imbert's first acceleration theorem:
    an inequality with ``popcount(history) > 1 + popcount(eliminated)`` is
    redundant and may be dropped without changing the projection.  Bitmasks
    keep the per-combination cost to two integer ORs and two popcounts.
    """

    __slots__ = ("constraint", "history", "eliminated")

    def __init__(self, constraint: LinearConstraint, history: int, eliminated: int):
        self.constraint = constraint
        self.history = history
        self.eliminated = eliminated

    def replaced(self, constraint: LinearConstraint) -> "_Tracked":
        return _Tracked(constraint, self.history, self.eliminated)


def _imbert_redundant(history: int, eliminated: int) -> bool:
    return history.bit_count() > 1 + eliminated.bit_count()


def eliminate(
    constraints: Sequence[LinearConstraint],
    symbols: Iterable[Symbol],
    minimize_threshold: int = MINIMIZE_THRESHOLD,
) -> list[LinearConstraint]:
    """Project the constraint system onto the complement of ``symbols``.

    Returns a system over the remaining symbols whose solution set is exactly
    the projection (or, if the blow-up cap was hit, a sound over-approximation
    of it).  Contradictory systems are returned as a single ``1 <= 0``
    constraint so callers can detect emptiness syntactically.

    The computation is memoized on the canonicalised (renamed, sorted)
    system, so both the cached and the uncached path run the elimination on
    the canonical form: hits and misses return identical constraint lists.
    """
    current = _clean([c for c in constraints])
    if current is None:
        return [_contradiction()]
    targets = [
        s
        for s in dict.fromkeys(symbols)
        if any(c.coefficient(s) != 0 for c in current)
    ]
    if not targets:
        return current
    canonical, extras, _, inverse = memo.canonical_system(current, targets)
    key = (canonical, extras, minimize_threshold)
    projected = _PROJECTION_CACHE.lookup(
        key,
        lambda: tuple(
            _eliminate_core(list(canonical), list(extras), minimize_threshold)
        ),
    )
    return [c.rename(inverse) for c in projected]


def _eliminate_core(
    current: list[LinearConstraint],
    remaining: list[Symbol],
    minimize_threshold: int,
) -> list[LinearConstraint]:
    tracked = [_Tracked(c, 1 << i, 0) for i, c in enumerate(current)]
    symbol_bits = {s: 1 << i for i, s in enumerate(remaining)}
    while remaining:
        symbol = _pick_symbol([t.constraint for t in tracked], remaining)
        remaining.remove(symbol)
        if not any(t.constraint.coefficient(symbol) != 0 for t in tracked):
            continue
        tracked = _eliminate_one(tracked, symbol, symbol_bits[symbol])
        tracked = _clean_tracked(tracked)
        if tracked is None:
            return [_contradiction()]
        if len(tracked) > minimize_threshold:
            tracked = _minimize_tracked(tracked)
    return [t.constraint for t in tracked]


def _contradiction() -> LinearConstraint:
    return LinearConstraint.make({}, Fraction(1), ConstraintKind.LE)


def _pick_symbol(
    constraints: Sequence[LinearConstraint], candidates: Sequence[Symbol]
) -> Symbol:
    """Choose the cheapest symbol to eliminate next.

    Symbols defined by an equality are preferred (cost 0); otherwise the
    symbol minimizing ``#positive * #negative`` inequality occurrences.
    """
    best = None
    best_cost = None
    for symbol in candidates:
        pos = neg = 0
        has_eq = False
        for constraint in constraints:
            coeff = constraint.coefficient(symbol)
            if coeff == 0:
                continue
            if constraint.kind is ConstraintKind.EQ:
                has_eq = True
                break
            if coeff > 0:
                pos += 1
            else:
                neg += 1
        cost = -1 if has_eq else pos * neg
        if best_cost is None or cost < best_cost:
            best, best_cost = symbol, cost
            if cost == -1:
                break
    assert best is not None
    return best


def _eliminate_one(
    tracked: Sequence[_Tracked], symbol: Symbol, symbol_bit: int
) -> list[_Tracked]:
    equality = next(
        (
            t
            for t in tracked
            if t.constraint.kind is ConstraintKind.EQ
            and t.constraint.coefficient(symbol) != 0
        ),
        None,
    )
    if equality is not None:
        return _substitute_equality(tracked, symbol, symbol_bit, equality)
    return _fourier_motzkin_step(tracked, symbol, symbol_bit)


def _substitute_equality(
    tracked: Sequence[_Tracked],
    symbol: Symbol,
    symbol_bit: int,
    equality: _Tracked,
) -> list[_Tracked]:
    """Eliminate ``symbol`` using ``equality`` by Gaussian substitution.

    Substitution is the Fourier combination of each row with the (directed)
    equality, so derived rows union the equality's history and count
    ``symbol`` as eliminated; inequality rows whose history then exceeds
    Imbert's bound are redundant and dropped.
    """
    eq_constraint = equality.constraint
    coeff = eq_constraint.coefficient(symbol)
    result: list[_Tracked] = []
    for t in tracked:
        if t is equality:
            continue
        constraint = t.constraint
        c = constraint.coefficient(symbol)
        if c == 0:
            result.append(t)
            continue
        history = t.history | equality.history
        eliminated = t.eliminated | equality.eliminated | symbol_bit
        if constraint.kind is ConstraintKind.LE and _imbert_redundant(
            history, eliminated
        ):
            continue
        # constraint - (c / coeff) * equality removes the symbol.
        factor = c / coeff
        coeffs = constraint.coeff_map
        for s, e in eq_constraint.coeffs:
            coeffs[s] = coeffs.get(s, Fraction(0)) - factor * e
        constant = constraint.constant - factor * eq_constraint.constant
        result.append(
            _Tracked(
                LinearConstraint.make(coeffs, constant, constraint.kind),
                history,
                eliminated,
            )
        )
    return result


def _fourier_motzkin_step(
    tracked: Sequence[_Tracked], symbol: Symbol, symbol_bit: int
) -> list[_Tracked]:
    """One Fourier–Motzkin elimination step for ``symbol``, Imbert-pruned."""
    positives: list[_Tracked] = []
    negatives: list[_Tracked] = []
    untouched: list[_Tracked] = []
    for t in tracked:
        coeff = t.constraint.coefficient(symbol)
        if coeff == 0:
            untouched.append(t)
        elif coeff > 0:
            positives.append(t)
        else:
            negatives.append(t)
    if len(positives) * len(negatives) + len(untouched) > BLOWUP_LIMIT:
        # Sound fallback: forget every constraint that mentions the symbol.
        return untouched
    result = untouched
    for pos in positives:
        cp = pos.constraint.coefficient(symbol)
        for neg in negatives:
            history = pos.history | neg.history
            eliminated = pos.eliminated | neg.eliminated | symbol_bit
            if _imbert_redundant(history, eliminated):
                # Imbert's acceleration theorem: this combination is implied
                # by the surviving rows — skip it before it is even built.
                continue
            cn = neg.constraint.coefficient(symbol)
            combined = pos.constraint.scale(-cn).add(neg.constraint.scale(cp))
            # The symbol cancels by construction; guard against Fraction noise.
            coeffs = {s: c for s, c in combined.coeffs if s != symbol}
            result.append(
                _Tracked(
                    LinearConstraint.make(
                        coeffs, combined.constant, ConstraintKind.LE
                    ),
                    history,
                    eliminated,
                )
            )
    return result


def _clean(
    constraints: Sequence[LinearConstraint],
) -> list[LinearConstraint] | None:
    """Drop trivial/duplicate/dominated constraints; None on contradiction.

    Besides syntactic subsumption (same left-hand side, keep the tighter
    constant) this propagates single-symbol bounds: a crossed lower/upper
    pair proves the whole system empty before any LP or combination step
    runs on it.
    """
    seen: dict[tuple, LinearConstraint] = {}
    for constraint in constraints:
        if constraint.is_contradiction:
            return None
        if constraint.is_trivial:
            continue
        normalized = constraint.normalize()
        key = (normalized.coeffs, normalized.kind)
        existing = seen.get(key)
        if existing is None:
            seen[key] = normalized
        elif normalized.kind is ConstraintKind.LE:
            # Same left-hand side: keep the tighter constant.
            if normalized.constant > existing.constant:
                seen[key] = normalized
        else:
            if normalized.constant != existing.constant:
                return None
    result = list(seen.values())
    if lp.interval_contradiction(result):
        return None
    return result


def _clean_tracked(tracked: Sequence[_Tracked]) -> list[_Tracked] | None:
    """History-carrying variant of :func:`_clean` (same kept constraints).

    When one normalized constraint arises from several derivations the
    smallest history is kept — every derivation is a genuine one, and a
    smaller history keeps the row safe from Imbert pruning longer.
    """
    seen: dict[tuple, _Tracked] = {}
    for t in tracked:
        constraint = t.constraint
        if constraint.is_contradiction:
            return None
        if constraint.is_trivial:
            continue
        normalized = constraint.normalize()
        key = (normalized.coeffs, normalized.kind)
        existing = seen.get(key)
        if existing is None:
            seen[key] = t.replaced(normalized)
        elif normalized.kind is ConstraintKind.LE:
            if normalized.constant > existing.constraint.constant:
                seen[key] = t.replaced(normalized)
            elif (
                normalized.constant == existing.constraint.constant
                and t.history.bit_count() < existing.history.bit_count()
            ):
                seen[key] = t.replaced(normalized)
        else:
            if normalized.constant != existing.constraint.constant:
                return None
            if t.history.bit_count() < existing.history.bit_count():
                seen[key] = t.replaced(normalized)
    result = list(seen.values())
    if lp.interval_contradiction([t.constraint for t in result]):
        return None
    return result


def _minimize_tracked(tracked: Sequence[_Tracked]) -> list[_Tracked]:
    """LP-minimize the constraints of ``tracked``, re-attaching histories.

    Rows removed by the LP pass simply disappear; surviving rows keep the
    (smallest) history of the derivation that produced them.  A row the LP
    pass *rewrote* (it never does today) would fall back to an empty
    history, which Imbert's bound can never prune — the sound default.
    """
    best: dict[LinearConstraint, _Tracked] = {}
    for t in tracked:
        existing = best.get(t.constraint)
        if existing is None or t.history.bit_count() < existing.history.bit_count():
            best[t.constraint] = t
    minimized = minimize_constraints([t.constraint for t in tracked])
    return [best.get(c) or _Tracked(c, 0, 0) for c in minimized]


def minimize_constraints(
    constraints: Sequence[LinearConstraint],
) -> list[LinearConstraint]:
    """Remove constraints entailed by the remaining ones (LP-based).

    Memoized on the canonicalised system; the entailment queries themselves
    are additionally memoized in the LP layer, so re-minimizing a system
    that grew by a few constraints only pays for the new queries.
    """
    cleaned = _clean(constraints)
    if cleaned is None:
        return [_contradiction()]
    if len(cleaned) <= 1:
        return cleaned
    canonical, _, _, inverse = memo.canonical_system(cleaned)
    minimized = _MINIMIZE_CACHE.lookup(
        canonical, lambda: tuple(_minimize_core(list(canonical)))
    )
    return [c.rename(inverse) for c in minimized]


def _minimize_core(
    kept: list[LinearConstraint],
) -> list[LinearConstraint]:
    index = 0
    while index < len(kept):
        candidate = kept[index]
        rest = kept[:index] + kept[index + 1 :]
        if rest and lp.entails(rest, candidate):
            kept = rest
        else:
            index += 1
    return kept
