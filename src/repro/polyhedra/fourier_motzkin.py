"""Quantifier elimination for linear constraints (Fourier–Motzkin).

Polyhedral projection is the work-horse of the convex-hull algorithm (Alg. 1
in the paper, line 4: ``project(Q, X)``).  The implementation here eliminates
one symbol at a time:

* a symbol defined by an *equality* constraint is eliminated by Gaussian
  substitution (cheap, exact, and by far the most common case because
  transition-formula composition introduces mid-state symbols that are defined
  by assignment equalities);
* otherwise classic Fourier–Motzkin combination of the positive and negative
  occurrences is used.

After each elimination step syntactically redundant constraints are removed;
when the constraint count grows beyond a threshold an LP-based minimization
pass prunes semantically redundant constraints to keep the blow-up bounded.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from ..formulas.symbols import Symbol
from . import cache as memo
from .constraint import ConstraintKind, LinearConstraint
from . import lp

__all__ = ["eliminate", "minimize_constraints", "MINIMIZE_THRESHOLD"]

#: When more than this many constraints accumulate during elimination, run an
#: LP-based redundancy-removal pass.
MINIMIZE_THRESHOLD = 120

#: Hard cap after which elimination falls back to dropping the constraints
#: that mention the symbol (a sound over-approximation of the projection).
BLOWUP_LIMIT = 600

#: Memo tables keyed on canonicalised systems: identical projections recur
#: constantly (the hull re-eliminates equal lifted systems whenever a join
#: is revisited, and fresh-symbol indices never hit a key twice without the
#: canonical renaming).
_PROJECTION_CACHE = memo.register_cache("fm.eliminate")
_MINIMIZE_CACHE = memo.register_cache("fm.minimize")


def eliminate(
    constraints: Sequence[LinearConstraint],
    symbols: Iterable[Symbol],
    minimize_threshold: int = MINIMIZE_THRESHOLD,
) -> list[LinearConstraint]:
    """Project the constraint system onto the complement of ``symbols``.

    Returns a system over the remaining symbols whose solution set is exactly
    the projection (or, if the blow-up cap was hit, a sound over-approximation
    of it).  Contradictory systems are returned as a single ``1 <= 0``
    constraint so callers can detect emptiness syntactically.

    The computation is memoized on the canonicalised (renamed, sorted)
    system, so both the cached and the uncached path run the elimination on
    the canonical form: hits and misses return identical constraint lists.
    """
    current = _clean([c for c in constraints])
    if current is None:
        return [_contradiction()]
    targets = [
        s
        for s in dict.fromkeys(symbols)
        if any(c.coefficient(s) != 0 for c in current)
    ]
    if not targets:
        return current
    canonical, extras, _, inverse = memo.canonical_system(current, targets)
    key = (canonical, extras, minimize_threshold)
    projected = _PROJECTION_CACHE.lookup(
        key,
        lambda: tuple(
            _eliminate_core(list(canonical), list(extras), minimize_threshold)
        ),
    )
    return [c.rename(inverse) for c in projected]


def _eliminate_core(
    current: list[LinearConstraint],
    remaining: list[Symbol],
    minimize_threshold: int,
) -> list[LinearConstraint]:
    while remaining:
        symbol = _pick_symbol(current, remaining)
        remaining.remove(symbol)
        if not any(c.coefficient(symbol) != 0 for c in current):
            continue
        current = _eliminate_one(current, symbol)
        cleaned = _clean(current)
        if cleaned is None:
            return [_contradiction()]
        current = cleaned
        if len(current) > minimize_threshold:
            current = minimize_constraints(current)
    return current


def _contradiction() -> LinearConstraint:
    return LinearConstraint.make({}, Fraction(1), ConstraintKind.LE)


def _pick_symbol(
    constraints: Sequence[LinearConstraint], candidates: Sequence[Symbol]
) -> Symbol:
    """Choose the cheapest symbol to eliminate next.

    Symbols defined by an equality are preferred (cost 0); otherwise the
    symbol minimizing ``#positive * #negative`` inequality occurrences.
    """
    best = None
    best_cost = None
    for symbol in candidates:
        pos = neg = 0
        has_eq = False
        for constraint in constraints:
            coeff = constraint.coefficient(symbol)
            if coeff == 0:
                continue
            if constraint.kind is ConstraintKind.EQ:
                has_eq = True
                break
            if coeff > 0:
                pos += 1
            else:
                neg += 1
        cost = -1 if has_eq else pos * neg
        if best_cost is None or cost < best_cost:
            best, best_cost = symbol, cost
            if cost == -1:
                break
    assert best is not None
    return best


def _eliminate_one(
    constraints: Sequence[LinearConstraint], symbol: Symbol
) -> list[LinearConstraint]:
    equality = next(
        (
            c
            for c in constraints
            if c.kind is ConstraintKind.EQ and c.coefficient(symbol) != 0
        ),
        None,
    )
    if equality is not None:
        return _substitute_equality(constraints, symbol, equality)
    return _fourier_motzkin_step(constraints, symbol)


def _substitute_equality(
    constraints: Sequence[LinearConstraint],
    symbol: Symbol,
    equality: LinearConstraint,
) -> list[LinearConstraint]:
    """Eliminate ``symbol`` using ``equality`` by Gaussian substitution."""
    coeff = equality.coefficient(symbol)
    result: list[LinearConstraint] = []
    for constraint in constraints:
        if constraint is equality:
            continue
        c = constraint.coefficient(symbol)
        if c == 0:
            result.append(constraint)
            continue
        # constraint - (c / coeff) * equality removes the symbol.
        factor = c / coeff
        coeffs = constraint.coeff_map
        for s, e in equality.coeffs:
            coeffs[s] = coeffs.get(s, Fraction(0)) - factor * e
        constant = constraint.constant - factor * equality.constant
        result.append(LinearConstraint.make(coeffs, constant, constraint.kind))
    return result


def _fourier_motzkin_step(
    constraints: Sequence[LinearConstraint], symbol: Symbol
) -> list[LinearConstraint]:
    """One classic Fourier–Motzkin elimination step for ``symbol``."""
    positives: list[LinearConstraint] = []
    negatives: list[LinearConstraint] = []
    untouched: list[LinearConstraint] = []
    for constraint in constraints:
        coeff = constraint.coefficient(symbol)
        if coeff == 0:
            untouched.append(constraint)
        elif coeff > 0:
            positives.append(constraint)
        else:
            negatives.append(constraint)
    if len(positives) * len(negatives) + len(untouched) > BLOWUP_LIMIT:
        # Sound fallback: forget every constraint that mentions the symbol.
        return untouched
    result = untouched
    for pos in positives:
        cp = pos.coefficient(symbol)
        for neg in negatives:
            cn = neg.coefficient(symbol)
            combined = pos.scale(-cn).add(neg.scale(cp))
            # The symbol cancels by construction; guard against Fraction noise.
            coeffs = {s: c for s, c in combined.coeffs if s != symbol}
            result.append(
                LinearConstraint.make(coeffs, combined.constant, ConstraintKind.LE)
            )
    return result


def _clean(
    constraints: Sequence[LinearConstraint],
) -> list[LinearConstraint] | None:
    """Drop trivial/duplicate/dominated constraints; None on contradiction.

    Besides syntactic subsumption (same left-hand side, keep the tighter
    constant) this propagates single-symbol bounds: a crossed lower/upper
    pair proves the whole system empty before any LP or combination step
    runs on it.
    """
    seen: dict[tuple, LinearConstraint] = {}
    for constraint in constraints:
        if constraint.is_contradiction:
            return None
        if constraint.is_trivial:
            continue
        normalized = constraint.normalize()
        key = (normalized.coeffs, normalized.kind)
        existing = seen.get(key)
        if existing is None:
            seen[key] = normalized
        elif normalized.kind is ConstraintKind.LE:
            # Same left-hand side: keep the tighter constant.
            if normalized.constant > existing.constant:
                seen[key] = normalized
        else:
            if normalized.constant != existing.constant:
                return None
    result = list(seen.values())
    if lp.interval_contradiction(result):
        return None
    return result


def minimize_constraints(
    constraints: Sequence[LinearConstraint],
) -> list[LinearConstraint]:
    """Remove constraints entailed by the remaining ones (LP-based).

    Memoized on the canonicalised system; the entailment queries themselves
    are additionally memoized in the LP layer, so re-minimizing a system
    that grew by a few constraints only pays for the new queries.
    """
    cleaned = _clean(constraints)
    if cleaned is None:
        return [_contradiction()]
    if len(cleaned) <= 1:
        return cleaned
    canonical, _, _, inverse = memo.canonical_system(cleaned)
    minimized = _MINIMIZE_CACHE.lookup(
        canonical, lambda: tuple(_minimize_core(list(canonical)))
    )
    return [c.rename(inverse) for c in minimized]


def _minimize_core(
    kept: list[LinearConstraint],
) -> list[LinearConstraint]:
    index = 0
    while index < len(kept):
        candidate = kept[index]
        rest = kept[:index] + kept[index + 1 :]
        if rest and lp.entails(rest, candidate):
            kept = rest
        else:
            index += 1
    return kept
