"""Convex hull (polyhedral join) of unions of polyhedra.

The paper's Alg. 1 computes the convex hull of a formula by joining the
projections of its DNF cubes with the polyhedral join operator ``⊔``.  Two
implementations of the join are provided:

* :func:`convex_hull_pair` — the *exact* closed convex hull of two polyhedra,
  computed with the classic lifted construction of Benoy, King and Mesnard:
  a point ``x`` is in ``cl conv(P ∪ Q)`` iff there are ``y`` and
  ``σ ∈ [0, 1]`` with ``y ∈ σ·P`` and ``x − y ∈ (1−σ)·Q`` (homogenized
  constraints); the auxiliary variables are then eliminated by
  Fourier–Motzkin.
* :func:`weak_join` — a cheaper, sound over-approximation that keeps exactly
  the constraints of either argument that the other argument entails.  It is
  used as a fallback when the exact construction would blow up, and is also
  exposed separately so the ablation benchmark can measure its effect.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..formulas.symbols import Symbol, fresh
from .constraint import ConstraintKind, LinearConstraint
from . import fourier_motzkin
from .polyhedron import Polyhedron

__all__ = ["convex_hull_pair", "convex_hull", "weak_join", "EXACT_HULL_MAX_DIMENSION"]

#: Above this many dimensions the exact lifted construction is skipped in
#: favour of :func:`weak_join` (Fourier–Motzkin cost grows quickly with the
#: number of auxiliary variables to eliminate).
EXACT_HULL_MAX_DIMENSION = 14

#: If either argument has more than this many constraints, fall back to the
#: weak join.
EXACT_HULL_MAX_CONSTRAINTS = 48


def weak_join(first: Polyhedron, second: Polyhedron) -> Polyhedron:
    """Sound join: constraints of either polyhedron entailed by the other."""
    if first.is_empty():
        return second
    if second.is_empty():
        return first

    def entailed_by(polyhedron: Polyhedron, syntactic: frozenset):
        def check(constraint: LinearConstraint) -> bool:
            # Syntactic subsumption first: a constraint the other argument
            # states verbatim (up to normalization) needs no LP call.
            normalized = constraint.normalize()
            if (normalized.coeffs, normalized.constant, normalized.kind) in syntactic:
                return True
            return polyhedron.entails(constraint)

        return check

    def syntactic_forms(polyhedron: Polyhedron) -> frozenset:
        forms = set()
        for constraint in polyhedron.constraints:
            normalized = constraint.normalize()
            forms.add((normalized.coeffs, normalized.constant, normalized.kind))
        return frozenset(forms)

    in_second = entailed_by(second, syntactic_forms(second))
    in_first = entailed_by(first, syntactic_forms(first))
    kept: list[LinearConstraint] = []
    for constraint in first.constraints:
        if constraint.kind is ConstraintKind.EQ:
            # Split equalities so that one-sided halves can survive the join.
            le = LinearConstraint.make(constraint.coeff_map, constraint.constant)
            ge = LinearConstraint.make(
                {s: -c for s, c in constraint.coeffs}, -constraint.constant
            )
            for half in (le, ge):
                if in_second(half):
                    kept.append(half)
        elif in_second(constraint):
            kept.append(constraint)
    for constraint in second.constraints:
        if constraint.kind is ConstraintKind.EQ:
            le = LinearConstraint.make(constraint.coeff_map, constraint.constant)
            ge = LinearConstraint.make(
                {s: -c for s, c in constraint.coeffs}, -constraint.constant
            )
            for half in (le, ge):
                if in_first(half):
                    kept.append(half)
        elif in_first(constraint):
            kept.append(constraint)
    return Polyhedron(kept).minimize()


def convex_hull_pair(first: Polyhedron, second: Polyhedron) -> Polyhedron:
    """Closed convex hull of the union of two polyhedra.

    Falls back to :func:`weak_join` when the lifted construction would be too
    large; the fallback is a sound over-approximation of the hull.
    """
    if first.is_empty():
        return second
    if second.is_empty():
        return first
    if first.is_universe or second.is_universe:
        return Polyhedron.universe()
    symbols = sorted(first.symbols | second.symbols, key=str)
    if (
        len(symbols) > EXACT_HULL_MAX_DIMENSION
        or len(first.constraints) > EXACT_HULL_MAX_CONSTRAINTS
        or len(second.constraints) > EXACT_HULL_MAX_CONSTRAINTS
    ):
        return weak_join(first, second)

    sigma = fresh("hull_sigma")
    shadow = {s: fresh(f"hull_{s.name}") for s in symbols}

    lifted: list[LinearConstraint] = []
    # Homogenized copy of `first` over (shadow, sigma):  A*y + b*sigma <= 0.
    for constraint in first.constraints:
        coeffs: dict[Symbol, Fraction] = {}
        for s, c in constraint.coeffs:
            coeffs[shadow[s]] = coeffs.get(shadow[s], Fraction(0)) + c
        coeffs[sigma] = coeffs.get(sigma, Fraction(0)) + constraint.constant
        lifted.append(LinearConstraint.make(coeffs, Fraction(0), constraint.kind))
    # Homogenized copy of `second` over (x - y, 1 - sigma):
    #   A*(x - y) + b*(1 - sigma) <= 0.
    for constraint in second.constraints:
        coeffs = {}
        for s, c in constraint.coeffs:
            coeffs[s] = coeffs.get(s, Fraction(0)) + c
            coeffs[shadow[s]] = coeffs.get(shadow[s], Fraction(0)) - c
        coeffs[sigma] = coeffs.get(sigma, Fraction(0)) - constraint.constant
        lifted.append(
            LinearConstraint.make(coeffs, constraint.constant, constraint.kind)
        )
    # 0 <= sigma <= 1.
    lifted.append(LinearConstraint.make({sigma: Fraction(-1)}, Fraction(0)))
    lifted.append(LinearConstraint.make({sigma: Fraction(1)}, Fraction(-1)))

    eliminated = fourier_motzkin.eliminate(
        lifted, [sigma, *shadow.values()]
    )
    hull = Polyhedron(eliminated).minimize()
    if hull.is_empty():
        # Numerical or blow-up fallback; the hull of two non-empty polyhedra
        # is never empty, so trust the weak join instead.
        return weak_join(first, second)
    return hull


def convex_hull(polyhedra: Sequence[Polyhedron]) -> Polyhedron:
    """Hull of several polyhedra, folded pairwise (hull is associative)."""
    if not polyhedra:
        return Polyhedron.empty()
    result = polyhedra[0]
    for polyhedron in polyhedra[1:]:
        result = convex_hull_pair(result, polyhedron)
    return result
