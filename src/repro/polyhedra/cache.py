"""Content-keyed memoization for the polyhedral hot path.

The convex-hull procedure (Alg. 1) re-projects and re-checks near-identical
constraint systems constantly: ``minimize_constraints`` asks one entailment
query per kept constraint per pass, cube enumeration asks the same
satisfiability question for structurally equal cubes, and hull construction
re-eliminates the same lifted systems whenever a join is revisited.  This
module provides small in-process memo tables for those pure queries, keyed on
a *canonicalised* form of the constraint system: symbols are renamed to
positional placeholders (in sorted order) and constraints are sorted, so two
systems that differ only in fresh-symbol indices or constraint order share
one cache entry — mirroring the content-addressed design of the engine's
on-disk result cache.

The tables are bounded (FIFO eviction) and process-local; batch-engine
workers fork with empty-to-warm parent tables and diverge independently,
which cannot change any result because every memoized query is a pure
function of its canonical key.
"""

from __future__ import annotations

import contextlib
from collections import OrderedDict
from typing import Callable, Hashable, Iterable, Iterator, Sequence

from ..formulas.symbols import Symbol
from .constraint import LinearConstraint

__all__ = [
    "MemoCache",
    "canonical_key",
    "canonical_system",
    "clear_caches",
    "cache_stats",
    "keep_warm",
    "register_cache",
]

#: Default per-table entry cap.  Projection results are small (a list of
#: constraints); a few thousand entries is a handful of megabytes.
DEFAULT_CAPACITY = 4096

_REGISTRY: dict[str, "MemoCache"] = {}


class MemoCache:
    """A bounded FIFO memo table with hit/miss counters."""

    __slots__ = ("name", "capacity", "_entries", "hits", "misses")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY):
        self.name = name
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, key: Hashable, compute: Callable[[], object]) -> object:
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            value = compute()
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return value
        self.hits += 1
        return value

    def contains(self, key: Hashable) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }


def register_cache(name: str, capacity: int = DEFAULT_CAPACITY) -> MemoCache:
    """Create (or fetch) the named memo table in the module registry."""
    cache = _REGISTRY.get(name)
    if cache is None:
        cache = MemoCache(name, capacity)
        _REGISTRY[name] = cache
    return cache


#: Depth of active :func:`keep_warm` scopes; non-zero suppresses clearing.
_WARM_DEPTH = 0


def clear_caches(force: bool = False) -> None:
    """Empty every registered memo table (between tasks, and in tests).

    Inside a :func:`keep_warm` scope this is a no-op unless ``force`` is
    given, so code written for cold-per-task semantics (the batch engine's
    :func:`~repro.engine.tasks.execute_task`) can run unchanged in a warm
    worker without dropping its tables.
    """
    if _WARM_DEPTH and not force:
        return
    for cache in _REGISTRY.values():
        cache.clear()


@contextlib.contextmanager
def keep_warm() -> Iterator[None]:
    """Persistence hook for long-lived workers: keep memo tables across tasks.

    While the scope is active, :func:`clear_caches` keeps the tables (they
    stay bounded by their FIFO capacity, so a warm worker cannot grow them
    without limit).  Memoized queries are pure functions of their canonical
    keys, so a warm table changes latency, never results.
    """
    global _WARM_DEPTH
    _WARM_DEPTH += 1
    try:
        yield
    finally:
        _WARM_DEPTH -= 1


def cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss/entry counters of every registered table."""
    return {name: cache.stats() for name, cache in sorted(_REGISTRY.items())}


# ---------------------------------------------------------------------- #
# Canonicalisation
# ---------------------------------------------------------------------- #
def canonical_system(
    constraints: Sequence[LinearConstraint],
    extra_symbols: Iterable[Symbol] = (),
) -> tuple[
    tuple[LinearConstraint, ...],
    tuple[Symbol, ...],
    dict[Symbol, Symbol],
    dict[Symbol, Symbol],
]:
    """Rename a constraint system to canonical positional symbols.

    Returns ``(canonical_constraints, canonical_extras, forward, inverse)``
    where ``forward`` maps original symbols to placeholders and ``inverse``
    maps back.

    The renaming is **order-isomorphic**: placeholders are assigned in the
    symbols' string order and their zero-padded names sort the same way, and
    constraint order is preserved.  An algorithm whose output depends on
    symbol ordering or constraint ordering (Fourier–Motzkin's pivot choice,
    greedy minimization, ``normalize``'s leading coefficient) therefore
    computes *exactly* the renaming of what it would compute on the original
    system — so memoizing on the canonical form cannot change any result,
    it only lets systems differing in fresh-symbol indices share entries.
    """
    symbols = sorted(
        {s for c in constraints for s in c.symbols} | set(extra_symbols), key=str
    )
    forward = {s: Symbol(f"_cv{i:05d}") for i, s in enumerate(symbols)}
    inverse = {v: k for k, v in forward.items()}
    canonical = tuple(c.rename(forward) for c in constraints)
    extras = tuple(forward[s] for s in dict.fromkeys(extra_symbols))
    return canonical, extras, forward, inverse


def canonical_key(
    constraints: Sequence[LinearConstraint],
    extra_symbols: Iterable[Symbol] = (),
) -> tuple:
    """A hashable, order-insensitive content key for a *semantic* query.

    Constraints are additionally sorted, so permutations of one system share
    a key.  Only use this for queries whose answer is a pure function of the
    solution set (satisfiability, entailment) — not for computations whose
    syntactic output depends on constraint order.
    """
    canonical, extras, _, _ = canonical_system(constraints, extra_symbols)
    return (
        tuple(sorted(canonical, key=lambda c: (c.coeffs, c.constant, c.kind.value))),
        tuple(sorted(extras, key=str)),
    )


def entailment_key(
    constraints: Sequence[LinearConstraint], candidate: LinearConstraint
) -> tuple:
    """A content key for an entailment query ``constraints |= candidate``.

    The candidate is renamed with the same symbol map as the system but kept
    separate in the key (it is the query, not part of the system).
    """
    canonical, _, forward, _ = canonical_system(
        constraints, candidate.symbols
    )
    ordered = tuple(
        sorted(canonical, key=lambda c: (c.coeffs, c.constant, c.kind.value))
    )
    return (ordered, candidate.rename(forward))
