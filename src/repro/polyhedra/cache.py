"""Content-keyed memoization for the polyhedral hot path.

The convex-hull procedure (Alg. 1) re-projects and re-checks near-identical
constraint systems constantly: ``minimize_constraints`` asks one entailment
query per kept constraint per pass, cube enumeration asks the same
satisfiability question for structurally equal cubes, and hull construction
re-eliminates the same lifted systems whenever a join is revisited.  This
module provides small in-process memo tables for those pure queries, keyed on
a *canonicalised* form of the constraint system: symbols are renamed to
positional placeholders (in sorted order) and constraints are sorted, so two
systems that differ only in fresh-symbol indices or constraint order share
one cache entry — mirroring the content-addressed design of the engine's
on-disk result cache.

The tables are bounded (FIFO eviction) and process-local; batch-engine
workers fork with empty-to-warm parent tables and diverge independently,
which cannot change any result because every memoized query is a pure
function of its canonical key.

The tables are also **persistable**: :func:`save_snapshot` serializes every
table into one atomic entry of a :class:`~repro.engine.storage.CacheStorage`
and :func:`load_snapshot` absorbs it back, so warm service workers reload
their projection/LP memo across restarts (``repro serve``, ``repro bench
--engine warm``) and ``repro cache stats`` can report it.  Snapshots are
guarded by a caller-supplied fingerprint (the engine passes its code
fingerprint): a snapshot written by different analysis code is silently
ignored rather than replayed, because the memoized *values* are shaped by
the algorithms that computed them.
"""

from __future__ import annotations

import contextlib
import io
import pickle
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Iterator, Sequence

from ..formulas.symbols import Symbol
from .constraint import LinearConstraint

if TYPE_CHECKING:  # pragma: no cover - layering: engine imports polyhedra
    from ..engine.storage import CacheStorage

__all__ = [
    "MemoCache",
    "RestrictedUnpickler",
    "canonical_key",
    "canonical_system",
    "clear_caches",
    "cache_stats",
    "keep_warm",
    "load_snapshot",
    "register_cache",
    "restricted_loads",
    "save_snapshot",
    "snapshot_stats",
]

#: Default per-table entry cap.  Projection results are small (a list of
#: constraints); a few thousand entries is a handful of megabytes.
DEFAULT_CAPACITY = 4096

_REGISTRY: dict[str, "MemoCache"] = {}


class MemoCache:
    """A bounded FIFO memo table with hit/miss counters.

    ``persistent`` marks the table as part of the on-disk memo snapshot;
    only tables whose keys and values stay within the snapshot's closed
    class vocabulary (see ``_ALLOWED_CLASSES``) may set it.
    """

    __slots__ = ("name", "capacity", "persistent", "_entries", "hits", "misses")

    def __init__(
        self, name: str, capacity: int = DEFAULT_CAPACITY, persistent: bool = False
    ):
        self.name = name
        self.capacity = capacity
        self.persistent = persistent
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, key: Hashable, compute: Callable[[], object]) -> object:
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            value = compute()
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return value
        self.hits += 1
        return value

    def contains(self, key: Hashable) -> bool:
        return key in self._entries

    def export_entries(self) -> list[tuple[Hashable, object]]:
        """The table's entries in insertion (FIFO) order."""
        return list(self._entries.items())

    def absorb(self, entries: Iterable[tuple[Hashable, object]]) -> int:
        """Install snapshot entries without touching the hit/miss counters.

        Existing keys win (they are newer), and absorption stops at the
        capacity instead of evicting — a persisted snapshot must warm the
        table, never push out entries this process computed itself.
        Returns how many entries were actually added.
        """
        added = 0
        for key, value in entries:
            if len(self._entries) >= self.capacity:
                break
            if key in self._entries:
                continue
            self._entries[key] = value
            added += 1
        return added

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }


def register_cache(
    name: str, capacity: int = DEFAULT_CAPACITY, persistent: bool = False
) -> MemoCache:
    """Create (or fetch) the named memo table in the module registry."""
    cache = _REGISTRY.get(name)
    if cache is None:
        cache = MemoCache(name, capacity, persistent)
        _REGISTRY[name] = cache
    elif persistent:
        cache.persistent = True
    return cache


#: Depth of active :func:`keep_warm` scopes; non-zero suppresses clearing.
_WARM_DEPTH = 0


def clear_caches(force: bool = False) -> None:
    """Empty every registered memo table (between tasks, and in tests).

    Inside a :func:`keep_warm` scope this is a no-op unless ``force`` is
    given, so code written for cold-per-task semantics (the batch engine's
    :func:`~repro.engine.tasks.execute_task`) can run unchanged in a warm
    worker without dropping its tables.
    """
    if _WARM_DEPTH and not force:
        return
    for cache in _REGISTRY.values():
        cache.clear()


@contextlib.contextmanager
def keep_warm() -> Iterator[None]:
    """Persistence hook for long-lived workers: keep memo tables across tasks.

    While the scope is active, :func:`clear_caches` keeps the tables (they
    stay bounded by their FIFO capacity, so a warm worker cannot grow them
    without limit).  Memoized queries are pure functions of their canonical
    keys, so a warm table changes latency, never results.
    """
    global _WARM_DEPTH
    _WARM_DEPTH += 1
    try:
        yield
    finally:
        _WARM_DEPTH -= 1


def cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss/entry counters of every registered table."""
    return {name: cache.stats() for name, cache in sorted(_REGISTRY.items())}


# ---------------------------------------------------------------------- #
# Snapshot persistence (CacheStorage-backed)
# ---------------------------------------------------------------------- #
#: Entry name of the memo snapshot inside its storage namespace.
SNAPSHOT_NAME = "polyhedra-memo"

#: Bump on incompatible changes to the pickled snapshot layout.
SNAPSHOT_SCHEMA = 1

#: The closed vocabulary a memo snapshot may contain.  Result-cache
#: directories are shareable between machines, so a snapshot must be treated
#: as untrusted input: unpickling goes through a restricted Unpickler that
#: resolves only these classes — a crafted blob naming anything else (the
#: classic ``os.system`` reduce) fails to load and reads as a cold start.
#: Only tables registered with ``persistent=True`` (the projection/LP memo,
#: whose keys and values are plain constraint-system data) are snapshotted;
#: tables keyed on richer objects (the abstraction layer's formulas) stay
#: per-process rather than growing this vocabulary.
_ALLOWED_CLASSES = {
    ("builtins", "frozenset"),
    ("fractions", "Fraction"),
    ("repro.formulas.symbols", "Symbol"),
    ("repro.polyhedra.constraint", "ConstraintKind"),
    ("repro.polyhedra.constraint", "LinearConstraint"),
}


class RestrictedUnpickler(pickle.Unpickler):
    """An unpickler that resolves only a caller-supplied class vocabulary.

    ``allowed`` is a set of ``(module, qualname)`` pairs — enumerate the
    concrete classes, never whole modules: a module-prefix allowlist is an
    arbitrary-code-execution hole, because pickle's REDUCE/NEWOBJ opcodes
    call whatever global they name and large libraries ship eval-style
    callables (``sympy.sympify`` evaluates attacker strings).  Every class
    on the list must also construct safely from attacker-chosen arguments;
    for a class whose constructor is unsafe on some argument types, put a
    validating stand-in into ``overrides`` (mapping ``(module, qualname)``
    to the replacement callable) instead of allowing it raw.  Any other
    global fails to resolve, so a crafted blob in a shared cache directory
    cannot execute code on load — it reads as a cold start.
    """

    def __init__(self, file, allowed, overrides=None):
        super().__init__(file)
        self._allowed = allowed
        self._overrides = overrides or {}

    def find_class(self, module: str, name: str):
        override = self._overrides.get((module, name))
        if override is not None:
            return override
        if (module, name) in self._allowed:
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"snapshot references disallowed class {module}.{name}"
        )


def restricted_loads(data: bytes, allowed, overrides=None):
    """``pickle.loads`` through a :class:`RestrictedUnpickler` (see above)."""
    return RestrictedUnpickler(io.BytesIO(data), allowed, overrides).load()


def save_snapshot(storage: "CacheStorage", fingerprint: str) -> int:
    """Persist every registered memo table into ``storage``; returns entries.

    An existing snapshot with the same fingerprint is merged in first
    (entries are pure functions of their keys, so merging concurrent
    workers' tables is conflict-free; this process's entries win on
    overlap).  Write failures are swallowed — a broken snapshot store must
    never sink an analysis run — and reported as 0.
    """
    tables: dict[str, list] = {}
    merged = _load_tables(storage, fingerprint)
    for name, cache in sorted(_REGISTRY.items()):
        if not cache.persistent:
            continue
        entries = dict(merged.get(name, ()))
        entries.update(cache.export_entries())
        if entries:
            tables[name] = list(entries.items())
    if not tables:
        # Nothing to persist (e.g. a worker that only served cache hits):
        # don't replace a useful snapshot with an empty one.
        return 0
    payload = {
        "schema": SNAPSHOT_SCHEMA,
        "fingerprint": fingerprint,
        "tables": tables,
    }
    try:
        storage.write(SNAPSHOT_NAME, pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0
    return sum(len(entries) for entries in tables.values())


def load_snapshot(storage: "CacheStorage", fingerprint: str) -> int:
    """Absorb a persisted snapshot into the registered tables.

    Entries already present locally are kept (they are at least as fresh).
    A snapshot written under a different fingerprint — different analysis
    code — is ignored.  Returns how many entries were loaded.
    """
    loaded = 0
    for name, entries in _load_tables(storage, fingerprint).items():
        table = _REGISTRY.get(name)
        if table is None or not table.persistent:
            # A table this build does not persist (renamed, or a snapshot
            # from a foreign build claiming extra tables): ignore it.
            continue
        loaded += table.absorb(entries)
    return loaded


def _load_tables(storage: "CacheStorage", fingerprint: str) -> dict[str, list]:
    """The snapshot's per-table entry lists, or ``{}`` when absent/stale."""
    try:
        data = storage.read(SNAPSHOT_NAME)
    except Exception:
        return {}
    if data is None:
        return {}
    try:
        payload = restricted_loads(data, _ALLOWED_CLASSES)
    except Exception:
        # Truncated file, incompatible pickle, a class outside the allowed
        # vocabulary, or classes that moved since the snapshot was written:
        # treat as a cold start.
        return {}
    if not isinstance(payload, dict):
        return {}
    if payload.get("schema") != SNAPSHOT_SCHEMA:
        return {}
    if payload.get("fingerprint") != fingerprint:
        return {}
    tables = payload.get("tables")
    return tables if isinstance(tables, dict) else {}


def snapshot_stats(storage: "CacheStorage", fingerprint: str) -> dict[str, object]:
    """A JSON-ready description of the persisted snapshot (for cache stats)."""
    try:
        size = storage.size_of(SNAPSHOT_NAME)
    except Exception:
        size = 0
    tables = _load_tables(storage, fingerprint) if size else {}
    return {
        "present": size > 0,
        "bytes": size,
        "entries": sum(len(entries) for entries in tables.values()),
        "tables": {name: len(entries) for name, entries in sorted(tables.items())},
    }


# ---------------------------------------------------------------------- #
# Canonicalisation
# ---------------------------------------------------------------------- #
def canonical_system(
    constraints: Sequence[LinearConstraint],
    extra_symbols: Iterable[Symbol] = (),
) -> tuple[
    tuple[LinearConstraint, ...],
    tuple[Symbol, ...],
    dict[Symbol, Symbol],
    dict[Symbol, Symbol],
]:
    """Rename a constraint system to canonical positional symbols.

    Returns ``(canonical_constraints, canonical_extras, forward, inverse)``
    where ``forward`` maps original symbols to placeholders and ``inverse``
    maps back.

    The renaming is **order-isomorphic**: placeholders are assigned in the
    symbols' string order and their zero-padded names sort the same way, and
    constraint order is preserved.  An algorithm whose output depends on
    symbol ordering or constraint ordering (Fourier–Motzkin's pivot choice,
    greedy minimization, ``normalize``'s leading coefficient) therefore
    computes *exactly* the renaming of what it would compute on the original
    system — so memoizing on the canonical form cannot change any result,
    it only lets systems differing in fresh-symbol indices share entries.
    """
    symbols = sorted(
        {s for c in constraints for s in c.symbols} | set(extra_symbols), key=str
    )
    forward = {s: Symbol(f"_cv{i:05d}") for i, s in enumerate(symbols)}
    inverse = {v: k for k, v in forward.items()}
    canonical = tuple(c.rename(forward) for c in constraints)
    extras = tuple(forward[s] for s in dict.fromkeys(extra_symbols))
    return canonical, extras, forward, inverse


def canonical_key(
    constraints: Sequence[LinearConstraint],
    extra_symbols: Iterable[Symbol] = (),
) -> tuple:
    """A hashable, order-insensitive content key for a *semantic* query.

    Constraints are additionally sorted, so permutations of one system share
    a key.  Only use this for queries whose answer is a pure function of the
    solution set (satisfiability, entailment) — not for computations whose
    syntactic output depends on constraint order.
    """
    canonical, extras, _, _ = canonical_system(constraints, extra_symbols)
    return (
        tuple(sorted(canonical, key=lambda c: (c.coeffs, c.constant, c.kind.value))),
        tuple(sorted(extras, key=str)),
    )


def entailment_key(
    constraints: Sequence[LinearConstraint], candidate: LinearConstraint
) -> tuple:
    """A content key for an entailment query ``constraints |= candidate``.

    The candidate is renamed with the same symbol map as the system but kept
    separate in the key (it is the query, not part of the system).
    """
    canonical, _, forward, _ = canonical_system(
        constraints, candidate.symbols
    )
    ordered = tuple(
        sorted(canonical, key=lambda c: (c.coeffs, c.constant, c.kind.value))
    )
    return (ordered, candidate.rename(forward))
