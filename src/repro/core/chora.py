"""The top-level CHORA analysis driver.

``analyze_program`` computes a :class:`~repro.core.summaries.ProcedureSummary`
for every procedure of a program, following §4: the strongly connected
components of the call graph are processed in topological order; non-recursive
components are summarized intraprocedurally (compositional recurrence
analysis), recursive components go through height-based recurrence analysis
(Alg. 2 + Alg. 3 + recurrence solving), the depth-bound analysis of §4.2, and
— optionally — the two-region refinement of §4.3.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..abstraction import AbstractionOptions
from ..analysis import ProcedureContext, summarize_procedure
from ..formulas import TransitionFormula
from ..lang import ast
from ..lang.callgraph import CallGraph, build_call_graph
from ..recurrence import RecurrenceSolvingError
from .depth_bound import compute_depth_bound
from .height_analysis import HeightAnalysis, run_height_analysis
from .missing_base import transform_missing_base_cases
from .stratify import build_stratified_system
from .summaries import BoundedTerm, ProcedureSummary
from .two_region import run_two_region_analysis

__all__ = [
    "ChoraOptions",
    "AnalysisResult",
    "analyze_program",
    "analyze_component",
]


@dataclass(frozen=True)
class ChoraOptions:
    """Configuration of the end-to-end analysis (used by ablation benchmarks)."""

    abstraction: AbstractionOptions = AbstractionOptions()
    #: Run the literal Alg. 4 depth model (in addition to the closed-form
    #: descent bound).  Disabling it loses the polyhedral ``zeta`` conjuncts.
    use_alg4_depth: bool = True
    #: Run the §4.3 two-region refinement when the depth bound is exact.
    use_two_region: bool = True
    #: Apply the §4.5 missing-base-case transformation when needed.
    transform_missing_base: bool = True

    def to_dict(self) -> dict[str, Any]:
        """A plain, JSON-serializable view of the options (nested dataclasses
        included) — the representation the batch engine's result cache keys on."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChoraOptions":
        """Rebuild options from :meth:`to_dict` output."""
        fields = dict(data)
        abstraction = AbstractionOptions(**fields.pop("abstraction", {}))
        return cls(abstraction=abstraction, **fields)

    def fingerprint(self) -> str:
        """A canonical string identifying this configuration.

        Two option values have equal fingerprints iff they request the same
        analysis, so the fingerprint is safe to use in cache keys.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


@dataclass
class AnalysisResult:
    """The outcome of analysing a whole program."""

    program: ast.Program
    summaries: dict[str, ProcedureSummary]
    contexts: dict[str, ProcedureContext]
    call_graph: CallGraph
    height_analyses: dict[str, HeightAnalysis] = field(default_factory=dict)

    def summary(self, name: str) -> ProcedureSummary:
        return self.summaries[name]

    def procedures(self) -> dict[str, ast.Procedure]:
        return {p.name: p for p in self.program.procedures}


def analyze_program(
    program: ast.Program, options: ChoraOptions = ChoraOptions()
) -> AnalysisResult:
    """Analyse every procedure of ``program`` (CHORA's main entry point)."""
    if options.transform_missing_base:
        program = transform_missing_base_cases(program)
    procedures = {p.name: p for p in program.procedures}
    contexts = {
        name: ProcedureContext.of(procedure, program.global_names)
        for name, procedure in procedures.items()
    }
    graph = build_call_graph(program)
    result = AnalysisResult(program, {}, contexts, graph)

    #: Transition formulas used to interpret calls to already-analysed procedures.
    external: dict[str, TransitionFormula] = {}

    for component in graph.strongly_connected_components():
        analyze_component(
            component, graph, contexts, procedures, external, result, options
        )
    return result


def analyze_component(
    component: list[str],
    graph: CallGraph,
    contexts: Mapping[str, ProcedureContext],
    procedures: Mapping[str, ast.Procedure],
    external: dict[str, TransitionFormula],
    result: AnalysisResult,
    options: ChoraOptions,
) -> None:
    """Summarize one call-graph SCC, given its callees' ``external`` formulas.

    This is the unit step of :func:`analyze_program`'s topological pass; it
    is exposed so :class:`repro.core.incremental.IncrementalAnalyzer` can
    re-run exactly the components whose fingerprints changed.  On return the
    component's summaries are recorded in ``result`` and its procedures'
    call interpretations added to ``external``.
    """
    if not graph.is_recursive(component):
        name = component[0]
        transition = summarize_procedure(
            contexts[name], {}, external, procedures, options.abstraction
        )
        summary = ProcedureSummary(
            name,
            contexts[name].summary_variables,
            transition,
            is_recursive=False,
        )
        result.summaries[name] = summary
        external[name] = transition
        return
    _analyze_recursive_component(
        component, contexts, procedures, external, result, options
    )


def _analyze_recursive_component(
    component: list[str],
    contexts: Mapping[str, ProcedureContext],
    procedures: Mapping[str, ast.Procedure],
    external: dict[str, TransitionFormula],
    result: AnalysisResult,
    options: ChoraOptions,
) -> None:
    scc_contexts = {name: contexts[name] for name in component}
    analysis = run_height_analysis(
        scc_contexts, external, procedures, options.abstraction
    )
    for name in component:
        result.height_analyses[name] = analysis

    all_bounds = [b for name in component for b in analysis.bound_symbols[name]]
    system = build_stratified_system(analysis.candidate_inequations, all_bounds)
    try:
        solution = system.solve()
    except RecurrenceSolvingError:
        solution = {}

    # Optional §4.3 refinement: additional bounding functions obtained by
    # analysing the upper region of the recursion tree (allows decreasing
    # bounds, hence non-trivial lower bounds on program quantities).
    two_region_bounds: dict[str, list[BoundedTerm]] = {}
    if options.use_two_region:
        try:
            two_region_bounds = run_two_region_analysis(
                scc_contexts, analysis, external, procedures, options.abstraction
            )
        except RecurrenceSolvingError:
            two_region_bounds = {}

    for name in component:
        context = contexts[name]
        bounded_terms: list[BoundedTerm] = []
        for bound in analysis.bound_symbols[name]:
            closed = solution.get(bound.at_h)
            if closed is not None:
                bounded_terms.append(BoundedTerm(bound.term, closed))
        depth = compute_depth_bound(
            name,
            scc_contexts,
            analysis.base_summaries,
            external,
            procedures,
            options.abstraction,
            use_alg4=options.use_alg4_depth,
        )
        extra = two_region_bounds.get(name, [])
        if extra and depth.symbolic_exact:
            bounded_terms.extend(extra)
        summary = ProcedureSummary(
            name,
            context.summary_variables,
            TransitionFormula.havoc(context.summary_variables),
            tuple(bounded_terms),
            depth,
            is_recursive=True,
        )
        result.summaries[name] = summary
        external[name] = summary.instantiate(None)
