"""Equation systems with missing base cases (§4.5).

Height-based recurrence analysis needs every procedure of a strongly
connected component to have a *base case* — a set of paths containing no
calls back into the component.  §4.5 handles components where some procedure
``P_i`` lacks one by rewriting the equation system:

* for every other member ``P_j``, introduce a variant ``P_j_no_P_i`` in which
  calls to ``P_i`` abort (are infeasible);
* in ``P_i``, let every call to ``P_j`` non-deterministically call either
  ``P_j`` or ``P_j_no_P_i``.

The variants fall outside the component (they never reach ``P_i``), so they
are summarized first, and the rewritten ``P_i`` gains a base case through
them.  This module implements the transformation at the AST level.
"""

from __future__ import annotations


from ..lang import ast
from ..lang.callgraph import build_call_graph

__all__ = ["procedures_without_base_case", "transform_missing_base_cases"]


def _statement_always_calls(statement: ast.Stmt, targets: frozenset[str]) -> bool:
    """Whether every execution of ``statement`` calls one of ``targets``."""
    if isinstance(statement, ast.Block):
        return any(_statement_always_calls(s, targets) for s in statement.statements)
    if isinstance(statement, (ast.Assign, ast.VarDecl)):
        value = statement.value if isinstance(statement, ast.Assign) else statement.init
        return value is not None and _expression_calls(value, targets)
    if isinstance(statement, ast.CallStmt):
        return _expression_calls(statement.call, targets)
    if isinstance(statement, ast.Return):
        return statement.value is not None and _expression_calls(statement.value, targets)
    if isinstance(statement, ast.If):
        then_calls = _statement_always_calls(statement.then_branch, targets)
        else_calls = (
            _statement_always_calls(statement.else_branch, targets)
            if statement.else_branch is not None
            else False
        )
        return then_calls and else_calls
    # Loops may run zero times; assume/assert/havoc make no calls.
    return False


def _expression_calls(expression: ast.Expr, targets: frozenset[str]) -> bool:
    if isinstance(expression, ast.CallExpr):
        if expression.callee in targets:
            return True
        return any(_expression_calls(a, targets) for a in expression.args)
    if isinstance(expression, ast.BinOp):
        return _expression_calls(expression.left, targets) or _expression_calls(
            expression.right, targets
        )
    if isinstance(expression, ast.UnaryNeg):
        return _expression_calls(expression.operand, targets)
    if isinstance(expression, ast.MinMax):
        return _expression_calls(expression.left, targets) or _expression_calls(
            expression.right, targets
        )
    if isinstance(expression, ast.Ternary):
        return _expression_calls(expression.then_value, targets) and _expression_calls(
            expression.else_value, targets
        )
    return False


def procedures_without_base_case(program: ast.Program) -> frozenset[str]:
    """Members of recursive components all of whose paths re-enter the component.

    A procedure has a base case iff its exit vertex is reachable from its
    entry using only edges that do not call back into the procedure's own
    strongly connected component; this is checked on the control-flow graph
    (the syntactic check alone would be confused by early returns).
    """
    from ..lang.cfg import build_cfg

    graph = build_call_graph(program)
    missing: set[str] = set()
    for component in graph.strongly_connected_components():
        if not graph.is_recursive(component):
            continue
        members = frozenset(component)
        for name in component:
            cfg = build_cfg(program.procedure(name))
            successors: dict[int, set[int]] = {}
            for edge in cfg.weight_edges:
                successors.setdefault(edge.source, set()).add(edge.target)
            for edge in cfg.call_edges:
                if edge.callee not in members:
                    successors.setdefault(edge.source, set()).add(edge.target)
            seen = {cfg.entry}
            frontier = [cfg.entry]
            while frontier:
                vertex = frontier.pop()
                for target in successors.get(vertex, ()):
                    if target not in seen:
                        seen.add(target)
                        frontier.append(target)
            if cfg.exit not in seen:
                missing.add(name)
    return frozenset(missing)


def _replace_calls(statement: ast.Stmt, rewrite) -> ast.Stmt:
    """Rebuild a statement with each call statement/assignment rewritten.

    ``rewrite(stmt, callee)`` returns a replacement statement (or the original).
    """
    if isinstance(statement, ast.Block):
        return ast.Block(tuple(_replace_calls(s, rewrite) for s in statement.statements))
    if isinstance(statement, ast.If):
        return ast.If(
            statement.condition,
            _replace_calls(statement.then_branch, rewrite),
            _replace_calls(statement.else_branch, rewrite)
            if statement.else_branch is not None
            else None,
        )
    if isinstance(statement, ast.While):
        return ast.While(statement.condition, _replace_calls(statement.body, rewrite))
    if isinstance(statement, ast.CallStmt):
        return rewrite(statement, statement.call.callee)
    if isinstance(statement, ast.Assign) and isinstance(statement.value, ast.CallExpr):
        return rewrite(statement, statement.value.callee)
    if isinstance(statement, ast.VarDecl) and isinstance(statement.init, ast.CallExpr):
        return rewrite(statement, statement.init.callee)
    return statement


def transform_missing_base_cases(program: ast.Program) -> ast.Program:
    """Apply the §4.5 transformation until every recursive procedure has a base case.

    The number of added variants is bounded by the size of the component per
    round (the worst case noted in the paper is exponential; the benchmark
    programs need at most one round).
    """
    current = program
    for _ in range(4):  # bounded number of rounds
        missing = procedures_without_base_case(current)
        if not missing:
            return current
        target = sorted(missing)[0]
        graph = build_call_graph(current)
        component = next(
            c for c in graph.strongly_connected_components() if target in c
        )
        others = [name for name in component if name != target]
        new_procedures: list[ast.Procedure] = []
        variant_names = {name: f"{name}_no_{target}" for name in others}

        for procedure in current.procedures:
            if procedure.name in others:
                # Variant that never (directly or through the component)
                # calls back into `target`: calls to `target` abort, calls to
                # other members are redirected to *their* variants (this is
                # what makes P4_no_P3 = a in Ex. 4.2 rather than keeping a
                # path back into the component).
                def abort_rewrite(stmt: ast.Stmt, callee: str) -> ast.Stmt:
                    if callee == target:
                        return ast.Assume(ast.BoolLit(False))
                    if callee in variant_names:
                        return _rename_call(stmt, variant_names[callee])
                    return stmt

                variant_body = _replace_calls(procedure.body, abort_rewrite)
                new_procedures.append(procedure)
                new_procedures.append(
                    ast.Procedure(
                        variant_names[procedure.name],
                        procedure.parameters,
                        variant_body,
                        procedure.returns_value,
                    )
                )
            elif procedure.name == target:
                # Calls to P_j become a choice between P_j and its variant.
                def choice_rewrite(stmt: ast.Stmt, callee: str) -> ast.Stmt:
                    if callee not in variant_names:
                        return stmt
                    renamed = _rename_call(stmt, variant_names[callee])
                    return ast.If(
                        ast.NondetBool(),
                        ast.Block((stmt,)),
                        ast.Block((renamed,)),
                    )

                new_body = _replace_calls(procedure.body, choice_rewrite)
                new_procedures.append(
                    ast.Procedure(
                        procedure.name,
                        procedure.parameters,
                        new_body,
                        procedure.returns_value,
                    )
                )
            else:
                new_procedures.append(procedure)
        current = ast.Program(current.globals, tuple(new_procedures))
    return current


def _rename_call(statement: ast.Stmt, new_callee: str) -> ast.Stmt:
    if isinstance(statement, ast.CallStmt):
        return ast.CallStmt(ast.CallExpr(new_callee, statement.call.args))
    if isinstance(statement, ast.Assign) and isinstance(statement.value, ast.CallExpr):
        return ast.Assign(statement.name, ast.CallExpr(new_callee, statement.value.args))
    if isinstance(statement, ast.VarDecl) and isinstance(statement.init, ast.CallExpr):
        return ast.VarDecl(statement.name, ast.CallExpr(new_callee, statement.init.args))
    return statement
