"""Procedure summaries and their instantiation as transition formulas.

Height-based recurrence analysis (§4.1–§4.2) produces, for each procedure:

* a set of *bounded terms*: relational expressions ``tau`` over the summary
  vocabulary together with exponential-polynomial bounding functions
  ``b(h)`` such that ``tau <= b(h)`` in any height-``h`` execution
  (Thm. A.1);
* a *depth bound* relating the height ``H`` to the pre-state (Alg. 4 /
  §4.2), both as a formula ``zeta(H, sigma)`` and, when the descent is
  recognisably arithmetic or geometric, as a closed-form expression;
* the resulting procedure summary ``exists H. zeta(H, sigma) /\\
  AND_k tau_k <= b_k(H)`` (Eqn. (4)).

Because bounding functions may be genuinely exponential, instantiating a
summary as a transition formula introduces fresh symbols for terms ``r**H``;
the :class:`ExponentialRegistry` records what those symbols denote so that
the assertion checker can later saturate them with sound axioms
(monotonicity, Bernoulli lower bounds, evaluation under constant exponents).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

import sympy

from ..formulas import (
    Formula,
    Polynomial,
    Symbol,
    TransitionFormula,
    atom_ge,
    atom_le,
    conjoin,
    disjoin,
    exists,
    fresh,
)
from ..recurrence import ClosedForm, ExpPoly

__all__ = [
    "BoundedTerm",
    "DepthBound",
    "ExponentialTerm",
    "ExponentialRegistry",
    "ProcedureSummary",
    "exppoly_to_polynomial",
]


@dataclass(frozen=True)
class BoundedTerm:
    """``term <= bound(h)`` for every height-``h`` execution."""

    term: Polynomial
    bound: ClosedForm

    def __str__(self) -> str:
        return f"{self.term} <= {self.bound.expression} @ h"


@dataclass(frozen=True)
class DepthBound:
    """Constraints tying the recursion height ``H`` to the pre-state.

    ``constraints`` is the polyhedral part (``zeta``): polynomials over
    pre-state symbols and the depth symbol, valid for *every* execution.
    ``recursive_constraints`` hold only for executions that actually recurse
    (``H >= 2``): descent arguments count frames inside the recursive region,
    so they say nothing about a base case that executes immediately — a call
    with an argument outside the descent regime still terminates at height 1.
    Conjoining them unconditionally would make such calls spuriously
    infeasible, so :meth:`formula` guards them with ``H <= 1 \\/ (H >= 2 /\\
    ...)``.  ``symbolic_bound`` is an optional closed-form upper bound for
    ``H`` as a sympy expression over parameter names (it may involve
    logarithms, which cannot be expressed polyhedrally); ``symbolic_exact``
    marks the cases in which the bound is exact (every root-to-leaf path has
    the same length), which is what allows two-sided (equality) reasoning.
    """

    constraints: tuple[tuple[Polynomial, bool], ...] = ()
    symbolic_bound: Optional[sympy.Expr] = None
    symbolic_exact: bool = False
    recursive_constraints: tuple[tuple[Polynomial, bool], ...] = ()

    def formula(self, height: Symbol) -> Formula:
        """The polyhedral depth constraints with ``D`` replaced by ``height``.

        Each stored constraint is a polynomial over pre-state symbols and the
        distinguished depth symbol ``DEPTH_SYMBOL``; it is instantiated by
        renaming that symbol to the chosen height symbol.  Recursive-regime
        constraints are disjoined with the always-available single-level
        execution ``height <= 1``.
        """
        conjuncts = [self._instantiated(self.constraints, height)]
        recursive = getattr(self, "recursive_constraints", ())
        if recursive:
            h_poly = Polynomial.var(height)
            deeper = conjoin(
                [atom_le(2, h_poly), self._instantiated(recursive, height)]
            )
            conjuncts.append(disjoin([atom_le(h_poly, 1), deeper]))
        return conjoin(conjuncts)

    @staticmethod
    def _instantiated(
        constraints: Sequence[tuple[Polynomial, bool]], height: Symbol
    ) -> Formula:
        conjuncts = []
        for polynomial, is_equality in constraints:
            renamed = polynomial.rename({DEPTH_SYMBOL: height})
            if is_equality:
                from ..formulas import atom_eq

                conjuncts.append(atom_eq(renamed, 0))
            else:
                conjuncts.append(atom_le(renamed, 0))
        return conjoin(conjuncts)


#: The distinguished symbol used for the depth counter ``D`` of Alg. 4 inside
#: :class:`DepthBound` constraints (renamed to a fresh ``H`` on instantiation).
DEPTH_SYMBOL = Symbol("__depth", False, 0)


@dataclass(frozen=True)
class ExponentialTerm:
    """A fresh symbol standing for ``base ** exponent_symbol``."""

    symbol: Symbol
    base: Fraction
    exponent: Symbol


@dataclass
class ExponentialRegistry:
    """Registry of exponential terms introduced while instantiating summaries."""

    terms: list[ExponentialTerm] = field(default_factory=list)

    def register(self, base: Fraction, exponent: Symbol) -> Symbol:
        for term in self.terms:
            if term.base == base and term.exponent == exponent:
                return term.symbol
        symbol = fresh(f"exp{base.numerator}")
        self.terms.append(ExponentialTerm(symbol, base, exponent))
        return symbol

    def axioms(self) -> Formula:
        """Context-free axioms: Bernoulli lower bounds and positivity.

        For an integer base ``r >= 1`` and integer exponent ``H >= 0``:
        ``r**H >= 1 + (r - 1)*H`` and ``r**H >= 1``.
        """
        conjuncts: list[Formula] = []
        for term in self.terms:
            e = Polynomial.var(term.symbol)
            h = Polynomial.var(term.exponent)
            if term.base >= 1:
                conjuncts.append(atom_ge(e, 1))
                conjuncts.append(atom_ge(e, Polynomial.constant(1) + (term.base - 1) * h))
        return conjoin(conjuncts)

    def __iter__(self):
        return iter(self.terms)

    def __len__(self) -> int:
        return len(self.terms)


def exppoly_to_polynomial(
    closed_form: ExpPoly,
    height: Symbol,
    registry: ExponentialRegistry,
) -> Optional[Polynomial]:
    """Render an exponential polynomial over ``H`` as a :class:`Polynomial`.

    Polynomial-in-``H`` parts translate directly; each exponential ``r**H``
    becomes (a polynomial multiple of) a registered fresh symbol.  Returns
    ``None`` when a coefficient is not a rational polynomial in ``H`` (such
    bounds are simply dropped from the instantiated summary — a sound
    weakening).
    """
    total = Polynomial.zero()
    for base, coefficient in closed_form.terms.items():
        poly_part = _sympy_poly_to_polynomial(coefficient, closed_form.var, height)
        if poly_part is None:
            return None
        if base == 1:
            total = total + poly_part
            continue
        if not (base.is_Rational and base > 0):
            return None
        exp_symbol = registry.register(Fraction(int(base.p), int(base.q)), height)
        total = total + poly_part * Polynomial.var(exp_symbol)
    return total


def _sympy_poly_to_polynomial(
    expression: sympy.Expr, var: sympy.Symbol, height: Symbol
) -> Optional[Polynomial]:
    """Convert a sympy polynomial in ``var`` into a Polynomial over ``height``."""
    try:
        poly = sympy.Poly(sympy.expand(expression), var)
    except sympy.PolynomialError:
        return None
    result = Polynomial.zero()
    for (degree,), coefficient in poly.terms():
        if not coefficient.is_Rational:
            return None
        frac = Fraction(int(coefficient.p), int(coefficient.q))
        result = result + Polynomial.var(height) ** degree * frac
    return result


@dataclass
class ProcedureSummary:
    """Everything the analysis knows about one procedure.

    ``transition`` is a ready-to-use over-approximation for *non-recursive*
    procedures (their summary needs no height reasoning).  For recursive
    procedures the summary is assembled on demand by :meth:`instantiate` from
    the bounded terms and the depth bound, so that every call site gets fresh
    height/exponential symbols.
    """

    name: str
    variables: tuple[str, ...]
    transition: TransitionFormula
    bounded_terms: tuple[BoundedTerm, ...] = ()
    depth_bound: DepthBound = DepthBound()
    is_recursive: bool = False

    # ------------------------------------------------------------------ #
    # Instantiation
    # ------------------------------------------------------------------ #
    def instantiate(
        self, registry: Optional[ExponentialRegistry] = None
    ) -> TransitionFormula:
        """A transition formula for one use of this summary.

        For non-recursive procedures this is just ``transition``.  For
        recursive procedures the result is Eqn. (4):

            exists H.  zeta(H, sigma)  /\\  AND_k  tau_k <= b_k(H)

        with fresh symbols for ``H`` and for every exponential ``r**H``.
        When ``registry`` is supplied the exponential symbols are *not*
        existentially bound (the caller wants to reason about them — e.g. the
        assertion checker); otherwise everything auxiliary is bound.
        """
        if not self.is_recursive or not self.bounded_terms:
            return self.transition
        own_registry = registry if registry is not None else ExponentialRegistry()
        height = fresh("H")
        h_poly = Polynomial.var(height)
        conjuncts: list[Formula] = [atom_ge(h_poly, 1)]
        conjuncts.append(self.depth_bound.formula(height))
        for bounded in self.bounded_terms:
            rendered = exppoly_to_polynomial(
                bounded.bound.expression, height, own_registry
            )
            if rendered is None:
                continue
            conjuncts.append(atom_le(bounded.term, rendered))
        conjuncts.append(own_registry.axioms())
        # The base (non-recursive paths) behaviour is already covered by the
        # bounded terms (heights >= 1 include the base case), so the summary
        # is the height-indexed formula alone.
        formula = conjoin(conjuncts)
        if registry is None:
            bound_symbols = [height] + [t.symbol for t in own_registry]
            formula = exists(bound_symbols, formula)
        return TransitionFormula.relation(formula, self.variables)

    def bounded_term_for(self, polynomial: Polynomial) -> Optional[BoundedTerm]:
        """Find a bounded term whose relational expression equals ``polynomial``."""
        for bounded in self.bounded_terms:
            if bounded.term == polynomial:
                return bounded
        return None

    def __str__(self) -> str:
        lines = [f"summary of {self.name} over {', '.join(self.variables)}"]
        if self.is_recursive:
            for bounded in self.bounded_terms:
                lines.append(f"  {bounded}")
            if self.depth_bound.symbolic_bound is not None:
                relation = "==" if self.depth_bound.symbolic_exact else "<="
                lines.append(f"  H {relation} {self.depth_bound.symbolic_bound}")
        else:
            lines.append(f"  {self.transition}")
        return "\n".join(lines)
