"""Alg. 3: constructing a stratified recurrence from candidate inequations.

The candidate inequations produced by Alg. 2 relate the height-``(h+1)``
bounding functions to the height-``h`` ones, but they need not form a
solvable system.  Alg. 3 selects a maximal subset satisfying the
stratification criteria of §4.1:

1. each ``b_k(h+1)`` is defined by at most one inequation;
2. every ``b_k(h)`` used on a right-hand side has a defining inequation in
   the selected set;
3. non-linear uses refer only to strictly lower strata.

Additionally (line 6 of Alg. 3) terms with negative coefficients are dropped
(a sound weakening, because the bounding functions are non-negative), so that
the selected inequations — read as equations — have the maximal solution the
soundness proof (Appendix A) relies on.  Two-region analysis (§4.3) re-runs
this algorithm with ``keep_negative_constants=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Optional, Sequence

from ..abstraction import Inequation
from ..formulas import Monomial, Polynomial, Symbol
from ..recurrence import RecurrenceEquation, StratifiedSystem
from .height_analysis import BoundSymbols

__all__ = ["CandidateRecurrence", "build_stratified_system", "normalize_candidate"]


@dataclass(frozen=True)
class CandidateRecurrence:
    """A candidate inequation rewritten as ``target(h+1) <= rhs`` over height-``h`` symbols."""

    target: Symbol          # the b_k(h) symbol identifying the unknown
    rhs: Polynomial         # polynomial over b_j(h) symbols (plus a constant)
    original: Inequation

    def uses(self) -> frozenset[Symbol]:
        return self.rhs.symbols

    def uses_nonlinearly(self) -> frozenset[Symbol]:
        out: set[Symbol] = set()
        for monomial in self.rhs.nonlinear_monomials():
            out |= monomial.symbols
        return frozenset(out)


def normalize_candidate(
    inequation: Inequation,
    bounds: Sequence[BoundSymbols],
    keep_negative_constants: bool = False,
) -> Optional[CandidateRecurrence]:
    """Rewrite an inequation in the form required by Alg. 3, line 5.

    The inequation must be expressible as ``b_k(h+1) <= c_0 + sum_i c_i *
    (products of b_j(h))`` for exactly one ``k``.  Negative coefficients are
    clamped to zero (line 6) unless ``keep_negative_constants`` is set, in
    which case only the non-constant coefficients are clamped (the §4.3
    upper-region variant).  Returns ``None`` when the inequation does not
    have the required shape.
    """
    h1_by_symbol = {b.at_h_plus_1: b for b in bounds}
    h_symbols = {b.at_h for b in bounds}
    polynomial = inequation.polynomial
    # Find the (unique) h+1 symbol, which must occur linearly.
    target_bound: Optional[BoundSymbols] = None
    coefficient = Fraction(0)
    for monomial, coeff in polynomial.items():
        mentioned = [s for s in monomial.symbols if s in h1_by_symbol]
        if not mentioned:
            continue
        if monomial.degree != 1 or len(mentioned) != 1:
            return None
        symbol = mentioned[0]
        if target_bound is not None and h1_by_symbol[symbol] is not target_bound:
            return None
        target_bound = h1_by_symbol[symbol]
        coefficient += coeff
    if target_bound is None or coefficient <= 0:
        return None
    # polynomial <= 0 with polynomial = coefficient*b(h+1) + rest
    # rewrites to b(h+1) <= -rest / coefficient.
    rest = polynomial - Polynomial.var(target_bound.at_h_plus_1) * coefficient
    rhs = (-rest).scale(Fraction(1) / coefficient)
    # The right-hand side may only mention height-h bound symbols.
    if not rhs.symbols <= h_symbols:
        return None
    # Clamp negative coefficients (line 6 of Alg. 3).
    clamped: dict[Monomial, Fraction] = {}
    for monomial, coeff in rhs.items():
        if monomial.is_unit and keep_negative_constants:
            clamped[monomial] = coeff
        else:
            clamped[monomial] = max(Fraction(0), coeff)
    return CandidateRecurrence(target_bound.at_h, Polynomial(clamped), inequation)


def build_stratified_system(
    inequations: Iterable[Inequation],
    bounds: Sequence[BoundSymbols],
    keep_negative_constants: bool = False,
) -> StratifiedSystem:
    """Alg. 3: select a maximal stratifiable subset and build the system.

    The unknowns of the returned :class:`StratifiedSystem` are identified by
    their height-``h`` symbols (``BoundSymbols.at_h``).
    """
    candidates: list[CandidateRecurrence] = []
    for inequation in inequations:
        normalized = normalize_candidate(inequation, bounds, keep_negative_constants)
        if normalized is not None:
            candidates.append(normalized)

    selected: list[CandidateRecurrence] = []
    selected_targets: set[Symbol] = set()
    accepted: set[int] = set()          # indices into `candidates` already accepted
    accepted_defines: set[Symbol] = set()

    remaining = list(range(len(candidates)))
    while True:
        # V <- candidates not yet accepted.
        current = [j for j in remaining if j not in accepted]
        # Inner fixed point: drop candidates whose uses cannot be satisfied.
        changed = True
        while changed:
            changed = False
            defined_in_current = {candidates[j].target for j in current}
            for j in list(current):
                candidate = candidates[j]
                available = defined_in_current | accepted_defines
                if not candidate.uses() <= available:
                    current.remove(j)
                    changed = True
                    continue
                if not candidate.uses_nonlinearly() <= accepted_defines:
                    current.remove(j)
                    changed = True
        if not current:
            break
        # At most one definition per unknown (choose the first).
        chosen: dict[Symbol, int] = {}
        for j in current:
            chosen.setdefault(candidates[j].target, j)
        stratum = sorted(chosen.values())
        for j in stratum:
            accepted.add(j)
            accepted_defines.add(candidates[j].target)
            if candidates[j].target not in selected_targets:
                selected_targets.add(candidates[j].target)
                selected.append(candidates[j])
        # Candidates defining an already-chosen unknown can never be used.
        remaining = [
            j
            for j in remaining
            if j in accepted or candidates[j].target not in accepted_defines
        ]
        if all(j in accepted for j in remaining):
            break

    equations = [
        RecurrenceEquation(candidate.target, candidate.rhs) for candidate in selected
    ]
    return StratifiedSystem(equations=equations, initial_value=0, initial_index=1)
