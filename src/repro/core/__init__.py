"""The paper's contribution: height-based recurrence analysis (CHORA).

Public entry points:

* :func:`analyze_program` — compute procedure summaries for a whole program;
* :func:`check_assertions` / :func:`check_assertion` — prove assertions;
* :func:`cost_bound` / :func:`return_bound` / :func:`classify_asymptotics` —
  complexity bounds (Table 1);
* the building blocks: Alg. 2 (:mod:`repro.core.height_analysis`), Alg. 3
  (:mod:`repro.core.stratify`), Alg. 4 / §4.2 (:mod:`repro.core.depth_bound`),
  §4.3 (:mod:`repro.core.two_region`), §4.4 (:mod:`repro.core.mutual`),
  §4.5 (:mod:`repro.core.missing_base`).
"""

from .summaries import (
    BoundedTerm,
    DepthBound,
    ExponentialRegistry,
    ExponentialTerm,
    ProcedureSummary,
)
from .height_analysis import BoundSymbols, HeightAnalysis, run_height_analysis
from .stratify import CandidateRecurrence, build_stratified_system, normalize_candidate
from .depth_bound import (
    DescentKind,
    DescentWitness,
    alg4_depth_formula,
    compute_depth_bound,
    descent_depth_bound,
)
from .two_region import recursive_only_cfg, run_two_region_analysis
from .mutual import analyze_component_decoupled, analyze_mutual_component
from .missing_base import procedures_without_base_case, transform_missing_base_cases
from .chora import AnalysisResult, ChoraOptions, analyze_component, analyze_program
from .parallel import (
    ComponentTiming,
    ParallelScheduleReport,
    analyze_program_parallel,
    configured_parallel_sccs,
    last_schedule_report,
    set_parallel_sccs,
)
from .incremental import IncrementalAnalyzer, IncrementalReport
from .assertion import AssertionOutcome, check_assertion, check_assertions
from .complexity import (
    NO_BOUND,
    ComplexityBound,
    classify_asymptotics,
    cost_bound,
    return_bound,
)

__all__ = [
    "BoundedTerm",
    "DepthBound",
    "ExponentialRegistry",
    "ExponentialTerm",
    "ProcedureSummary",
    "BoundSymbols",
    "HeightAnalysis",
    "run_height_analysis",
    "CandidateRecurrence",
    "build_stratified_system",
    "normalize_candidate",
    "DescentKind",
    "DescentWitness",
    "alg4_depth_formula",
    "compute_depth_bound",
    "descent_depth_bound",
    "recursive_only_cfg",
    "run_two_region_analysis",
    "analyze_component_decoupled",
    "analyze_mutual_component",
    "procedures_without_base_case",
    "transform_missing_base_cases",
    "AnalysisResult",
    "ChoraOptions",
    "analyze_component",
    "analyze_program",
    "ComponentTiming",
    "ParallelScheduleReport",
    "analyze_program_parallel",
    "configured_parallel_sccs",
    "last_schedule_report",
    "set_parallel_sccs",
    "IncrementalAnalyzer",
    "IncrementalReport",
    "AssertionOutcome",
    "check_assertion",
    "check_assertions",
    "NO_BOUND",
    "ComplexityBound",
    "classify_asymptotics",
    "cost_bound",
    "return_bound",
]
