"""Mutual recursion (§4.4).

The generalization of height-based recurrence analysis to strongly connected
components with several procedures is implemented directly by
:func:`repro.core.height_analysis.run_height_analysis` (which interleaves the
per-procedure steps of Alg. 2 exactly as §4.4 prescribes: shared hypothetical
summaries at all intra-component call sites, per-procedure extension formulas,
and a single stratified recurrence over all bounding functions).  This module
provides a thin, documented façade so the correspondence with the paper's
section structure is explicit, plus a helper used by tests and the ablation
benchmark to analyse a component *without* the interleaving (each procedure's
recursive calls havoced), quantifying what the coupled recurrence buys.
"""

from __future__ import annotations

from typing import Mapping

from ..abstraction import AbstractionOptions
from ..analysis import ProcedureContext
from ..formulas import TransitionFormula
from ..lang import ast
from .height_analysis import HeightAnalysis, run_height_analysis

__all__ = ["analyze_mutual_component", "analyze_component_decoupled"]


def analyze_mutual_component(
    contexts: Mapping[str, ProcedureContext],
    external_summaries: Mapping[str, TransitionFormula],
    procedures: Mapping[str, ast.Procedure],
    options: AbstractionOptions = AbstractionOptions(),
) -> HeightAnalysis:
    """Alg. 2 interleaved over a mutually recursive component (§4.4)."""
    return run_height_analysis(contexts, external_summaries, procedures, options)


def analyze_component_decoupled(
    contexts: Mapping[str, ProcedureContext],
    external_summaries: Mapping[str, TransitionFormula],
    procedures: Mapping[str, ast.Procedure],
    options: AbstractionOptions = AbstractionOptions(),
) -> dict[str, HeightAnalysis]:
    """Ablation: analyse each member separately, havocing calls to the others.

    This loses the coupled recurrence (e.g. the ``6**h`` bound of Ex. 4.1
    degenerates), and is only used to measure the benefit of §4.4.
    """
    results: dict[str, HeightAnalysis] = {}
    for name, context in contexts.items():
        results[name] = run_height_analysis(
            {name: context}, external_summaries, procedures, options
        )
    return results
