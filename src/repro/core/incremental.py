"""Incremental re-analysis: re-summarize only what an edit could change.

:func:`~repro.core.chora.analyze_program` processes the call-graph SCCs of a
program in topological order, each component depending only on its callees'
summaries.  That structure makes the analysis incremental for free once each
component is content-addressed: :class:`IncrementalAnalyzer` keys every SCC
by its members' :mod:`~repro.lang.fingerprint` digests (body hash + callees'
hashes, i.e. the whole dependency cone) and keeps the resulting
:class:`~repro.core.summaries.ProcedureSummary` objects in a bounded
in-process store.  Re-analyzing an edited program then re-runs exactly the
SCCs whose fingerprints changed — the edited procedures and their transitive
callers — and splices the cached summaries for everything else.

This is the warm path of the analysis service
(:mod:`repro.service`): a long-lived worker that has analysed a program once
answers a request for a lightly edited version in the time of the edited
cone alone, and answers a repeated request by splicing every component.

Summaries are reused by reference, which is sound because summaries and the
transition formulas inside them are immutable: downstream components only
compose and join them into new formulas.

The store is also **persistable**: :meth:`IncrementalAnalyzer.save_store`
serializes the component records into one atomic entry of a
:class:`~repro.engine.storage.CacheStorage` (the service uses the result
cache's ``incremental`` namespace) and :meth:`IncrementalAnalyzer.load_store`
absorbs it back, so a restarted ``repro serve`` answers its first repeated
request by splicing every component instead of starting cold.  Persistence
mirrors the polyhedral memo snapshot (PR 4): the blob is guarded by a
caller-supplied fingerprint (the engine passes its code fingerprint — stale
analysis code reads as a cold start), written atomically with merge-on-save
semantics, and unpickled through the restricted loader of
:mod:`repro.polyhedra.cache` so a crafted blob in a shared cache directory
cannot execute code.  Loading also advances the process's fresh-symbol
counter past every index the saving process used, so newly minted auxiliary
symbols can never collide with symbols inside restored summaries.
"""

from __future__ import annotations

import pickle

import sympy

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from ..analysis import ProcedureContext
from ..formulas import TransitionFormula
from ..formulas.symbols import advance_fresh_counter, fresh_counter
from ..lang import ast, build_call_graph
from ..lang.fingerprint import procedure_fingerprints
from ..polyhedra.cache import restricted_loads
from .chora import AnalysisResult, ChoraOptions, analyze_component
from .height_analysis import HeightAnalysis
from .missing_base import transform_missing_base_cases
from .parallel import (
    configured_parallel_sccs,
    fork_available,
    last_schedule_report,
    run_component_dag,
)
from .summaries import ProcedureSummary

if TYPE_CHECKING:  # pragma: no cover - layering: engine imports core
    from ..engine.storage import CacheStorage

__all__ = ["IncrementalAnalyzer", "IncrementalReport", "store_stats"]

#: Default number of cached components (a few hundred programs' worth).
DEFAULT_COMPONENT_CAPACITY = 2048

#: Entry name of the persisted component store inside its storage namespace.
STORE_NAME = "incremental-summaries"

#: Bump on incompatible changes to the pickled store layout.
STORE_SCHEMA = 2

#: The class vocabulary a persisted component store may reference.  Component
#: records are procedure summaries and height analyses: formula trees over
#: polynomials and symbols, closed-form bounds (whose coefficients are sympy
#: expression trees), and the auxiliary dataclasses of the height analysis.
#: The sympy classes are enumerated individually — never by module prefix,
#: which would hand pickle's REDUCE opcode eval-style callables like
#: ``sympy.sympify`` — and each was checked to construct safely from
#: attacker-chosen arguments (``Add``/``Mul``/``Pow`` sympify strictly,
#: ``Symbol``/``Integer``/``Rational`` parse without evaluating; ``log``,
#: whose ``Function.__new__`` *does* evaluate string arguments, goes
#: through the guarded stand-in below instead).  Anything else — the
#: classic ``os.system`` reduce — fails to resolve and the store reads as
#: a cold start; :meth:`IncrementalAnalyzer.save_store` refuses to write a
#: blob this vocabulary cannot load back.
_STORE_ALLOWED_CLASSES = {
    ("builtins", "frozenset"),
    ("builtins", "set"),
    ("fractions", "Fraction"),
    ("repro.abstraction.symbolic_abstraction", "Inequation"),
    ("repro.core.height_analysis", "BoundSymbols"),
    ("repro.core.height_analysis", "HeightAnalysis"),
    ("repro.core.summaries", "BoundedTerm"),
    ("repro.core.summaries", "DepthBound"),
    ("repro.core.summaries", "ProcedureSummary"),
    ("repro.formulas.formula", "And"),
    ("repro.formulas.formula", "Atom"),
    ("repro.formulas.formula", "AtomKind"),
    ("repro.formulas.formula", "Exists"),
    ("repro.formulas.formula", "FalseFormula"),
    ("repro.formulas.formula", "Or"),
    ("repro.formulas.formula", "TrueFormula"),
    ("repro.formulas.polynomial", "Monomial"),
    ("repro.formulas.polynomial", "Polynomial"),
    ("repro.formulas.symbols", "Symbol"),
    ("repro.formulas.transition", "TransitionFormula"),
    ("repro.recurrence.cfinite", "ClosedForm"),
    ("repro.recurrence.exppoly", "ExpPoly"),
    ("sympy.core.add", "Add"),
    ("sympy.core.mul", "Mul"),
    ("sympy.core.numbers", "Half"),
    ("sympy.core.numbers", "Integer"),
    ("sympy.core.numbers", "NegativeOne"),
    ("sympy.core.numbers", "One"),
    ("sympy.core.numbers", "Rational"),
    ("sympy.core.numbers", "Zero"),
    ("sympy.core.power", "Pow"),
    ("sympy.core.symbol", "Symbol"),
}


class _GuardedLog(sympy.log):
    """A pickle stand-in for ``sympy.log`` that refuses non-sympy arguments.

    ``Function.__new__`` sympifies its arguments *non-strictly*, which
    evaluates strings as Python — so allowing the real ``log`` class would
    let a crafted REDUCE/NEWOBJ op execute code.  Legitimate blobs only
    ever apply ``log`` to already-unpickled sympy expressions; anything
    else is an attack and fails the load.
    """

    def __new__(cls, *args, **kwargs):
        if not all(isinstance(arg, sympy.Basic) for arg in args):
            raise pickle.UnpicklingError(
                "log arguments in a snapshot must be sympy expressions"
            )
        return sympy.log.__new__(sympy.log, *args, **kwargs)


class _GuardedMax(sympy.Max):
    """A pickle stand-in for ``sympy.Max`` (clamped depth bounds).

    Like ``log``, ``Max.__new__`` sympifies its arguments non-strictly, so
    string arguments would be evaluated; restrict it to already-unpickled
    sympy expressions.
    """

    def __new__(cls, *args, **kwargs):
        if not all(isinstance(arg, sympy.Basic) for arg in args):
            raise pickle.UnpicklingError(
                "Max arguments in a snapshot must be sympy expressions"
            )
        return sympy.Max.__new__(sympy.Max, *args, **kwargs)


_STORE_OVERRIDES = {
    ("sympy.functions.elementary.exponential", "log"): _GuardedLog,
    ("sympy.functions.elementary.miscellaneous", "Max"): _GuardedMax,
}


@dataclass(frozen=True)
class IncrementalReport:
    """Which procedures the last :meth:`IncrementalAnalyzer.analyze` ran."""

    analyzed: tuple[str, ...] = ()
    reused: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {"analyzed": list(self.analyzed), "reused": list(self.reused)}


@dataclass
class _ComponentRecord:
    """The cached outcome of analysing one call-graph SCC."""

    summaries: dict[str, ProcedureSummary]
    height_analyses: dict[str, HeightAnalysis] = field(default_factory=dict)


class IncrementalAnalyzer:
    """A stateful :func:`analyze_program` that reuses unchanged components.

    Instances are *not* thread-safe; the analysis service keeps one per
    worker process.  Results are indistinguishable from a fresh
    :func:`~repro.core.chora.analyze_program` run up to the numbering of
    fresh auxiliary symbols (which differs between any two runs and carries
    no meaning).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_COMPONENT_CAPACITY,
        parallel_sccs: int | None = None,
    ):
        self.capacity = max(1, int(capacity))
        #: SCC worker count for cache-miss components (``None``: read the
        #: process-wide configuration; ``0``/``1``: serial).  Splicing always
        #: runs in-process — only fingerprint misses fork.
        self.parallel_sccs = parallel_sccs
        self._store: OrderedDict[tuple, _ComponentRecord] = OrderedDict()
        self.last_report = IncrementalReport()

    # ------------------------------------------------------------------ #
    def analyze(
        self, program: ast.Program, options: ChoraOptions = ChoraOptions()
    ) -> AnalysisResult:
        """Analyse ``program``, splicing cached summaries where possible.

        Drop-in compatible with :func:`~repro.core.chora.analyze_program`;
        :attr:`last_report` records which procedures were actually re-run.
        """
        if options.transform_missing_base:
            # Fingerprints are taken over the transformed program: the
            # transformation is itself a pure function of the source, and
            # it is what the analysis actually sees.
            program = transform_missing_base_cases(program)
        fingerprints = procedure_fingerprints(program)
        procedures = {p.name: p for p in program.procedures}
        contexts = {
            name: ProcedureContext.of(procedure, program.global_names)
            for name, procedure in procedures.items()
        }
        graph = build_call_graph(program)
        components = graph.strongly_connected_components()
        options_print = options.fingerprint()

        def component_key(component: list[str]) -> tuple:
            return (options_print, tuple(fingerprints[name] for name in component))

        workers = (
            configured_parallel_sccs()
            if self.parallel_sccs is None
            else self.parallel_sccs
        )
        if workers > 1 and len(components) > 1 and fork_available():
            return self._analyze_parallel(
                program, graph, components, contexts, procedures, options,
                workers, component_key,
            )

        result = AnalysisResult(program, {}, contexts, graph)
        external: dict[str, TransitionFormula] = {}
        analyzed: list[str] = []
        reused: list[str] = []

        for component in components:
            key = component_key(component)
            record = self._store.get(key)
            if record is not None:
                self._store.move_to_end(key)
                self._splice(record, component, result, external)
                reused.extend(component)
                continue
            analyze_component(
                component, graph, contexts, procedures, external, result, options
            )
            self._remember(key, component, result)
            analyzed.extend(component)

        self.last_report = IncrementalReport(tuple(analyzed), tuple(reused))
        return result

    def _analyze_parallel(
        self,
        program: ast.Program,
        graph,
        components: list[list[str]],
        contexts: Mapping[str, ProcedureContext],
        procedures: Mapping[str, ast.Procedure],
        options: ChoraOptions,
        workers: int,
        component_key,
    ) -> AnalysisResult:
        """Splice cache hits in-process and fork the fingerprint misses."""

        def resolve(component: list[str]):
            record = self._store.get(component_key(component))
            if record is None:
                return None
            self._store.move_to_end(component_key(component))
            return record.summaries, record.height_analyses

        def on_analyzed(component: list[str], record) -> None:
            summaries, height_analyses = record
            self._store[component_key(component)] = _ComponentRecord(
                summaries=dict(summaries), height_analyses=dict(height_analyses)
            )
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)

        result = run_component_dag(
            program, graph, components, contexts, procedures, options,
            workers, resolve, on_analyzed,
        )
        analyzed: list[str] = []
        reused: list[str] = []
        report = last_schedule_report()
        for timing in report.timings if report is not None else ():
            (reused if timing.mode == "spliced" else analyzed).extend(timing.names)
        self.last_report = IncrementalReport(tuple(analyzed), tuple(reused))
        return result

    # ------------------------------------------------------------------ #
    @staticmethod
    def _splice(
        record: _ComponentRecord,
        component: list[str],
        result: AnalysisResult,
        external: dict[str, TransitionFormula],
    ) -> None:
        for name in component:
            summary = record.summaries[name]
            result.summaries[name] = summary
            # Reconstruct the call interpretation exactly as analyze_program
            # publishes it (recursive summaries instantiate fresh height and
            # exponential symbols on every use).
            external[name] = (
                summary.instantiate(None) if summary.is_recursive else summary.transition
            )
        result.height_analyses.update(record.height_analyses)

    def _remember(
        self, key: tuple, component: list[str], result: AnalysisResult
    ) -> None:
        record = _ComponentRecord(
            summaries={name: result.summaries[name] for name in component},
            height_analyses={
                name: result.height_analyses[name]
                for name in component
                if name in result.height_analyses
            },
        )
        self._store[key] = record
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)

    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """Store size and the last run's analyse/reuse split."""
        return {
            "components": len(self._store),
            "capacity": self.capacity,
            "last": self.last_report.to_dict(),
        }

    def clear(self) -> None:
        self._store.clear()
        self.last_report = IncrementalReport()

    # ------------------------------------------------------------------ #
    # Persistence (CacheStorage-backed, mirroring the polyhedra memo
    # snapshot: fingerprint-guarded, merge-on-save, restricted unpickling)
    # ------------------------------------------------------------------ #
    def save_store(self, storage: "CacheStorage", fingerprint: str) -> int:
        """Persist the component store into ``storage``; returns components.

        An existing store with the same fingerprint is merged in first:
        component records are pure functions of their keys, so merged
        content is always consistent, and this analyzer's records win on
        overlap.  (The read-merge-write itself is last-writer-wins between
        *separate* pools sharing one cache directory — a pool's own workers
        stop sequentially — so a concurrent save can drop the other pool's
        components from the persisted copy; that costs a future warm start,
        never correctness.)  The persisted store is bounded by
        :attr:`capacity`, keeping the most recently contributed components,
        so a long-lived shared directory cannot grow the blob — and every
        future start-up's deserialization — without limit.  The saved
        fresh-symbol high-water mark is the max over every contributor, so
        any loader stays collision-free.  Write failures are swallowed — a
        broken store must never sink an analysis run — and reported as 0.
        """
        if not self._store:
            # Nothing to persist (e.g. a worker that only served cache
            # hits): don't replace a useful store with an empty one.
            return 0
        merged_payload = _load_store_payload(storage, fingerprint)
        components = {
            key: (record.summaries, record.height_analyses)
            for key, record in merged_payload.get("components", ())
        }
        for key, record in self._store.items():
            # Re-insert so this analyzer's records count as the newest.
            components.pop(key, None)
            components[key] = (record.summaries, record.height_analyses)
        if len(components) > self.capacity:
            components = dict(list(components.items())[-self.capacity :])
        payload = {
            "schema": STORE_SCHEMA,
            "fingerprint": fingerprint,
            "fresh_counter": max(
                fresh_counter(), int(merged_payload.get("fresh_counter", 0) or 0)
            ),
            "components": list(components.items()),
        }
        try:
            data = pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
            # Refuse to write a blob the restricted vocabulary cannot load
            # back (a summary embedding an unenumerated sympy class would
            # otherwise clobber a previously *loadable* store with one that
            # every future start-up rejects wholesale).
            restricted_loads(data, _STORE_ALLOWED_CLASSES, _STORE_OVERRIDES)
            storage.write(STORE_NAME, data)
        except Exception:
            return 0
        return len(components)

    def load_store(self, storage: "CacheStorage", fingerprint: str) -> int:
        """Absorb a persisted component store; returns components loaded.

        Components already present locally are kept (they are at least as
        fresh), absorption stops at :attr:`capacity` instead of evicting,
        and a store written under a different fingerprint — different
        analysis code — is ignored.  The fresh-symbol counter is advanced
        past the saving process's high-water mark before any record is
        installed.
        """
        payload = _load_store_payload(storage, fingerprint)
        components = payload.get("components") or []
        if not components:
            return 0
        advance_fresh_counter(payload.get("fresh_counter", 0))
        loaded = 0
        for key, record in components:
            if len(self._store) >= self.capacity:
                break
            if key in self._store:
                continue
            self._store[key] = record
            loaded += 1
        return loaded


def _load_store_payload(storage: "CacheStorage", fingerprint: str) -> dict:
    """The persisted store payload, or ``{}`` when absent/stale/corrupt.

    The result is *sanitized*, not just unpickled: ``components`` is a list
    of ``(hashable key, _ComponentRecord)`` pairs and ``fresh_counter`` an
    ``int``, with every malformed entry dropped.  A blob that unpickles
    under the restricted vocabulary but carries broken field shapes must
    degrade to a (partial) cold start, never raise — a worker loads the
    store before its ready handshake, and an exception there would crash
    every worker of a restarted service until the store is cleared.
    """
    try:
        data = storage.read(STORE_NAME)
    except Exception:
        return {}
    if data is None:
        return {}
    try:
        payload = restricted_loads(data, _STORE_ALLOWED_CLASSES, _STORE_OVERRIDES)
    except Exception:
        # Truncated blob, incompatible pickle, or a class outside the
        # allowed vocabulary: treat as a cold start.
        return {}
    if not isinstance(payload, dict):
        return {}
    if payload.get("schema") != STORE_SCHEMA:
        return {}
    if payload.get("fingerprint") != fingerprint:
        return {}
    components = payload.get("components")
    cleaned: list[tuple] = []
    if isinstance(components, (list, tuple)):
        for entry in components:
            try:
                key, (summaries, height_analyses) = entry
                hash(key)
                cleaned.append(
                    (
                        key,
                        _ComponentRecord(
                            summaries=dict(summaries),
                            height_analyses=dict(height_analyses),
                        ),
                    )
                )
            except Exception:
                continue
    try:
        counter = int(payload.get("fresh_counter", 0) or 0)
    except Exception:
        counter = 0
    return {
        "schema": STORE_SCHEMA,
        "fingerprint": fingerprint,
        "fresh_counter": counter,
        "components": cleaned,
    }


def store_stats(storage: "CacheStorage", fingerprint: str) -> dict[str, Any]:
    """A JSON-ready description of the persisted store (for cache stats)."""
    try:
        size = storage.size_of(STORE_NAME)
    except Exception:
        size = 0
    payload = _load_store_payload(storage, fingerprint) if size else {}
    components = payload.get("components") or []
    return {
        "present": size > 0,
        "bytes": size,
        "components": len(components),
        "procedures": sum(len(record.summaries) for _, record in components),
    }
