"""Incremental re-analysis: re-summarize only what an edit could change.

:func:`~repro.core.chora.analyze_program` processes the call-graph SCCs of a
program in topological order, each component depending only on its callees'
summaries.  That structure makes the analysis incremental for free once each
component is content-addressed: :class:`IncrementalAnalyzer` keys every SCC
by its members' :mod:`~repro.lang.fingerprint` digests (body hash + callees'
hashes, i.e. the whole dependency cone) and keeps the resulting
:class:`~repro.core.summaries.ProcedureSummary` objects in a bounded
in-process store.  Re-analyzing an edited program then re-runs exactly the
SCCs whose fingerprints changed — the edited procedures and their transitive
callers — and splices the cached summaries for everything else.

This is the warm path of the analysis service
(:mod:`repro.service`): a long-lived worker that has analysed a program once
answers a request for a lightly edited version in the time of the edited
cone alone, and answers a repeated request by splicing every component.

Summaries are reused by reference, which is sound because summaries and the
transition formulas inside them are immutable: downstream components only
compose and join them into new formulas.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..analysis import ProcedureContext
from ..formulas import TransitionFormula
from ..lang import ast, build_call_graph
from ..lang.fingerprint import procedure_fingerprints
from .chora import AnalysisResult, ChoraOptions, analyze_component
from .height_analysis import HeightAnalysis
from .missing_base import transform_missing_base_cases
from .summaries import ProcedureSummary

__all__ = ["IncrementalAnalyzer", "IncrementalReport"]

#: Default number of cached components (a few hundred programs' worth).
DEFAULT_COMPONENT_CAPACITY = 2048


@dataclass(frozen=True)
class IncrementalReport:
    """Which procedures the last :meth:`IncrementalAnalyzer.analyze` ran."""

    analyzed: tuple[str, ...] = ()
    reused: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {"analyzed": list(self.analyzed), "reused": list(self.reused)}


@dataclass
class _ComponentRecord:
    """The cached outcome of analysing one call-graph SCC."""

    summaries: dict[str, ProcedureSummary]
    height_analyses: dict[str, HeightAnalysis] = field(default_factory=dict)


class IncrementalAnalyzer:
    """A stateful :func:`analyze_program` that reuses unchanged components.

    Instances are *not* thread-safe; the analysis service keeps one per
    worker process.  Results are indistinguishable from a fresh
    :func:`~repro.core.chora.analyze_program` run up to the numbering of
    fresh auxiliary symbols (which differs between any two runs and carries
    no meaning).
    """

    def __init__(self, capacity: int = DEFAULT_COMPONENT_CAPACITY):
        self.capacity = max(1, int(capacity))
        self._store: OrderedDict[tuple, _ComponentRecord] = OrderedDict()
        self.last_report = IncrementalReport()

    # ------------------------------------------------------------------ #
    def analyze(
        self, program: ast.Program, options: ChoraOptions = ChoraOptions()
    ) -> AnalysisResult:
        """Analyse ``program``, splicing cached summaries where possible.

        Drop-in compatible with :func:`~repro.core.chora.analyze_program`;
        :attr:`last_report` records which procedures were actually re-run.
        """
        if options.transform_missing_base:
            # Fingerprints are taken over the transformed program: the
            # transformation is itself a pure function of the source, and
            # it is what the analysis actually sees.
            program = transform_missing_base_cases(program)
        fingerprints = procedure_fingerprints(program)
        procedures = {p.name: p for p in program.procedures}
        contexts = {
            name: ProcedureContext.of(procedure, program.global_names)
            for name, procedure in procedures.items()
        }
        graph = build_call_graph(program)
        result = AnalysisResult(program, {}, contexts, graph)
        external: dict[str, TransitionFormula] = {}
        analyzed: list[str] = []
        reused: list[str] = []
        options_print = options.fingerprint()

        for component in graph.strongly_connected_components():
            key = (options_print, tuple(fingerprints[name] for name in component))
            record = self._store.get(key)
            if record is not None:
                self._store.move_to_end(key)
                self._splice(record, component, result, external)
                reused.extend(component)
                continue
            analyze_component(
                component, graph, contexts, procedures, external, result, options
            )
            self._remember(key, component, result)
            analyzed.extend(component)

        self.last_report = IncrementalReport(tuple(analyzed), tuple(reused))
        return result

    # ------------------------------------------------------------------ #
    @staticmethod
    def _splice(
        record: _ComponentRecord,
        component: list[str],
        result: AnalysisResult,
        external: dict[str, TransitionFormula],
    ) -> None:
        for name in component:
            summary = record.summaries[name]
            result.summaries[name] = summary
            # Reconstruct the call interpretation exactly as analyze_program
            # publishes it (recursive summaries instantiate fresh height and
            # exponential symbols on every use).
            external[name] = (
                summary.instantiate(None) if summary.is_recursive else summary.transition
            )
        result.height_analyses.update(record.height_analyses)

    def _remember(
        self, key: tuple, component: list[str], result: AnalysisResult
    ) -> None:
        record = _ComponentRecord(
            summaries={name: result.summaries[name] for name in component},
            height_analyses={
                name: result.height_analyses[name]
                for name in component
                if name in result.height_analyses
            },
        )
        self._store[key] = record
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)

    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """Store size and the last run's analyse/reuse split."""
        return {
            "components": len(self._store),
            "capacity": self.capacity,
            "last": self.last_report.to_dict(),
        }

    def clear(self) -> None:
        self._store.clear()
        self.last_report = IncrementalReport()
