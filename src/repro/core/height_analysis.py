"""Height-based recurrence analysis: Alg. 2 and its mutual-recursion variant (§4.1, §4.4).

Given a strongly connected component ``{P_1, ..., P_m}`` of the call graph,
the analysis

1. summarizes the *base cases* (``Summary(P_i, false)``) and abstracts them to
   find candidate relational expressions ``tau_{i,k}`` that are bounded above
   by zero in the base case;
2. forms the *hypothetical summary* ``phi_call(P_i) = AND_k (tau_{i,k} <=
   b_{i,k}(h)  /\\  b_{i,k}(h) >= 0)`` with fresh symbols for the unknown
   bounding functions;
3. re-analyses each procedure body with the hypothetical summaries standing
   in for the recursive calls (``phi_rec``), conjoins the defining equations
   ``b_{i,k}(h+1) = tau_{i,k}``, and abstracts the result onto the bounding
   function symbols to obtain *candidate recurrence inequations*.

The companion module :mod:`repro.core.stratify` (Alg. 3) filters the
candidates into a stratified recurrence; solving it yields the bounding
functions used in the procedure summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..abstraction import AbstractionOptions, Inequation, abstract, abstract_many
from ..analysis import ProcedureContext, summarize_procedure
from ..formulas import (
    RETURN_VARIABLE,
    Formula,
    Polynomial,
    Symbol,
    TransitionFormula,
    atom_eq,
    atom_ge,
    atom_le,
    conjoin,
    fresh,
    post,
    pre,
)
from ..lang import ast

__all__ = ["BoundSymbols", "HeightAnalysis", "run_height_analysis", "summary_keep_symbols"]


def summary_keep_symbols(context: ProcedureContext) -> list[Symbol]:
    """The symbols a procedure summary may mention (§4.1).

    Pre- and post-state copies of the globals, unprimed copies of the scalar
    parameters, and the primed return value.
    """
    keep: list[Symbol] = []
    for name in context.global_names:
        keep.append(pre(name))
        keep.append(post(name))
    for name in context.procedure.scalar_parameters:
        keep.append(pre(name))
    keep.append(post(RETURN_VARIABLE))
    return keep


@dataclass(frozen=True)
class BoundSymbols:
    """The pair of fresh symbols standing for ``b_{i,k}(h)`` and ``b_{i,k}(h+1)``."""

    procedure: str
    index: int
    term: Polynomial
    at_h: Symbol
    at_h_plus_1: Symbol


@dataclass
class HeightAnalysis:
    """Everything produced by the candidate-extraction phase (Alg. 2)."""

    #: Procedures of the analysed SCC, in a fixed order.
    procedures: tuple[str, ...]
    #: Base-case summaries ``Summary(P_i, false)``.
    base_summaries: dict[str, TransitionFormula] = field(default_factory=dict)
    #: Hypothetical summaries ``phi_call(P_i)``.
    hypothetical_summaries: dict[str, TransitionFormula] = field(default_factory=dict)
    #: Recursive-case summaries ``phi_rec(P_i)`` (hypothetical summaries at calls).
    recursive_summaries: dict[str, TransitionFormula] = field(default_factory=dict)
    #: Bounding-function symbols per procedure, aligned with candidate terms.
    bound_symbols: dict[str, list[BoundSymbols]] = field(default_factory=dict)
    #: Candidate recurrence inequations over the bounding-function symbols.
    candidate_inequations: list[Inequation] = field(default_factory=list)

    def all_height_symbols(self) -> list[Symbol]:
        return [b.at_h for bounds in self.bound_symbols.values() for b in bounds]

    def symbols_for(self, procedure: str) -> list[BoundSymbols]:
        return self.bound_symbols.get(procedure, [])


def _candidate_terms(
    inequations: Sequence[Inequation], keep: Sequence[Symbol]
) -> list[Polynomial]:
    """Relational expressions bounded above by zero in the base case.

    Every inequation ``p <= 0`` contributes ``p``; every equation contributes
    both ``p`` and ``-p``.  Terms that do not mention any symbol of interest
    (pure constants) are dropped.
    """
    terms: list[Polynomial] = []
    seen: set[Polynomial] = set()
    for inequation in inequations:
        candidates = [inequation.polynomial]
        if inequation.is_equality:
            candidates.append(-inequation.polynomial)
        for candidate in candidates:
            if not candidate.symbols:
                continue
            if candidate in seen:
                continue
            seen.add(candidate)
            terms.append(candidate)
    return terms


def run_height_analysis(
    contexts: Mapping[str, ProcedureContext],
    external_summaries: Mapping[str, TransitionFormula],
    procedures: Mapping[str, ast.Procedure],
    options: AbstractionOptions = AbstractionOptions(),
) -> HeightAnalysis:
    """Alg. 2 (single procedure) / §4.4 (mutual recursion), candidate extraction.

    ``contexts`` maps the names of the SCC's procedures to their analysis
    contexts; ``external_summaries`` provides transition formulas for calls
    that leave the SCC (already analysed procedures).
    """
    ordered = tuple(sorted(contexts))
    analysis = HeightAnalysis(procedures=ordered)

    # ----------------------------------------------------------------- #
    # Lines (1)-(6): base-case summaries and candidate terms.
    # ----------------------------------------------------------------- #
    bottom = {name: TransitionFormula.bottom() for name in ordered}
    for name in ordered:
        context = contexts[name]
        base = summarize_procedure(
            context, bottom, external_summaries, procedures, options
        )
        analysis.base_summaries[name] = base
        keep = summary_keep_symbols(context)
        if base.is_bottom:
            # No base case (§4.5): no candidate terms for this procedure.
            analysis.bound_symbols[name] = []
            continue
        base_abstraction = abstract(base.to_formula(context.summary_variables), keep, options)
        if base_abstraction.polyhedron.is_empty():
            analysis.bound_symbols[name] = []
            continue
        terms = _candidate_terms(list(base_abstraction), keep)
        bounds: list[BoundSymbols] = []
        for index, term in enumerate(terms):
            bounds.append(
                BoundSymbols(
                    procedure=name,
                    index=index,
                    term=term,
                    at_h=fresh(f"b_{name}_{index}_h"),
                    at_h_plus_1=fresh(f"b_{name}_{index}_h1"),
                )
            )
        analysis.bound_symbols[name] = bounds

    # ----------------------------------------------------------------- #
    # Line (7): hypothetical summaries phi_call(P_i).
    # ----------------------------------------------------------------- #
    for name in ordered:
        context = contexts[name]
        conjuncts: list[Formula] = []
        for bound in analysis.bound_symbols[name]:
            b_h = Polynomial.var(bound.at_h)
            conjuncts.append(atom_le(bound.term, b_h))
            conjuncts.append(atom_ge(b_h, 0))
        if not conjuncts:
            # A procedure with no base case gets the trivial (havoc) summary.
            analysis.hypothetical_summaries[name] = TransitionFormula.havoc(
                context.summary_variables
            )
            continue
        footprint = list(context.global_names) + [RETURN_VARIABLE] + list(
            context.procedure.scalar_parameters
        )
        analysis.hypothetical_summaries[name] = TransitionFormula.relation(
            conjoin(conjuncts), footprint
        )

    # ----------------------------------------------------------------- #
    # Lines (8)-(14): phi_rec, phi_ext, and candidate recurrence inequations.
    # ----------------------------------------------------------------- #
    all_height_symbols = analysis.all_height_symbols()
    for name in ordered:
        context = contexts[name]
        recursive = summarize_procedure(
            context,
            analysis.hypothetical_summaries,
            external_summaries,
            procedures,
            options,
        )
        analysis.recursive_summaries[name] = recursive
        if recursive.is_bottom:
            continue
        bounds = analysis.bound_symbols[name]
        if not bounds:
            continue
        # The bounding functions are non-negative for every height (they start
        # at zero and their recurrences have non-negative coefficients); this
        # global fact is what lets the base-case disjunct of phi_rec join with
        # the recursive disjuncts without losing the recurrence inequations.
        nonnegativity = [
            atom_ge(Polynomial.var(symbol), 0) for symbol in all_height_symbols
        ]
        extension = conjoin(
            [recursive.to_formula(context.summary_variables)]
            + nonnegativity
            + [
                atom_eq(Polynomial.var(bound.at_h_plus_1), bound.term)
                for bound in bounds
            ]
        )
        # One keep set per bounding symbol, but a single cube enumeration of
        # the (large) extension formula shared across all of them.
        keep_sets = [
            list(all_height_symbols) + [bound.at_h_plus_1] for bound in bounds
        ]
        abstractions = abstract_many(extension, keep_sets, options)
        for bound, extension_abstraction in zip(bounds, abstractions):
            for inequation in extension_abstraction:
                if bound.at_h_plus_1 in inequation.polynomial.symbols:
                    analysis.candidate_inequations.append(inequation)
    return analysis
