"""DAG-parallel scheduling of call-graph SCCs for a *single* analysis.

:func:`~repro.core.chora.analyze_program` walks the call-graph condensation
in topological order, one SCC at a time.  The batch engine and the warm
worker pool parallelise *across* programs, but one large program still runs
serially.  This module parallelises *within* a program: independent SCCs —
components with no dependency path between them — are analysed concurrently
and their summaries merged at the join points of the condensation DAG.

Workers are plain ``os.fork`` children, not :mod:`multiprocessing` processes:
both the batch engine and the warm pool run analyses inside daemonic worker
processes, which may not start multiprocessing children, while a raw fork is
always available (on POSIX) and inherits the parsed program, contexts and
the already-published callee summaries by copy-on-write — no input pickling
at all.  A child analyses exactly one component, pickles the component's
summaries back through a pipe, and ``_exit``\\ s; the parent merges records
as they arrive and launches newly unblocked components.

Determinism contract (pinned by ``tests/integration/test_determinism.py``):
verdicts, bounds and rendered tables are bit-identical to a serial run at
any worker count.  Like the incremental splice path, the *numbering* of
fresh auxiliary symbols may differ between runs — it differs between any two
serial runs of different programs too and carries no meaning.  Three
mechanisms make this safe:

- every child minting fresh symbols works in a region of the counter space
  disjoint from every other concurrent child (a per-launch stride added to
  the fork-time counter; the parent advances past each child's high-water
  mark on merge), so two summaries can never accidentally share an auxiliary
  symbol that a serial run would have kept distinct;
- the final ``summaries``/``height_analyses`` dicts are rebuilt in the
  serial SCC order, so JSON payload key order never depends on completion
  order;
- any child failure — an analysis error, a truncated pipe, a crash —
  discards all parallel state and re-runs the whole program serially, so
  even error behaviour (message text included) is exactly the serial path's.

The worker count is *not* part of :class:`~repro.core.chora.ChoraOptions`
and never enters cache keys: results are identical, so a parallel run may
freely share result-cache entries and incremental-store records with serial
runs.  Configuration travels through :func:`set_parallel_sccs` (in-process)
or the ``REPRO_PARALLEL_SCCS`` environment variable (inherited by engine
worker processes).
"""

from __future__ import annotations

import os
import pickle
import select
import signal
import time
import traceback
from bisect import insort
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from ..analysis import ProcedureContext
from ..formulas import TransitionFormula
from ..formulas.symbols import advance_fresh_counter, fresh_counter
from ..lang import ast
from ..lang.callgraph import CallGraph, build_call_graph
from .chora import AnalysisResult, ChoraOptions, analyze_component
from .missing_base import transform_missing_base_cases
from .summaries import ProcedureSummary

__all__ = [
    "PARALLEL_SCCS_ENV",
    "ComponentTiming",
    "ParallelScheduleReport",
    "analyze_program_parallel",
    "configured_parallel_sccs",
    "fork_available",
    "last_schedule_report",
    "resolve_worker_request",
    "run_component_dag",
    "set_parallel_sccs",
    "take_schedule_report",
]

PARALLEL_SCCS_ENV = "REPRO_PARALLEL_SCCS"

#: Fresh-symbol region reserved per forked child (see the launch-counter
#: argument in `_fork_component`): children may mint up to this many fresh
#: symbols each before two concurrent children could collide.  Real
#: components mint a few dozen; 2^24 is unbounded-integer-cheap headroom.
_FRESH_STRIDE = 1 << 24

#: A child whose payload exceeds the pipe buffer blocks in `os.write` until
#: the parent drains it, so reads happen continuously in the merge loop.
_PIPE_CHUNK = 1 << 16

_override: Optional[int] = None
_last_report: Optional["ParallelScheduleReport"] = None

#: (summaries, height_analyses) for one component — what a child sends back
#: and what an incremental resolve hook returns.
ComponentRecord = tuple[dict[str, ProcedureSummary], dict[str, Any]]


def fork_available() -> bool:
    """True when the forked scheduler can run (POSIX ``os.fork``)."""
    return hasattr(os, "fork")


def resolve_worker_request(value: Any) -> int:
    """Normalise a ``--parallel-sccs`` value: ``'auto'``/None → CPU count."""
    if value is None or value == "auto":
        return os.cpu_count() or 1
    workers = int(value)
    if workers < 0:
        raise ValueError(f"parallel-sccs worker count must be >= 0, got {workers}")
    return workers


def set_parallel_sccs(workers: Optional[int]) -> Optional[int]:
    """Set the process-wide SCC worker count; returns the previous override.

    ``None`` removes the override (falling back to ``REPRO_PARALLEL_SCCS``,
    then serial); ``0`` and ``1`` both mean serial.
    """
    global _override
    previous = _override
    _override = None if workers is None else max(0, int(workers))
    return previous


def configured_parallel_sccs() -> int:
    """The effective SCC worker count: override, else environment, else 0."""
    if _override is not None:
        return _override
    raw = os.environ.get(PARALLEL_SCCS_ENV, "").strip()
    if not raw:
        return 0
    try:
        return resolve_worker_request(raw if raw == "auto" else int(raw))
    except ValueError:
        return 0


@dataclass(frozen=True)
class ComponentTiming:
    """How one SCC was completed: its members, wall time and execution mode.

    ``mode`` is ``forked`` (analysed in a child), ``inline`` (analysed in
    the scheduling process), ``spliced`` (resolved from an incremental
    record) or ``serial`` (no scheduler involved at all).
    """

    names: tuple[str, ...]
    seconds: float
    mode: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "procedures": list(self.names),
            "seconds": round(self.seconds, 6),
            "mode": self.mode,
        }


@dataclass(frozen=True)
class ParallelScheduleReport:
    """Per-SCC timing of the last scheduled analysis (ordered serially)."""

    workers: int
    timings: tuple[ComponentTiming, ...] = ()
    fallback: bool = False

    @property
    def forked_components(self) -> int:
        return sum(1 for t in self.timings if t.mode == "forked")

    def to_dict(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "fallback": self.fallback,
            "components": [t.to_dict() for t in self.timings],
        }


def last_schedule_report() -> Optional[ParallelScheduleReport]:
    return _last_report


def take_schedule_report() -> Optional[ParallelScheduleReport]:
    """Pop the last report (the warm worker attaches it to one reply)."""
    global _last_report
    report, _last_report = _last_report, None
    return report


def analyze_program_parallel(
    program: ast.Program,
    options: ChoraOptions = ChoraOptions(),
    workers: Optional[int] = None,
) -> AnalysisResult:
    """Like :func:`~repro.core.chora.analyze_program`, scheduling independent
    SCCs across ``workers`` forked children (default: the configured count).

    With ``workers <= 1``, on platforms without ``fork``, or for programs
    whose condensation is a chain, this degenerates to the serial pass.
    """
    if workers is None:
        workers = configured_parallel_sccs()
    if options.transform_missing_base:
        program = transform_missing_base_cases(program)
    procedures = {p.name: p for p in program.procedures}
    contexts = {
        name: ProcedureContext.of(procedure, program.global_names)
        for name, procedure in procedures.items()
    }
    graph = build_call_graph(program)
    components = graph.strongly_connected_components()
    return run_component_dag(
        program, graph, components, contexts, procedures, options, workers
    )


# --------------------------------------------------------------------------- #
# The scheduler
# --------------------------------------------------------------------------- #


class _ParallelFallback(Exception):
    """Any parallel-path failure: discard everything, re-run serially."""


@dataclass
class _Child:
    pid: int
    fd: int
    index: int
    buffer: bytearray


def run_component_dag(
    program: ast.Program,
    graph: CallGraph,
    components: list[list[str]],
    contexts: Mapping[str, ProcedureContext],
    procedures: Mapping[str, ast.Procedure],
    options: ChoraOptions,
    workers: int,
    resolve: Optional[Callable[[list[str]], Optional[ComponentRecord]]] = None,
    on_analyzed: Optional[Callable[[list[str], ComponentRecord], None]] = None,
) -> AnalysisResult:
    """Analyse ``components`` (already in dependency-first order) and merge.

    ``resolve`` may answer a component from a cache (the incremental splice
    path) — it runs in the scheduling process only.  ``on_analyzed`` is
    invoked in the scheduling process for every *freshly analysed* component
    (inline or forked), in a deterministic order for inline/serial execution
    and in completion order for forked children.  The resulting
    :class:`AnalysisResult` dictionaries are ordered exactly as a serial run
    would order them; :func:`last_schedule_report` describes the schedule.
    """
    result = AnalysisResult(program, {}, dict(contexts), graph)
    external: dict[str, TransitionFormula] = {}
    use_fork = workers > 1 and len(components) > 1 and fork_available()
    fallback = False
    if use_fork:
        try:
            timings = _schedule_forked(
                program, graph, components, contexts, procedures, options,
                workers, resolve, on_analyzed, result, external,
            )
        except _ParallelFallback:
            # Start over from scratch: serial semantics are authoritative,
            # including for errors, so nothing partial may survive.
            fallback = True
            result = AnalysisResult(program, {}, dict(contexts), graph)
            external = {}
            timings = _run_serial(
                graph, components, contexts, procedures, options,
                resolve, on_analyzed, result, external,
            )
    else:
        timings = _run_serial(
            graph, components, contexts, procedures, options,
            resolve, on_analyzed, result, external,
        )
    global _last_report
    _last_report = ParallelScheduleReport(workers, tuple(timings), fallback)
    return result


def _run_serial(
    graph: CallGraph,
    components: list[list[str]],
    contexts: Mapping[str, ProcedureContext],
    procedures: Mapping[str, ast.Procedure],
    options: ChoraOptions,
    resolve: Optional[Callable[[list[str]], Optional[ComponentRecord]]],
    on_analyzed: Optional[Callable[[list[str], ComponentRecord], None]],
    result: AnalysisResult,
    external: dict[str, TransitionFormula],
) -> list[ComponentTiming]:
    """The exact serial pass of ``analyze_program`` with optional splicing."""
    timings: list[ComponentTiming] = []
    for component in components:
        record = resolve(component) if resolve is not None else None
        if record is not None:
            _publish(component, record, result, external)
            timings.append(ComponentTiming(tuple(component), 0.0, "spliced"))
            continue
        started = time.perf_counter()
        analyze_component(
            component, graph, contexts, procedures, external, result, options
        )
        elapsed = time.perf_counter() - started
        if on_analyzed is not None:
            on_analyzed(component, _extract(component, result))
        timings.append(ComponentTiming(tuple(component), elapsed, "serial"))
    return timings


def _publish(
    component: list[str],
    record: ComponentRecord,
    result: AnalysisResult,
    external: dict[str, TransitionFormula],
) -> None:
    """Install a component record exactly as the serial analysis publishes it
    (recursive summaries instantiate fresh symbols on every use)."""
    summaries, height_analyses = record
    for name in component:
        summary = summaries[name]
        result.summaries[name] = summary
        external[name] = (
            summary.instantiate(None) if summary.is_recursive else summary.transition
        )
    result.height_analyses.update(height_analyses)


def _extract(component: list[str], result: AnalysisResult) -> ComponentRecord:
    return (
        {name: result.summaries[name] for name in component},
        {
            name: result.height_analyses[name]
            for name in component
            if name in result.height_analyses
        },
    )


def _component_dag(
    components: list[list[str]], graph: CallGraph
) -> tuple[list[set[int]], list[set[int]]]:
    """Condensation edges as (dependencies, dependents) index sets."""
    index_of = {
        name: i for i, component in enumerate(components) for name in component
    }
    dependencies: list[set[int]] = [set() for _ in components]
    dependents: list[set[int]] = [set() for _ in components]
    for i, component in enumerate(components):
        for name in component:
            for callee in graph.callees(name):
                j = index_of[callee]
                if j != i:
                    dependencies[i].add(j)
                    dependents[j].add(i)
    return dependencies, dependents


def _schedule_forked(
    program: ast.Program,
    graph: CallGraph,
    components: list[list[str]],
    contexts: Mapping[str, ProcedureContext],
    procedures: Mapping[str, ast.Procedure],
    options: ChoraOptions,
    workers: int,
    resolve: Optional[Callable[[list[str]], Optional[ComponentRecord]]],
    on_analyzed: Optional[Callable[[list[str], ComponentRecord], None]],
    result: AnalysisResult,
    external: dict[str, TransitionFormula],
) -> list[ComponentTiming]:
    dependencies, dependents = _component_dag(components, graph)
    n = len(components)
    remaining = [len(d) for d in dependencies]
    ready = sorted(i for i in range(n) if not remaining[i])
    modes = [""] * n
    seconds = [0.0] * n
    completed = 0
    launches = 0
    children: dict[int, _Child] = {}  # read fd -> child

    def finish(index: int, record: ComponentRecord, mode: str, elapsed: float) -> None:
        nonlocal completed
        if mode != "inline":  # analyze_component already published inline runs
            _publish(components[index], record, result, external)
        if mode in ("inline", "forked") and on_analyzed is not None:
            on_analyzed(components[index], record)
        modes[index] = mode
        seconds[index] = elapsed
        completed += 1
        for j in sorted(dependents[index]):
            remaining[j] -= 1
            if not remaining[j]:
                insort(ready, j)

    try:
        while completed < n:
            # Splices are instant: resolve every cached ready component
            # before spending a fork on anything (their completion may
            # unblock further components, hence the repeat).
            progressed = True
            while progressed and resolve is not None:
                progressed = False
                for k, index in enumerate(ready):
                    record = resolve(components[index])
                    if record is not None:
                        del ready[k]
                        finish(index, record, "spliced", 0.0)
                        progressed = True
                        break
            # Launch children for ready components, up to the worker count.
            while ready and len(children) < workers:
                if not children and len(ready) == 1:
                    # A lone ready component with nothing in flight: forking
                    # buys no overlap, so run it in-process (this also makes
                    # chain-shaped condensations run fork-free).
                    index = ready.pop(0)
                    started = time.perf_counter()
                    analyze_component(
                        components[index], graph, contexts, procedures,
                        external, result, options,
                    )
                    elapsed = time.perf_counter() - started
                    finish(index, _extract(components[index], result), "inline", elapsed)
                    break  # re-run splice resolution for what this unblocked
                index = ready.pop(0)
                child = _fork_component(
                    program, graph, components[index], index, contexts,
                    procedures, external, options, launches,
                )
                launches += 1
                children[child.fd] = child
            if completed >= n:
                break
            if not children:
                if ready:
                    continue
                raise _ParallelFallback("scheduler stalled with work remaining")
            _drain_children(children, finish)
    except BaseException:
        _reap_children(children)
        raise
    # Rebuild the result dictionaries in serial SCC order so payload key
    # order never depends on which child finished first.
    result.summaries = {
        name: result.summaries[name]
        for component in components
        for name in component
    }
    result.height_analyses = {
        name: result.height_analyses[name]
        for component in components
        for name in component
        if name in result.height_analyses
    }
    return [
        ComponentTiming(tuple(components[i]), seconds[i], modes[i]) for i in range(n)
    ]


def _fork_component(
    program: ast.Program,
    graph: CallGraph,
    component: list[str],
    index: int,
    contexts: Mapping[str, ProcedureContext],
    procedures: Mapping[str, ast.Procedure],
    external: dict[str, TransitionFormula],
    options: ChoraOptions,
    launch: int,
) -> _Child:
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        # ----- child ------------------------------------------------------
        code = 0
        try:
            os.close(read_fd)
            try:
                # Claim a fresh-symbol region disjoint from every concurrent
                # sibling: the counter at fork time covers everything minted
                # so far, launch numbers are strictly increasing, and each
                # child mints far fewer than _FRESH_STRIDE symbols — so
                # launch k's region starts above launch j's highest possible
                # index for every j < k.
                advance_fresh_counter(fresh_counter() + (launch + 1) * _FRESH_STRIDE)
                started = time.perf_counter()
                record = _child_analyze(
                    program, graph, component, contexts, procedures, external, options
                )
                payload = pickle.dumps(
                    ("ok", record, fresh_counter(), time.perf_counter() - started),
                    pickle.HIGHEST_PROTOCOL,
                )
            except BaseException:
                payload = pickle.dumps(
                    ("error", traceback.format_exc(limit=40)), pickle.HIGHEST_PROTOCOL
                )
            _write_all(write_fd, payload)
            os.close(write_fd)
        except BaseException:
            code = 1
        finally:
            # _exit: no atexit hooks, no stream flushing — the child must
            # not run any teardown belonging to the forked-from process.
            os._exit(code)
    # ----- parent ---------------------------------------------------------
    os.close(write_fd)
    return _Child(pid=pid, fd=read_fd, index=index, buffer=bytearray())


def _child_analyze(
    program: ast.Program,
    graph: CallGraph,
    component: list[str],
    contexts: Mapping[str, ProcedureContext],
    procedures: Mapping[str, ast.Procedure],
    external: dict[str, TransitionFormula],
    options: ChoraOptions,
) -> ComponentRecord:
    """Analyse one component in a forked child (module-level for testing)."""
    local = AnalysisResult(program, {}, dict(contexts), graph)
    analyze_component(
        component, graph, contexts, procedures, dict(external), local, options
    )
    return _extract(component, local)


def _drain_children(
    children: dict[int, _Child],
    finish: Callable[[int, ComponentRecord, str, float], None],
) -> None:
    """Read from child pipes; on EOF, reap and merge (or trigger fallback)."""
    readable, _, _ = select.select(list(children), [], [], 1.0)
    for fd in readable:
        child = children[fd]
        try:
            chunk = os.read(fd, _PIPE_CHUNK)
        except OSError:
            chunk = b""
        if chunk:
            child.buffer += chunk
            continue
        # EOF: the child has exited (or died) — reap it and decode.
        del children[fd]
        os.close(fd)
        try:
            _, status = os.waitpid(child.pid, 0)
        except ChildProcessError:
            status = -1
        if not child.buffer:
            raise _ParallelFallback(
                f"scc worker for component {child.index} exited "
                f"without a payload (status {status})"
            )
        try:
            payload = pickle.loads(bytes(child.buffer))
        except Exception as exc:
            raise _ParallelFallback(
                f"undecodable scc worker payload for component {child.index}: {exc}"
            ) from exc
        if not (isinstance(payload, tuple) and payload and payload[0] == "ok"):
            detail = payload[1] if isinstance(payload, tuple) and len(payload) > 1 else payload
            raise _ParallelFallback(
                f"scc worker for component {child.index} failed:\n{detail}"
            )
        _, record, high_water, elapsed = payload
        # Newly minted parent symbols must land above everything the child
        # allocated in its reserved region.
        advance_fresh_counter(high_water)
        finish(child.index, record, "forked", elapsed)


def _reap_children(children: dict[int, _Child]) -> None:
    """Kill and reap every outstanding child (fallback / error path)."""
    for child in children.values():
        try:
            os.close(child.fd)
        except OSError:
            pass
        try:
            os.kill(child.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        try:
            os.waitpid(child.pid, 0)
        except ChildProcessError:
            pass
    children.clear()


def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]
