"""Assertion checking on top of procedure summaries.

For every ``assert`` in the program we compute a transition formula from the
enclosing procedure's entry to the assertion site, interpreting calls with
the summaries computed by :func:`repro.core.analyze_program`, and check that
the conjunction with the negated assertion condition is unsatisfiable.

Because the summaries of recursive procedures bound quantities by
exponential polynomials in the recursion height, the satisfiability check has
to reason (soundly, incompletely) about exponential terms.  Every
instantiated summary registers its ``r**H`` symbols in an
:class:`~repro.core.summaries.ExponentialRegistry`; before the final
unsatisfiability check each DNF cube is *saturated* with consequences of the
exponential interpretation:

* Bernoulli lower bounds ``r**H >= 1 + (r-1)H`` (already part of the summary);
* congruence and monotonicity: equal (resp. ordered) exponents with the same
  base give equal (resp. ordered) exponentials;
* evaluation: a constant bound on the exponent gives a constant bound on the
  exponential.

The check errs on the side of "not proved": an assertion is reported proved
only when the negation is unsatisfiable in the saturated abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..abstraction import AbstractionOptions, abstract_cubes
from ..analysis import inline_call, path_summary
from ..formulas import Formula, TransitionFormula, conjoin, post, pre
from ..lang import ast
from ..lang.cfg import AssertionSite, CallEdge
from ..lang.semantics import translate_condition
from ..polyhedra import ConstraintKind, LinearConstraint, Polyhedron
from ..polyhedra.simplex import exact_maximize
from .chora import AnalysisResult
from .summaries import ExponentialRegistry

__all__ = ["AssertionOutcome", "check_assertion", "check_assertions"]


@dataclass(frozen=True)
class AssertionOutcome:
    """The verdict for a single assertion site."""

    site: AssertionSite
    proved: bool

    def __str__(self) -> str:
        status = "PROVED" if self.proved else "UNKNOWN"
        return f"{status}: assert({self.site.text}) in {self.site.procedure}"


def check_assertions(
    result: AnalysisResult,
    options: AbstractionOptions = AbstractionOptions(),
) -> list[AssertionOutcome]:
    """Check every assertion of the analysed program."""
    outcomes: list[AssertionOutcome] = []
    for name, context in result.contexts.items():
        for site in context.cfg.assertions:
            outcomes.append(check_assertion(result, site, options))
    return outcomes


def check_assertion(
    result: AnalysisResult,
    site: AssertionSite,
    options: AbstractionOptions = AbstractionOptions(),
) -> AssertionOutcome:
    """Check one assertion site."""
    context = result.contexts[site.procedure]
    registry = ExponentialRegistry()
    procedures = result.procedures()

    def interpret(edge: CallEdge) -> TransitionFormula:
        summary = result.summaries.get(edge.callee)
        if summary is None:
            havoced = list(context.global_names)
            if edge.result is not None:
                havoced.append(edge.result)
            return TransitionFormula.havoc(havoced)
        instantiated = summary.instantiate(registry)
        return inline_call(edge, procedures[edge.callee], instantiated)

    to_site = path_summary(
        context.cfg, interpret, source=context.cfg.entry, target=site.vertex,
        options=options,
    )
    if to_site.is_bottom:
        return AssertionOutcome(site, True)
    # The assertion condition reads the state *at* the site, i.e. the
    # post-state of the path summary.  Negate *syntactically*, before
    # translation: translating first can introduce existentially quantified
    # defining constraints (nondet ranges, min/max, division quotients) that
    # :func:`negate` cannot invert exactly — and for may-fail semantics the
    # auxiliary values must stay existential in the negated condition anyway
    # ("some draw violates the assertion"), which is precisely what pushing
    # ``!`` through the syntax and then translating produces.
    negated_condition = translate_condition(ast.NotCond(site.condition))
    renaming = {
        pre(name): post(name)
        for name in to_site.referenced_variables() | frozenset(context.variables)
    }
    from ..formulas import rename as rename_formula

    negated = rename_formula(negated_condition, renaming)
    query = conjoin([to_site.to_formula(context.variables), negated])
    proved = not _satisfiable_with_exponentials(query, registry, options)
    return AssertionOutcome(site, proved)


# ---------------------------------------------------------------------- #
# Exponential-aware satisfiability
# ---------------------------------------------------------------------- #
def _satisfiable_with_exponentials(
    formula: Formula,
    registry: ExponentialRegistry,
    options: AbstractionOptions,
) -> bool:
    """Sound satisfiability check saturating exponential-term consequences."""
    cubes, context = abstract_cubes(formula, options)
    if not cubes:
        return False
    if not len(registry):
        return True
    for _, polyhedron in cubes:
        saturated = polyhedron
        for _ in range(3):
            extra = _exponential_consequences(saturated, registry)
            if not extra:
                break
            saturated = saturated.add_constraints(extra)
            if saturated.is_empty():
                break
        if not saturated.is_empty():
            return True
    return False


def _exponential_consequences(
    polyhedron: Polyhedron, registry: ExponentialRegistry
) -> list[LinearConstraint]:
    """Derive linear facts about registered exponential symbols in a cube."""
    derived: list[LinearConstraint] = []
    constraints = list(polyhedron.constraints)

    def bounds_of(symbol) -> tuple[Optional[Fraction], Optional[Fraction]]:
        upper = exact_maximize({symbol: Fraction(1)}, constraints)
        lower = exact_maximize({symbol: Fraction(-1)}, constraints)
        return (
            -lower.value if lower.is_optimal and lower.value is not None else None,
            upper.value if upper.is_optimal and upper.value is not None else None,
        )

    terms = list(registry)
    exponent_bounds = {term.symbol: bounds_of(term.exponent) for term in terms}
    for term in terms:
        if term.base <= 1:
            continue
        low, high = exponent_bounds[term.symbol]
        # Evaluation under constant exponent bounds: r**H <= r**ceil(high), >= r**floor(low).
        if high is not None and high <= 64:
            import math

            exponent = math.ceil(high)
            value = Fraction(term.base) ** max(exponent, 0)
            derived.append(
                LinearConstraint.make({term.symbol: Fraction(1)}, -value)
            )
        if low is not None and abs(low) <= 64:
            import math

            exponent = math.floor(low)
            if exponent >= 0:
                value = Fraction(term.base) ** exponent
                derived.append(
                    LinearConstraint.make({term.symbol: Fraction(-1)}, value)
                )
    # Congruence / monotonicity between exponentials with the same base.
    for i, first in enumerate(terms):
        for second in terms[i + 1 :]:
            if first.base != second.base or first.base <= 1:
                continue
            difference = {first.exponent: Fraction(1), second.exponent: Fraction(-1)}
            upper = exact_maximize(difference, constraints)
            lower = exact_maximize(
                {s: -c for s, c in difference.items()}, constraints
            )
            if (
                upper.is_optimal
                and lower.is_optimal
                and upper.value == 0
                and lower.value == 0
            ):
                derived.append(
                    LinearConstraint.make(
                        {first.symbol: Fraction(1), second.symbol: Fraction(-1)},
                        0,
                        ConstraintKind.EQ,
                    )
                )
            elif upper.is_optimal and upper.value is not None and upper.value <= 0:
                # exponent1 <= exponent2  =>  r**e1 <= r**e2.
                derived.append(
                    LinearConstraint.make(
                        {first.symbol: Fraction(1), second.symbol: Fraction(-1)}, 0
                    )
                )
            elif lower.is_optimal and lower.value is not None and lower.value <= 0:
                derived.append(
                    LinearConstraint.make(
                        {second.symbol: Fraction(1), first.symbol: Fraction(-1)}, 0
                    )
                )
    return derived
