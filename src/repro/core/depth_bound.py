"""Depth-bound analysis (§4.2, Alg. 4): bounding the recursion height from the pre-state.

Two complementary implementations are provided.

``alg4_depth_formula``
    The literal Alg. 4 construction: a combined control-flow "depth-bounding
    model" in which every recursive call either *descends* (increment the
    auxiliary counter ``D``, bind the callee's formals to the actuals, havoc
    locals, continue at the callee's entry) or is *skipped* (havoc globals and
    the return value), and the model exits through a base-case summary.  A
    path summary of this model relates the final value of ``D`` — the depth at
    which some base case executes — to the pre-state.  Its polyhedral
    consequences become constraints of the procedure summary (Eqn. (4)).

``descent_depth_bound``
    A closed-form bound on the height obtained from the per-call-site
    parameter transformation: a candidate ranking expression (a parameter or
    a difference of parameters) that provably decreases *arithmetically*
    (by at least one) or *geometrically* (by a constant factor) at every
    recursive call, combined with a lower bound on its value in the recursive
    region.  Geometric descent yields the logarithmic height bounds that give
    divide-and-conquer complexities (``O(n log n)``, ``O(n^log2 7)``, ...);
    these involve logarithms and therefore live outside the polyhedral
    fragment, which is why they are reported symbolically (sympy expressions)
    rather than as formula constraints.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Optional, Sequence

import sympy

from ..abstraction import AbstractionOptions, abstract, formula_entails
from ..analysis import ProcedureContext, inline_call, path_summary
from ..formulas import (
    RETURN_VARIABLE,
    Formula,
    Polynomial,
    Symbol,
    TransitionFormula,
    atom_eq,
    atom_le,
    conjoin,
    exists,
    post,
    pre,
)
from ..lang import ast
from ..lang.cfg import CallEdge, ControlFlowGraph, WeightEdge
from ..lang.semantics import translate_expression
from ..polyhedra.simplex import exact_maximize
from .summaries import DEPTH_SYMBOL, DepthBound

__all__ = [
    "DescentKind",
    "DescentWitness",
    "descent_depth_bound",
    "alg4_depth_formula",
    "compute_depth_bound",
]

#: Name of the auxiliary depth counter introduced by Alg. 4.
DEPTH_VARIABLE = "__D"


# ---------------------------------------------------------------------- #
# Closed-form descent bounds
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class DescentKind:
    ARITHMETIC = "arithmetic"
    GEOMETRIC = "geometric"


@dataclass(frozen=True)
class DescentWitness:
    """A ranking expression together with how it descends at recursive calls.

    The bounds derived from a witness count the frames *inside* the
    recursive region, so they hold for executions of height >= 2; a call
    whose argument lies outside the descent regime still terminates at
    height 1 (immediate base case) without satisfying them.  Callers must
    either guard with the height-1 disjunct (polyhedral side) or clamp the
    closed form at 1 (symbolic side, see :meth:`covers_single_level`).
    """

    expression: Polynomial        # over unprimed parameter symbols
    kind: str
    factor: Fraction              # decrease amount (arithmetic) or ratio (geometric)
    minimum: Fraction             # lower bound of the expression in the recursive region
    exact: bool                   # True when every call decreases it by exactly `factor`
    base_value: Optional[Fraction] = None   # exact value in the base region, when known
    slack: Fraction = Fraction(0)           # geometric: r * e' <= e + slack

    def symbolic_height_bound(self) -> sympy.Expr:
        """An upper bound on the height of *recursing* executions (>= 2 frames)."""
        e0 = _polynomial_to_sympy(self.expression)
        if self.kind == DescentKind.ARITHMETIC:
            if self.exact and self.base_value is not None:
                return e0 - sympy.Rational(self.base_value) + 1
            return e0 - sympy.Rational(self.minimum) + 2
        ratio = sympy.Rational(self.factor)
        # r*e' <= e + s  is  (e' - c) <= (e - c)/r  for the fixpoint
        # c = s/(r-1): the chain contracts geometrically towards c, so the
        # height is logarithmic in (e0 - c)/(m - c).  Acceptance requires
        # minimum > c, keeping the floor positive.
        shift = sympy.Rational(self.slack) / (ratio - 1) if self.slack else sympy.Integer(0)
        floor_value = sympy.Rational(max(self.minimum, Fraction(1)))
        return sympy.log((e0 - shift) / (floor_value - shift), ratio) + 2

    def covers_single_level(self) -> bool:
        """Whether the closed form also bounds height-1 executions at args >= 1.

        A height-1 execution can start anywhere in the base region, where the
        ranking expression is unconstrained — but claims are evaluated in the
        positive regime (every argument >= 1).  The closed form covers those
        executions whenever its infimum over that regime is >= 1; when the
        ranking has a negatively-weighted parameter or too large a floor, it
        does not, and the caller must clamp with ``Max(1, ...)``.
        """
        if (
            self.kind == DescentKind.ARITHMETIC
            and self.exact
            and self.base_value is not None
        ):
            # Exact descent onto a constant base value holds at height 1 for
            # *any* argument: the entry state is in the base region, so the
            # ranking equals the base value and the bound evaluates to 1.
            return True
        _, _, nonlinear = self.expression.split_linear()
        if not nonlinear.is_zero:
            return False
        coefficients = self.expression.linear_coefficients()
        if any(c < 0 for c in coefficients.values()):
            return False
        infimum = self.expression.constant_value + sum(
            c for c in coefficients.values() if c > 0
        )
        if self.kind == DescentKind.ARITHMETIC:
            return infimum - self.minimum + 2 >= 1
        shift = self.slack / (self.factor - 1)
        floor_value = max(self.minimum, Fraction(1))
        # log_r((e0-c)/(m-c)) + 2 >= 1  <=>  e0 >= c + (m-c)/r.
        return infimum >= shift + (floor_value - shift) / self.factor


def _polynomial_to_sympy(polynomial: Polynomial) -> sympy.Expr:
    expr = sympy.Integer(0)
    for monomial, coefficient in polynomial.items():
        term = sympy.Rational(coefficient.numerator, coefficient.denominator)
        for symbol, power in monomial.powers:
            term *= sympy.Symbol(symbol.name, positive=True) ** power
        expr += term
    return sympy.expand(expr)


def _candidate_rankings(parameters: Sequence[str]) -> list[Polynomial]:
    candidates = [Polynomial.var(pre(p)) for p in parameters]
    for p, q in itertools.permutations(parameters, 2):
        candidates.append(Polynomial.var(pre(p)) - Polynomial.var(pre(q)))
    return candidates


def _call_transformation(
    edge: CallEdge,
    callee: ast.Procedure,
    guard: Formula,
) -> Formula:
    """Formula relating the caller's pre-state to the callee's parameters.

    The callee's parameter values appear as *post-state* symbols; the caller's
    state as pre-state symbols; ``guard`` is a pre-state reachability
    condition for the call site.
    """
    conjuncts: list[Formula] = [guard]
    bound_symbols: list[Symbol] = []
    for parameter, argument in zip(callee.parameters, edge.arguments):
        if parameter.is_array:
            continue
        translated = translate_expression(argument)
        conjuncts.append(translated.constraints)
        conjuncts.append(
            atom_eq(Polynomial.var(post(parameter.name)), translated.value)
        )
        bound_symbols.extend(translated.fresh_symbols)
    return exists(bound_symbols, conjoin(conjuncts))


def descent_depth_bound(
    contexts: Mapping[str, ProcedureContext],
    base_summaries: Mapping[str, TransitionFormula],
    external_summaries: Mapping[str, TransitionFormula],
    procedures: Mapping[str, ast.Procedure],
    options: AbstractionOptions = AbstractionOptions(),
) -> Optional[DescentWitness]:
    """Find a ranking expression that descends at every recursive call of the SCC."""
    scc = set(contexts)
    # Collect the transformation relation of every intra-SCC call edge.
    transformations: list[Formula] = []
    recursive_guards: list[Formula] = []
    for name, context in contexts.items():
        def interpret(edge: CallEdge, _context=context) -> TransitionFormula:
            if edge.callee in scc:
                havoced = list(_context.global_names)
                if edge.result is not None:
                    havoced.append(edge.result)
                return TransitionFormula.havoc(havoced)
            summary = external_summaries.get(edge.callee)
            if summary is None:
                havoced = list(_context.global_names)
                if edge.result is not None:
                    havoced.append(edge.result)
                return TransitionFormula.havoc(havoced)
            return inline_call(edge, procedures[edge.callee], summary)

        for edge in context.cfg.call_edges:
            if edge.callee not in scc:
                continue
            # Relation between the caller's entry state and the callee's
            # parameters: the path to the call site composed with the binding
            # of the actual arguments (arguments are evaluated in the
            # *call-site* state, which may involve locals such as `half = n/2`).
            prefix = path_summary(
                context.cfg, interpret, source=context.cfg.entry, target=edge.source,
                options=options,
            )
            binding = _parameter_binding(edge, procedures[edge.callee])
            transformation = prefix.compose(binding)
            callee_params = procedures[edge.callee].scalar_parameters
            keep = [pre(p) for p in context.procedure.scalar_parameters] + [
                post(p) for p in callee_params
            ]
            relation = abstract(
                transformation.to_formula(context.variables), keep, options
            ).to_formula()
            transformations.append(relation)
            prefix_keep = [pre(p) for p in context.procedure.scalar_parameters]
            guard_abstraction = abstract(
                prefix.to_formula(context.variables), prefix_keep, options
            )
            recursive_guards.append(guard_abstraction.to_formula())
    if not transformations:
        return None

    # Common parameter vocabulary (intersection across the SCC, so that a
    # ranking expression is meaningful in every member).
    parameter_sets = [set(c.procedure.scalar_parameters) for c in contexts.values()]
    common = set.intersection(*parameter_sets) if parameter_sets else set()
    if not common:
        return None

    # The base-case formulas are candidate-independent; build them once here
    # instead of once per candidate ranking inside every minimum/exact-value
    # query (their transition formulas are large after composition).
    base_formulas = [
        (name, summary.to_formula(contexts[name].summary_variables))
        for name, summary in base_summaries.items()
        if not summary.is_bottom
    ]
    best: Optional[DescentWitness] = None
    for candidate in _candidate_rankings(sorted(common)):
        pre_value = candidate
        post_value = candidate.rename(
            {pre(s.name): post(s.name) for s in candidate.symbols}
        )
        witness = _check_candidate(
            candidate, pre_value, post_value, transformations, recursive_guards,
            base_formulas, options,
        )
        if witness is None:
            continue
        if best is None or _witness_priority(witness) > _witness_priority(best):
            best = witness
    return best


def _witness_priority(witness: DescentWitness) -> tuple:
    # Prefer geometric bounds (they are asymptotically tighter), then exact ones.
    return (witness.kind == DescentKind.GEOMETRIC, witness.exact)


def _check_candidate(
    candidate: Polynomial,
    pre_value: Polynomial,
    post_value: Polynomial,
    transformations: Sequence[Formula],
    recursive_guards: Sequence[Formula],
    base_formulas: Sequence[tuple[str, Formula]],
    options: AbstractionOptions,
) -> Optional[DescentWitness]:
    guard_minimum = _minimum_over_guards(pre_value, recursive_guards, options)
    base_minimum = _minimum_base_value(candidate, base_formulas, options)
    # The relational semantics only contains terminating executions; a
    # terminating descent can never drop below the base region's minimum (the
    # ranking expression only decreases along a call chain, so undershooting
    # the base region would make the chain infinite).  The effective minimum
    # is therefore the best of the two available lower bounds.
    candidates_minimum = [m for m in (guard_minimum, base_minimum) if m is not None]
    minimum = max(candidates_minimum) if candidates_minimum else None

    # Geometric descent: r * e' <= e (+ slack) for every call.  With slack
    # the chain contracts towards c = slack/(r-1) rather than 0, so the
    # recursive region's minimum must stay strictly above c for the height
    # to be logarithmic at all.
    for ratio, slack in (
        (Fraction(2), Fraction(0)),
        (Fraction(2), Fraction(1)),
        (Fraction(3), Fraction(0)),
        (Fraction(3), Fraction(2)),
    ):
        if all(
            formula_entails(t, atom_le(post_value.scale(ratio), pre_value + slack), options)
            for t in transformations
        ):
            shift = slack / (ratio - 1)
            if minimum is not None and minimum >= 1 and minimum > shift:
                return DescentWitness(
                    candidate, DescentKind.GEOMETRIC, ratio, minimum, False,
                    slack=slack,
                )
    # Arithmetic descent: e' <= e - 1 for every call.
    if all(
        formula_entails(t, atom_le(post_value, pre_value - 1), options)
        for t in transformations
    ):
        if minimum is None:
            return None
        exact = all(
            formula_entails(t, atom_eq(post_value, pre_value - 1), options)
            for t in transformations
        )
        base_value = _exact_base_value(candidate, base_formulas, options)
        return DescentWitness(
            candidate,
            DescentKind.ARITHMETIC,
            Fraction(1),
            minimum,
            exact and base_value is not None,
            base_value,
        )
    return None


def _minimum_base_value(
    expression: Polynomial,
    base_formulas: Sequence[tuple[str, Formula]],
    options: AbstractionOptions,
) -> Optional[Fraction]:
    """The minimum of ``expression`` over the base-case regions, if finite."""
    minimum: Optional[Fraction] = None
    for name, formula in base_formulas:
        abstraction = abstract(formula, list(expression.symbols), options)
        if abstraction.polyhedron.is_empty():
            continue
        linearized = abstraction.context.linearize_polynomial(expression)
        objective = {s: -c for s, c in linearized.linear_coefficients().items()}
        result = exact_maximize(objective, list(abstraction.polyhedron.constraints))
        if not result.is_optimal or result.value is None:
            return None
        this_minimum = -Fraction(result.value) + expression.constant_value
        if minimum is None or this_minimum < minimum:
            minimum = this_minimum
    return minimum


def _minimum_over_guards(
    expression: Polynomial,
    guards: Sequence[Formula],
    options: AbstractionOptions,
) -> Optional[Fraction]:
    """Exact lower bound of ``expression`` over every recursive-region guard."""
    minimum: Optional[Fraction] = None
    for guard in guards:
        abstraction = abstract(guard, list(expression.symbols), options)
        if abstraction.polyhedron.is_empty():
            continue
        linearized = abstraction.context.linearize_polynomial(expression)
        objective = {s: -c for s, c in linearized.linear_coefficients().items()}
        result = exact_maximize(objective, list(abstraction.polyhedron.constraints))
        if not result.is_optimal or result.value is None:
            return None
        guard_minimum = -Fraction(result.value) + expression.constant_value * 0
        guard_minimum = -Fraction(result.value)
        if minimum is None or guard_minimum < minimum:
            minimum = guard_minimum
    if minimum is None:
        return None
    return minimum + expression.constant_value


def _exact_base_value(
    expression: Polynomial,
    base_formulas: Sequence[tuple[str, Formula]],
    options: AbstractionOptions,
) -> Optional[Fraction]:
    """The constant value of ``expression`` in every base-case region, if any."""
    value: Optional[Fraction] = None
    for name, formula in base_formulas:
        abstraction = abstract(formula, list(expression.symbols), options)
        if abstraction.polyhedron.is_empty():
            continue
        linearized = abstraction.context.linearize_polynomial(expression) - expression.constant_value
        coefficients = linearized.linear_coefficients()
        upper = exact_maximize(coefficients, list(abstraction.polyhedron.constraints))
        lower = exact_maximize(
            {s: -c for s, c in coefficients.items()},
            list(abstraction.polyhedron.constraints),
        )
        if not (upper.is_optimal and lower.is_optimal):
            return None
        if upper.value is None or lower.value is None or upper.value != -lower.value:
            return None
        this_value = Fraction(upper.value) + expression.constant_value
        if value is None:
            value = this_value
        elif value != this_value:
            return None
    return value


# ---------------------------------------------------------------------- #
# Literal Alg. 4: the depth-bounding model
# ---------------------------------------------------------------------- #
def alg4_depth_formula(
    target: str,
    contexts: Mapping[str, ProcedureContext],
    base_summaries: Mapping[str, TransitionFormula],
    external_summaries: Mapping[str, TransitionFormula],
    procedures: Mapping[str, ast.Procedure],
    options: AbstractionOptions = AbstractionOptions(),
) -> TransitionFormula:
    """``zeta_target(D, sigma)``: the Alg. 4 path summary of the depth model.

    The returned transition formula's post-state value of ``__D`` is the
    depth at which some base case of the component executes, related to the
    pre-state of ``target``'s parameters and the globals.
    """
    scc = set(contexts)
    counter = itertools.count()
    vertex_map: dict[tuple[str, int], int] = {}

    def vertex(name: str, original: int) -> int:
        key = (name, original)
        if key not in vertex_map:
            vertex_map[key] = next(counter)
        return vertex_map[key]

    model = ControlFlowGraph(procedure="__depth_model", entry=-1, exit=-2)
    model.vertices.update([])
    new_entry = next(counter)
    new_exit = next(counter)
    model.entry = new_entry
    model.exit = new_exit
    model.vertices.add(new_entry)
    model.vertices.add(new_exit)

    def add_edge(source: int, dest: int, transition: TransitionFormula, label: str) -> None:
        model.vertices.add(source)
        model.vertices.add(dest)
        model.weight_edges.append(WeightEdge(source, dest, transition, label))

    # Entry: D := 1 and jump to the target procedure's entry.
    init = TransitionFormula.relation(
        atom_eq(Polynomial.var(post(DEPTH_VARIABLE)), 1), [DEPTH_VARIABLE]
    )
    add_edge(new_entry, vertex(target, contexts[target].cfg.entry), init, "D := 1")

    for name, context in contexts.items():
        cfg = context.cfg
        # Base-case exit: from the procedure's entry, through its base-case
        # summary, to the model's exit.
        base = base_summaries.get(name, TransitionFormula.bottom())
        if not base.is_bottom:
            add_edge(vertex(name, cfg.entry), new_exit, base, f"base({name})")
        # Intraprocedural weighted edges are kept as they are.
        for edge in cfg.weight_edges:
            add_edge(
                vertex(name, edge.source),
                vertex(name, edge.target),
                edge.transition,
                edge.label,
            )
        # Call edges: descend or skip.
        for edge in cfg.call_edges:
            source = vertex(name, edge.source)
            dest = vertex(name, edge.target)
            if edge.callee in scc:
                callee_context = contexts[edge.callee]
                # Descend: bind formals, increment D, havoc the callee's locals.
                binding: TransitionFormula = TransitionFormula.relation(
                    atom_eq(
                        Polynomial.var(post(DEPTH_VARIABLE)),
                        Polynomial.var(pre(DEPTH_VARIABLE)) + 1,
                    ),
                    [DEPTH_VARIABLE],
                )
                callee = procedures[edge.callee]
                binding = binding.compose(
                    _parameter_binding(edge, callee)
                )
                locals_to_havoc = [
                    local
                    for local in callee_context.cfg.locals
                    if local not in callee_context.global_names
                ]
                if locals_to_havoc:
                    binding = binding.compose(TransitionFormula.havoc(locals_to_havoc))
                add_edge(source, vertex(edge.callee, callee_context.cfg.entry), binding, "descend")
                # Skip: havoc globals and the call's result.
                havoced = list(context.global_names) + [RETURN_VARIABLE]
                if edge.result is not None:
                    havoced.append(edge.result)
                add_edge(source, dest, TransitionFormula.havoc(havoced), "skip call")
            else:
                summary = external_summaries.get(edge.callee)
                if summary is None:
                    havoced = list(context.global_names)
                    if edge.result is not None:
                        havoced.append(edge.result)
                    add_edge(source, dest, TransitionFormula.havoc(havoced), "unknown call")
                else:
                    add_edge(
                        source,
                        dest,
                        inline_call(edge, procedures[edge.callee], summary),
                        f"summary({edge.callee})",
                    )

    def no_calls(edge: CallEdge) -> TransitionFormula:  # pragma: no cover
        raise AssertionError("the depth model has no call edges")

    return path_summary(model, no_calls, options=options)


def _parameter_binding(edge: CallEdge, callee: ast.Procedure) -> TransitionFormula:
    conjuncts: list[Formula] = []
    bound: list[Symbol] = []
    names: list[str] = []
    for parameter, argument in zip(callee.parameters, edge.arguments):
        if parameter.is_array:
            continue
        translated = translate_expression(argument)
        conjuncts.append(translated.constraints)
        conjuncts.append(atom_eq(Polynomial.var(post(parameter.name)), translated.value))
        bound.extend(translated.fresh_symbols)
        names.append(parameter.name)
    return TransitionFormula.relation(exists(bound, conjoin(conjuncts)), names)


# ---------------------------------------------------------------------- #
# Combining both into a DepthBound
# ---------------------------------------------------------------------- #
def compute_depth_bound(
    target: str,
    contexts: Mapping[str, ProcedureContext],
    base_summaries: Mapping[str, TransitionFormula],
    external_summaries: Mapping[str, TransitionFormula],
    procedures: Mapping[str, ast.Procedure],
    options: AbstractionOptions = AbstractionOptions(),
    use_alg4: bool = True,
) -> DepthBound:
    """Compute the depth bound of ``target`` (polyhedral + symbolic parts)."""
    constraints: list[tuple[Polynomial, bool]] = []
    recursive_constraints: list[tuple[Polynomial, bool]] = []
    witness = descent_depth_bound(
        contexts, base_summaries, external_summaries, procedures, options
    )
    symbolic: Optional[sympy.Expr] = None
    exact = False
    if witness is not None:
        symbolic = witness.symbolic_height_bound()
        exact = witness.exact and witness.kind == DescentKind.ARITHMETIC
        if not witness.covers_single_level():
            # The descent bound says nothing about an immediate base case
            # (height 1), and its value can dip below 1 even at positive
            # arguments; clamp so the closed form stays a bound for every
            # execution in the claimed regime.
            symbolic = sympy.Max(sympy.Integer(1), symbolic)
            exact = False
        if witness.kind == DescentKind.ARITHMETIC:
            # D <= e0 - minimum + 2   (or exactly e0 - base + 1).
            if exact and witness.base_value is not None:
                # Exact descent with a constant base value holds for height-1
                # executions too (the entry state *is* the base region), so
                # the equality is unconditional.
                constraints.append(
                    (
                        Polynomial.var(DEPTH_SYMBOL)
                        - witness.expression
                        + witness.base_value
                        - 1,
                        True,
                    )
                )
            else:
                # Valid only for executions that recurse: the derivation
                # counts frames inside the recursive region, and a call whose
                # argument sits outside it still runs at height 1.
                recursive_constraints.append(
                    (
                        Polynomial.var(DEPTH_SYMBOL)
                        - witness.expression
                        + witness.minimum
                        - 2,
                        False,
                    )
                )
    if use_alg4:
        zeta = alg4_depth_formula(
            target, contexts, base_summaries, external_summaries, procedures, options
        )
        if not zeta.is_bottom:
            context = contexts[target]
            keep = [post(DEPTH_VARIABLE)] + [
                pre(p) for p in context.procedure.scalar_parameters
            ] + [pre(g) for g in context.global_names]
            abstraction = abstract(zeta.to_formula([DEPTH_VARIABLE]), keep, options)
            for inequation in abstraction:
                if post(DEPTH_VARIABLE) not in inequation.polynomial.symbols:
                    continue
                renamed = inequation.polynomial.rename({post(DEPTH_VARIABLE): DEPTH_SYMBOL})
                constraints.append((renamed, inequation.is_equality))
    return DepthBound(
        tuple(constraints), symbolic, exact, tuple(recursive_constraints)
    )
