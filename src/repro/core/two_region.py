"""Two-region analysis (§4.3): stronger conclusions, including lower bounds.

Plain height-based analysis forces bounding functions to be non-negative and
non-decreasing, which makes lower bounds on quantities like a procedure's
return value trivial (the ``differ`` example of §4.3).  Two-region analysis
splits the recursion tree at the minimum base-case depth ``M``:

* in the *lower* region the ordinary analysis applies;
* in the *upper* region (depth ``<= M``) every vertex has a recursive child,
  so the analysis may (1) drop the ``b(h) >= 0`` hypothesis, (2) summarize
  only the *recursive* paths of the procedure, and (3) keep negative constant
  coefficients in the recurrences — allowing strictly decreasing bounding
  functions.

This module implements the upper-region analysis and returns the additional
bounding functions it yields.  The driver attaches them to procedure
summaries when the depth bound is *exact* (every root-to-leaf path has the
same length, so the upper region is the whole tree and the upper-region
initial condition is zero); this covers the paper's ``quad``, ``recHanoi``
and functional-equivalence style proofs.
"""

from __future__ import annotations

import itertools
from typing import Mapping

from ..abstraction import AbstractionOptions, abstract
from ..analysis import ProcedureContext, inline_call, path_summary
from ..formulas import (
    RETURN_VARIABLE,
    Formula,
    Polynomial,
    TransitionFormula,
    atom_eq,
    atom_le,
    conjoin,
)
from ..lang import ast
from ..lang.cfg import CallEdge, ControlFlowGraph, WeightEdge
from ..recurrence import RecurrenceSolvingError
from .height_analysis import HeightAnalysis
from .stratify import build_stratified_system
from .summaries import BoundedTerm

__all__ = ["run_two_region_analysis", "recursive_only_cfg"]


def recursive_only_cfg(cfg: ControlFlowGraph, component: frozenset[str]) -> ControlFlowGraph:
    """A CFG whose entry-to-exit paths all contain at least one call into ``component``.

    The graph is layered: layer 0 is "no component call taken yet", layer 1 is
    "at least one taken"; component call edges move from layer 0 to layer 1.
    """
    counter = itertools.count()
    ids: dict[tuple[int, int], int] = {}

    def vertex(original: int, layer: int) -> int:
        key = (original, layer)
        if key not in ids:
            ids[key] = next(counter)
        return ids[key]

    layered = ControlFlowGraph(
        procedure=cfg.procedure + "__recursive_only",
        entry=vertex(cfg.entry, 0),
        exit=vertex(cfg.exit, 1),
        parameters=cfg.parameters,
        locals=cfg.locals,
        returns_value=cfg.returns_value,
    )
    for layer in (0, 1):
        for edge in cfg.weight_edges:
            layered.weight_edges.append(
                WeightEdge(
                    vertex(edge.source, layer),
                    vertex(edge.target, layer),
                    edge.transition,
                    edge.label,
                )
            )
        for edge in cfg.call_edges:
            target_layer = 1 if edge.callee in component else layer
            layered.call_edges.append(
                CallEdge(
                    vertex(edge.source, layer),
                    vertex(edge.target, target_layer),
                    edge.callee,
                    edge.arguments,
                    edge.result,
                    edge.label,
                )
            )
    layered.vertices.update(ids.values())
    return layered


def run_two_region_analysis(
    contexts: Mapping[str, ProcedureContext],
    analysis: HeightAnalysis,
    external_summaries: Mapping[str, TransitionFormula],
    procedures: Mapping[str, ast.Procedure],
    options: AbstractionOptions = AbstractionOptions(),
) -> dict[str, list[BoundedTerm]]:
    """Upper-region bounding functions for every procedure of the component.

    The returned closed forms are expressed as functions of the overall
    height ``H`` (the upper-region height of the root is ``H - 1``), with the
    upper-region initial condition fixed to zero — the instantiation used
    when the depth bound is exact (``H == M``).
    """
    component = frozenset(contexts)

    # Hypothetical summaries *without* the non-negativity conjuncts (§4.3
    # modification 1).
    hypothetical: dict[str, TransitionFormula] = {}
    for name, context in contexts.items():
        conjuncts: list[Formula] = []
        for bound in analysis.bound_symbols[name]:
            conjuncts.append(atom_le(bound.term, Polynomial.var(bound.at_h)))
        if not conjuncts:
            hypothetical[name] = TransitionFormula.havoc(context.summary_variables)
            continue
        footprint = list(context.global_names) + [RETURN_VARIABLE] + list(
            context.procedure.scalar_parameters
        )
        hypothetical[name] = TransitionFormula.relation(conjoin(conjuncts), footprint)

    # Candidate recurrences from the recursive-only paths (§4.3 modification 2).
    candidates = []
    all_height_symbols = analysis.all_height_symbols()
    for name, context in contexts.items():
        bounds = analysis.bound_symbols[name]
        if not bounds:
            continue
        layered = recursive_only_cfg(context.cfg, component)

        def interpret(edge: CallEdge) -> TransitionFormula:
            if edge.callee in component:
                summary = hypothetical[edge.callee]
            elif edge.callee in external_summaries:
                summary = external_summaries[edge.callee]
            else:
                havoced = list(context.global_names)
                if edge.result is not None:
                    havoced.append(edge.result)
                return TransitionFormula.havoc(havoced)
            return inline_call(edge, procedures[edge.callee], summary)

        recursive_summary = path_summary(layered, interpret, options=options)
        recursive_summary = recursive_summary.exists_variables(context.local_names)
        if recursive_summary.is_bottom:
            continue
        extension = conjoin(
            [recursive_summary.to_formula(context.summary_variables)]
            + [atom_eq(Polynomial.var(b.at_h_plus_1), b.term) for b in bounds]
        )
        for bound in bounds:
            keep = list(all_height_symbols) + [bound.at_h_plus_1]
            for inequation in abstract(extension, keep, options):
                if bound.at_h_plus_1 in inequation.polynomial.symbols:
                    candidates.append(inequation)

    # §4.3 modification 3: keep negative constant coefficients.
    all_bounds = [b for name in contexts for b in analysis.bound_symbols[name]]
    system = build_stratified_system(candidates, all_bounds, keep_negative_constants=True)
    system.initial_index = 0
    system.initial_value = 0
    try:
        solution = system.solve()
    except RecurrenceSolvingError:
        return {}

    results: dict[str, list[BoundedTerm]] = {}
    for name in contexts:
        terms: list[BoundedTerm] = []
        for bound in analysis.bound_symbols[name]:
            closed = solution.get(bound.at_h)
            if closed is None:
                continue
            # The root of the tree sits at upper-region height H - 1.
            shifted = closed.expression.shift(-1)
            from ..recurrence import ClosedForm

            terms.append(BoundedTerm(bound.term, ClosedForm(shifted, closed.valid_from + 1)))
        if terms:
            results[name] = terms
    return results
