"""Cost-bound extraction and asymptotic classification (for Table 1).

The complexity benchmarks instrument programs with an explicit ``cost``
variable (the paper's methodology): the analysis then simply bounds the
relational expression ``cost' - cost`` like any other quantity.  This module
turns the bounded terms and depth bound of a procedure summary into

* a symbolic cost bound as a sympy expression over the procedure's
  parameters (substituting the depth bound for the height ``H``), and
* an asymptotic classification string (``"O(2^n)"``, ``"O(n*log(n))"``,
  ``"O(n^log2(7))"``, ...), which is what Table 1 reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Optional

import sympy

from ..formulas import RETURN_VARIABLE, post, pre
from .chora import AnalysisResult
from .summaries import BoundedTerm, ProcedureSummary

__all__ = [
    "ComplexityBound",
    "cost_bound",
    "return_bound",
    "classify_asymptotics",
    "NO_BOUND",
]

#: The classification string used when no bound could be derived ("n.b.").
NO_BOUND = "n.b."


@dataclass(frozen=True)
class ComplexityBound:
    """A symbolic bound plus its asymptotic classification."""

    expression: Optional[sympy.Expr]
    asymptotic: str
    parameter: str = "n"

    @property
    def found(self) -> bool:
        return self.expression is not None

    def __str__(self) -> str:
        if not self.found:
            return NO_BOUND
        return f"{self.asymptotic}  [{sympy.simplify(self.expression)}]"


def _delta_bound(summary: ProcedureSummary, variable: str) -> Optional[BoundedTerm]:
    """The bounded term of the form ``variable' - variable - c`` (smallest c)."""
    best: Optional[BoundedTerm] = None
    for bounded in summary.bounded_terms:
        linear = bounded.term.linear_coefficients()
        _, _, nonlinear = bounded.term.split_linear()
        if not nonlinear.is_zero:
            continue
        expected = {post(variable): Fraction(1), pre(variable): Fraction(-1)}
        if {s: c for s, c in linear.items() if c != 0} != expected:
            continue
        if best is None or bounded.term.constant_value > best.term.constant_value:
            best = bounded
    return best


def _post_bound(summary: ProcedureSummary, variable: str) -> Optional[BoundedTerm]:
    """The bounded term of the form ``variable' - c``."""
    for bounded in summary.bounded_terms:
        linear = bounded.term.linear_coefficients()
        _, _, nonlinear = bounded.term.split_linear()
        if not nonlinear.is_zero:
            continue
        if {s: c for s, c in linear.items() if c != 0} == {post(variable): Fraction(1)}:
            return bounded
    return None


def _finalize(
    summary: ProcedureSummary,
    bounded: Optional[BoundedTerm],
    substitutions: Optional[Mapping[str, object]],
    parameter: str,
) -> ComplexityBound:
    if bounded is None or summary.depth_bound.symbolic_bound is None:
        return ComplexityBound(None, NO_BOUND, parameter)
    height_bound = summary.depth_bound.symbolic_bound
    expression = bounded.bound.expression.substitute(height_bound)
    # The bounded term is  tau = <delta> + constant <= b(H): move the constant.
    expression = expression - sympy.Rational(
        bounded.term.constant_value.numerator, bounded.term.constant_value.denominator
    )
    if substitutions:
        expression = expression.subs(
            {sympy.Symbol(k, positive=True): v for k, v in substitutions.items()}
        )
    expression = sympy.expand(expression)
    return ComplexityBound(expression, classify_asymptotics(expression, parameter), parameter)


def cost_bound(
    result: AnalysisResult,
    procedure: str,
    cost_variable: str = "cost",
    substitutions: Optional[Mapping[str, object]] = None,
    parameter: str = "n",
) -> ComplexityBound:
    """Bound on the increase of ``cost_variable`` over one call of ``procedure``."""
    summary = result.summaries[procedure]
    bounded = _delta_bound(summary, cost_variable)
    return _finalize(summary, bounded, substitutions, parameter)


def return_bound(
    result: AnalysisResult,
    procedure: str,
    substitutions: Optional[Mapping[str, object]] = None,
    parameter: str = "n",
) -> ComplexityBound:
    """Bound on the return value of ``procedure``."""
    summary = result.summaries[procedure]
    bounded = _post_bound(summary, RETURN_VARIABLE)
    return _finalize(summary, bounded, substitutions, parameter)


# ---------------------------------------------------------------------- #
# Asymptotic classification
# ---------------------------------------------------------------------- #
def classify_asymptotics(expression: sympy.Expr, parameter: str = "n") -> str:
    """Classify a closed-form bound into a big-O string in ``parameter``.

    The classification looks at each additive term and extracts the triple
    (exponential base, polynomial degree, logarithm degree); the
    asymptotically dominant triple is rendered in the notation Table 1 uses.
    """
    n = sympy.Symbol(parameter, positive=True)
    expression = sympy.expand(sympy.sympify(expression))
    if not expression.has(n):
        return "O(1)"
    best: tuple[float, float, int] | None = None
    for term in expression.as_ordered_terms():
        triple = _term_growth(term, n)
        if triple is None:
            continue
        if best is None or triple > best:
            best = triple
    if best is None:
        return NO_BOUND
    return _render(best, parameter)


def _expression_growth(
    expression: sympy.Expr, n: sympy.Symbol
) -> Optional[tuple[float, float, int]]:
    """The dominant growth triple over the additive terms of an expression."""
    best: Optional[tuple[float, float, int]] = None
    for term in sympy.expand(expression).as_ordered_terms():
        triple = _term_growth(term, n)
        if triple is None:
            return None
        if best is None or triple > best:
            best = triple
    return best


def _term_growth(term: sympy.Expr, n: sympy.Symbol) -> Optional[tuple[float, float, int]]:
    """(exponential base, polynomial degree, log degree) of one additive term."""
    base = 1.0
    degree = 0.0
    logs = 0
    for factor in sympy.Mul.make_args(term):
        factor_base, factor_degree, factor_logs = 1.0, 0.0, 0
        if isinstance(factor, sympy.Max):
            # Max(1, B) from a clamped depth bound: grows like its fastest arm.
            arm_growth = [_expression_growth(arm, n) for arm in factor.args]
            if any(growth is None for growth in arm_growth):
                return None
            factor_base, factor_degree, factor_logs = max(arm_growth)
        elif isinstance(factor, sympy.log):
            if factor.has(n):
                factor_logs = 1
        elif isinstance(factor, sympy.Pow):
            pow_base, pow_exp = factor.args
            if pow_base == n:
                try:
                    factor_degree = float(pow_exp)
                except TypeError:
                    return None
            elif not pow_base.has(n) and pow_exp.has(n):
                if isinstance(pow_exp, sympy.Max):
                    # c ** Max(1, B): grows like the fastest arm's power.
                    arm_growth = [
                        _expression_growth(pow_base**arm, n) for arm in pow_exp.args
                    ]
                    if any(growth is None for growth in arm_growth):
                        return None
                    factor_base, factor_degree, factor_logs = max(arm_growth)
                else:
                    # c ** (a*n + b): exponential with base c**a.
                    poly = sympy.Poly(pow_exp, n) if pow_exp.is_polynomial(n) else None
                    if poly is None or poly.degree() > 1:
                        return None
                    a = float(poly.coeff_monomial(n)) if poly.degree() == 1 else 0.0
                    factor_base = float(pow_base) ** a
            elif isinstance(pow_base, sympy.log) and pow_base.has(n):
                try:
                    factor_logs = int(pow_exp)
                except TypeError:
                    return None
            elif not factor.has(n):
                pass
            else:
                return None
        elif factor == n:
            factor_degree = 1.0
        elif not factor.has(n):
            pass
        else:
            return None
        base *= factor_base
        degree += factor_degree
        logs += factor_logs
    return (base, degree, logs)


def _render(triple: tuple[float, float, int], parameter: str) -> str:
    base, degree, logs = triple
    parts: list[str] = []
    if base > 1.0 + 1e-9:
        parts.append(f"{_nice_number(base)}^{parameter}")
    if degree > 1e-9:
        if abs(degree - round(degree)) < 1e-9:
            d = int(round(degree))
            parts.append(parameter if d == 1 else f"{parameter}^{d}")
        else:
            # Recognise log2(k) exponents (Karatsuba, Strassen).
            for k in (3, 5, 6, 7):
                if abs(degree - math.log2(k)) < 1e-6:
                    parts.append(f"{parameter}^log2({k})")
                    break
            else:
                parts.append(f"{parameter}^{degree:.3f}")
    if logs:
        parts.append(f"log({parameter})" if logs == 1 else f"log({parameter})^{logs}")
    if not parts:
        return "O(1)"
    return "O(" + "*".join(parts) + ")"


def _nice_number(value: float) -> str:
    if abs(value - round(value)) < 1e-9:
        return str(int(round(value)))
    return f"{value:.3f}"
