"""Cactus-plot data (Figure 3).

A cactus plot shows, for each tool, the cumulative time needed to prove its
``k`` fastest benchmarks, for ``k = 1..proved``.  This module builds those
series from per-benchmark (proved, seconds) measurements and renders them as
text/CSV (no plotting dependency is available offline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["CactusSeries", "build_series", "render_csv", "render_text"]


@dataclass(frozen=True)
class CactusSeries:
    """One tool's cactus series: cumulative times of its proved benchmarks."""

    tool: str
    cumulative_times: tuple[float, ...]

    @property
    def proved(self) -> int:
        return len(self.cumulative_times)

    @property
    def total_time(self) -> float:
        return self.cumulative_times[-1] if self.cumulative_times else 0.0


def build_series(
    tool: str, results: Sequence[tuple[bool, float]]
) -> CactusSeries:
    """Build a series from (proved, seconds) pairs."""
    times = sorted(seconds for proved, seconds in results if proved)
    cumulative: list[float] = []
    total = 0.0
    for value in times:
        total += value
        cumulative.append(total)
    return CactusSeries(tool, tuple(cumulative))


def render_csv(series: Sequence[CactusSeries]) -> str:
    lines = ["tool,proved_count,cumulative_seconds"]
    for entry in series:
        for index, value in enumerate(entry.cumulative_times, start=1):
            lines.append(f"{entry.tool},{index},{value:.3f}")
    return "\n".join(lines)


def render_text(series: Sequence[CactusSeries]) -> str:
    lines = ["Figure 3 (cactus): benchmarks proved vs cumulative time"]
    for entry in sorted(series, key=lambda s: (-s.proved, s.total_time)):
        lines.append(
            f"  {entry.tool:10s} proved {entry.proved:2d}   total {entry.total_time:8.2f}s"
        )
    return "\n".join(lines)
