"""Plain-text table rendering for the benchmark harnesses."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table (markdown-ish)."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    out = [line(list(headers)), separator]
    out.extend(line(row) for row in string_rows)
    return "\n".join(out)
