"""Plain-text table rendering for the benchmark harnesses.

Besides the generic :func:`format_table`, this module renders the paper's
evaluation artefacts from engine results: :func:`render_table1` (complexity
bounds vs. the bounds reported for CHORA and ICRA in Table 1) and
:func:`render_table2` (assertion verdicts vs. the paper's per-tool verdict
row).  Timing columns are opt-in so that the rendered tables are
deterministic — the golden-output tests snapshot them verbatim.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..engine.batch import BatchResult

__all__ = ["format_table", "render_table1", "render_table2"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table (markdown-ish)."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    out = [line(list(headers)), separator]
    out.extend(line(row) for row in string_rows)
    return "\n".join(out)


def _paper(entry_by_name, name: str, key: str, default: str = "-") -> str:
    entry = entry_by_name.get(name)
    if entry is None:
        return default
    value = entry.paper.get(key, default)
    return default if value is None else str(value)


def _verdict_cell(result: "BatchResult") -> str:
    if result.outcome != "ok":
        return result.outcome
    if result.proved is None:
        return "-"
    return "proved" if result.proved else "unknown"


def render_table1(
    results: Sequence["BatchResult"], include_times: bool = False
) -> str:
    """Render Table-1 rows: the bound found here vs. the paper's columns."""
    from ..benchlib.suites import get_suite

    entry_by_name = {entry.name: entry for entry in get_suite("table1").entries}
    headers = ["benchmark", "bound", "paper CHORA", "paper ICRA", "actual"]
    if include_times:
        headers.append("time")
    rows = []
    for result in results:
        row = [
            result.name,
            result.bound if result.outcome == "ok" else result.outcome,
            _paper(entry_by_name, result.name, "chora"),
            _paper(entry_by_name, result.name, "icra"),
            _paper(entry_by_name, result.name, "actual"),
        ]
        if include_times:
            row.append(f"{result.wall_time:.2f}s")
        rows.append(row)
    return format_table(headers, rows)


def render_table2(
    results: Sequence["BatchResult"], include_times: bool = False
) -> str:
    """Render Table-2 rows: assertion verdicts vs. the paper's tool columns."""
    from ..benchlib.suites import get_suite

    entry_by_name = {entry.name: entry for entry in get_suite("table2").entries}
    headers = ["benchmark", "verdict", "paper CHORA", "paper ICRA", "paper UA"]
    if include_times:
        headers.append("time")
    rows = []
    for result in results:
        entry = entry_by_name.get(result.name)
        verdicts = dict(entry.paper.get("verdicts", {})) if entry else {}

        def tool(name: str) -> str:
            if name not in verdicts:
                return "-"
            return "proved" if verdicts[name] else "unknown"

        row = [
            result.name,
            _verdict_cell(result),
            tool("CHORA"),
            tool("ICRA"),
            tool("UA"),
        ]
        if include_times:
            row.append(f"{result.wall_time:.2f}s")
        rows.append(row)
    return format_table(headers, rows)
