"""Rendering of evaluation artefacts: tables and cactus plots.

The layer's contract: turn sequences of result records (paper-reported
values from :mod:`repro.benchlib`, fresh
:class:`~repro.engine.batch.BatchResult` records from the engine) into
deterministic text artefacts — the Table 1 / Table 2 renderings
(:func:`render_table1` / :func:`render_table2`, pinned by golden tests),
the Fig. 3 cactus series, and the plain :func:`format_table` used by the
CLI.  Pure formatting: nothing here runs an analysis or touches disk.
"""

from .cactus import CactusSeries, build_series, render_csv, render_text
from .tables import format_table, render_table1, render_table2

__all__ = [
    "CactusSeries",
    "build_series",
    "render_csv",
    "render_text",
    "format_table",
    "render_table1",
    "render_table2",
]
