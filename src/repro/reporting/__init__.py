"""Rendering of evaluation artefacts: Table 1/2 rows and the Fig. 3 cactus series."""

from .cactus import CactusSeries, build_series, render_csv, render_text
from .tables import format_table, render_table1, render_table2

__all__ = [
    "CactusSeries",
    "build_series",
    "render_csv",
    "render_text",
    "format_table",
    "render_table1",
    "render_table2",
]
