"""Stratified systems of polynomial recurrences (Defn. 3.2) and their solution.

A stratified system organizes recurrence unknowns into strata so that each
right-hand side is *linear* in the unknowns of its own stratum and polynomial
in unknowns of strictly lower strata.  Alg. 3 of the paper extracts such a
system from the candidate inequations of Alg. 2; this module solves it:

1.  build the dependency graph of the equations and compute its strongly
    connected components (the strata, recovered structurally);
2.  process the components in topological order; within a component the
    dependencies are linear, so after substituting the already-computed
    closed forms of lower components the component becomes a constant-
    coefficient linear system with exponential-polynomial inhomogeneity;
3.  solve scalar components with :func:`repro.recurrence.cfinite.solve_first_order`
    and genuinely coupled components with
    :func:`repro.recurrence.cfinite.solve_linear_system`.

Initial conditions follow the paper: every bounding function is zero at
height 1 (base cases are height 1, and candidate terms are bounded by zero in
the base case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Sequence

import sympy

from ..formulas.polynomial import Monomial, Polynomial
from ..formulas.symbols import Symbol
from .cfinite import (
    ClosedForm,
    RecurrenceSolvingError,
    solve_first_order,
    solve_linear_system,
)
from .exppoly import ExpPoly

__all__ = [
    "RecurrenceEquation",
    "StratifiedSystem",
    "evaluate_polynomial_over_closed_forms",
]


@dataclass(frozen=True)
class RecurrenceEquation:
    """One equation ``target(h+1) = rhs`` where ``rhs`` is a polynomial over
    the height-``h`` values of the system's unknowns (identified by their
    symbols) plus a constant term."""

    target: Symbol
    rhs: Polynomial

    def uses(self) -> frozenset[Symbol]:
        """The unknowns appearing on the right-hand side."""
        return self.rhs.symbols

    def uses_nonlinearly(self) -> frozenset[Symbol]:
        """The unknowns appearing in monomials of degree two or more."""
        out: set[Symbol] = set()
        for monomial in self.rhs.nonlinear_monomials():
            out |= monomial.symbols
        return frozenset(out)

    def __str__(self) -> str:
        return f"{self.target}(h+1) = {self.rhs}"


def evaluate_polynomial_over_closed_forms(
    polynomial: Polynomial,
    closed_forms: Mapping[Symbol, ExpPoly],
    var: sympy.Symbol,
) -> ExpPoly:
    """Evaluate a polynomial whose symbols stand for known closed forms.

    Used to turn the lower-strata part of a right-hand side into an
    exponential-polynomial inhomogeneity (e.g. ``(b_n(h))**2`` becomes
    ``(2**h - 1)**2 = 4**h - 2*2**h + 1``).
    """
    result = ExpPoly.zero(var)
    for monomial, coefficient in polynomial.items():
        term = ExpPoly.constant(
            sympy.Rational(coefficient.numerator, coefficient.denominator), var
        )
        for symbol, power in monomial.powers:
            base = closed_forms.get(symbol)
            if base is None:
                raise RecurrenceSolvingError(
                    f"no closed form available for {symbol} while evaluating {polynomial}"
                )
            term = term * (base**power)
        result = result + term
    return result


@dataclass
class StratifiedSystem:
    """A system of recurrence equations over height-indexed bounding functions."""

    equations: list[RecurrenceEquation] = field(default_factory=list)
    #: Value of every unknown at the initial height (the paper uses 0 at h=1).
    initial_value: int = 0
    #: The initial height (base cases are height 1).
    initial_index: int = 1

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def targets(self) -> list[Symbol]:
        return [equation.target for equation in self.equations]

    def equation_for(self, target: Symbol) -> RecurrenceEquation | None:
        for equation in self.equations:
            if equation.target == target:
                return equation
        return None

    def validate(self) -> None:
        """Check the well-formedness conditions of Defn. 3.2 / Alg. 3.

        * each unknown is defined at most once;
        * every unknown used on a right-hand side is defined;
        * unknowns used non-linearly lie in a strictly lower component
          (no non-linear self-dependency through a cycle).
        """
        defined = [e.target for e in self.equations]
        if len(defined) != len(set(defined)):
            raise RecurrenceSolvingError("an unknown is defined by two equations")
        defined_set = set(defined)
        for equation in self.equations:
            missing = equation.uses() - defined_set
            if missing:
                raise RecurrenceSolvingError(
                    f"equation {equation} uses undefined unknowns {missing}"
                )
        components = self._components()
        component_of = {}
        for rank, component in enumerate(components):
            for symbol in component:
                component_of[symbol] = rank
        for equation in self.equations:
            for symbol in equation.uses_nonlinearly():
                if component_of[symbol] >= component_of[equation.target]:
                    raise RecurrenceSolvingError(
                        f"{equation} uses {symbol} non-linearly but {symbol} is not "
                        "in a strictly lower stratum"
                    )

    def _components(self) -> list[list[Symbol]]:
        """Strongly connected components of the dependency graph, in
        topological (dependencies-first) order."""
        graph = {e.target: sorted(e.uses(), key=str) for e in self.equations}
        return _tarjan_scc(graph)

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve(self, var: sympy.Symbol | None = None) -> dict[Symbol, ClosedForm]:
        """Solve the system, returning a closed form for every unknown."""
        self.validate()
        variable = var if var is not None else ExpPoly.zero().var
        solved: dict[Symbol, ClosedForm] = {}
        solved_exprs: dict[Symbol, ExpPoly] = {}
        for component in self._components():
            equations = [self.equation_for(symbol) for symbol in component]
            if any(equation is None for equation in equations):
                raise RecurrenceSolvingError(
                    f"component {component} has no defining equations"
                )
            self._solve_component(component, equations, solved, solved_exprs, variable)
        return solved

    def _solve_component(
        self,
        component: Sequence[Symbol],
        equations: Sequence[RecurrenceEquation],
        solved: dict[Symbol, ClosedForm],
        solved_exprs: dict[Symbol, ExpPoly],
        var: sympy.Symbol,
    ) -> None:
        member_set = set(component)
        # Split each right-hand side into the linear part over the component
        # and the inhomogeneity over lower components / constants.
        matrix: list[list[Fraction]] = []
        inhomogeneities: list[ExpPoly] = []
        for equation in equations:
            row = [Fraction(0)] * len(component)
            lower_terms: dict[Monomial, Fraction] = {}
            for monomial, coefficient in equation.rhs.items():
                if monomial.degree == 1:
                    ((symbol, _),) = monomial.powers
                    if symbol in member_set:
                        row[component.index(symbol)] += coefficient
                        continue
                if monomial.symbols & member_set:
                    raise RecurrenceSolvingError(
                        f"{equation} depends non-linearly on its own stratum"
                    )
                lower_terms[monomial] = coefficient
            matrix.append(row)
            inhomogeneities.append(
                evaluate_polynomial_over_closed_forms(
                    Polynomial(lower_terms), solved_exprs, var
                )
            )
        if len(component) == 1:
            coefficient = matrix[0][0]
            closed = solve_first_order(
                sympy.Rational(coefficient.numerator, coefficient.denominator),
                inhomogeneities[0],
                self.initial_value,
                self.initial_index,
            )
            solved[component[0]] = closed
            solved_exprs[component[0]] = closed.expression
            return
        closed_forms = solve_linear_system(
            matrix,
            inhomogeneities,
            [self.initial_value] * len(component),
            self.initial_index,
        )
        for symbol, closed in zip(component, closed_forms):
            solved[symbol] = closed
            solved_exprs[symbol] = closed.expression

    # ------------------------------------------------------------------ #
    # Numeric iteration (testing / cross-validation)
    # ------------------------------------------------------------------ #
    def iterate(self, heights: int) -> dict[Symbol, list[Fraction]]:
        """Iterate the recurrences numerically from the initial condition.

        Returns, for each unknown, the list of values at heights
        ``initial_index, initial_index + 1, ..., initial_index + heights``.
        Used by tests to cross-check symbolic closed forms.
        """
        values: dict[Symbol, Fraction] = {
            e.target: Fraction(self.initial_value) for e in self.equations
        }
        history: dict[Symbol, list[Fraction]] = {t: [values[t]] for t in values}
        for _ in range(heights):
            next_values: dict[Symbol, Fraction] = {}
            for equation in self.equations:
                next_values[equation.target] = equation.rhs.evaluate(values)
            values = next_values
            for target, value in values.items():
                history[target].append(value)
        return history

    def __str__(self) -> str:
        return "\n".join(str(e) for e in self.equations)


def _tarjan_scc(graph: Mapping[Symbol, Sequence[Symbol]]) -> list[list[Symbol]]:
    """Tarjan's strongly-connected-components algorithm (iterative).

    Returns components in reverse topological order of the condensation
    reversed — i.e. dependencies first, which is the order the solver needs.
    Only nodes that are keys of ``graph`` are visited; edge targets outside
    the key set are ignored.
    """
    index_counter = 0
    indices: dict[Symbol, int] = {}
    lowlinks: dict[Symbol, int] = {}
    on_stack: set[Symbol] = set()
    stack: list[Symbol] = []
    components: list[list[Symbol]] = []

    def strongconnect(start: Symbol) -> None:
        nonlocal index_counter
        work: list[tuple[Symbol, int]] = [(start, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                indices[node] = index_counter
                lowlinks[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = [s for s in graph.get(node, ()) if s in graph]
            for i in range(child_index, len(successors)):
                successor = successors[i]
                if successor not in indices:
                    work[-1] = (node, i + 1)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component: list[Symbol] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component, key=str))

    for node in graph:
        if node not in indices:
            strongconnect(node)
    return components
