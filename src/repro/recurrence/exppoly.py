"""Exponential-polynomial closed forms.

Every C-finite sequence admits a closed form that is an *exponential
polynomial* (§3, Defn. 3.1 of the paper):

    s(k) = p_1(k) r_1^k + p_2(k) r_2^k + ... + p_l(k) r_l^k

where each ``p_i`` is a polynomial in ``k`` and each ``r_i`` is a constant.
:class:`ExpPoly` represents such closed forms exactly: a map from bases
``r_i`` (sympy numbers, possibly negative or irrational) to polynomial
coefficients ``p_i(k)`` (sympy expressions in the sequence variable).

The class supports the algebra needed by the stratified-recurrence solver:
addition, multiplication (bases multiply), shifting the index, substitution
of the index by an arbitrary expression (used when the recursion height ``h``
is replaced by a depth bound such as ``log2(n) + 1``), and evaluation at
integer points (used by tests to cross-check against direct iteration of the
recurrence).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

import sympy

__all__ = ["ExpPoly"]

#: The canonical sequence variable used when none is supplied.
DEFAULT_VARIABLE = sympy.Symbol("h", integer=True, nonnegative=True)


def _to_sympy_number(value) -> sympy.Expr:
    if isinstance(value, Fraction):
        return sympy.Rational(value.numerator, value.denominator)
    return sympy.sympify(value)


class ExpPoly:
    """An exponential-polynomial ``sum_i p_i(var) * base_i**var``."""

    __slots__ = ("var", "_terms")

    def __init__(self, var: sympy.Symbol | None = None, terms: Mapping | None = None):
        self.var = var if var is not None else DEFAULT_VARIABLE
        cleaned: dict[sympy.Expr, sympy.Expr] = {}
        if terms:
            for base, poly in terms.items():
                base = _to_sympy_number(base)
                if base == 0:
                    raise ValueError("ExpPoly bases must be non-zero")
                poly = sympy.expand(sympy.sympify(poly))
                if poly == 0:
                    continue
                cleaned[base] = sympy.expand(cleaned.get(base, sympy.Integer(0)) + poly)
                if cleaned[base] == 0:
                    del cleaned[base]
        self._terms = cleaned

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zero(var: sympy.Symbol | None = None) -> "ExpPoly":
        return ExpPoly(var, {})

    @staticmethod
    def constant(value, var: sympy.Symbol | None = None) -> "ExpPoly":
        return ExpPoly(var, {sympy.Integer(1): _to_sympy_number(value)})

    @staticmethod
    def polynomial(poly, var: sympy.Symbol | None = None) -> "ExpPoly":
        """A purely polynomial closed form (base 1)."""
        return ExpPoly(var, {sympy.Integer(1): poly})

    @staticmethod
    def exponential(base, coefficient=1, var: sympy.Symbol | None = None) -> "ExpPoly":
        """``coefficient * base**var``."""
        return ExpPoly(var, {base: coefficient})

    @staticmethod
    def variable(var: sympy.Symbol | None = None) -> "ExpPoly":
        """The closed form ``var`` itself."""
        v = var if var is not None else DEFAULT_VARIABLE
        return ExpPoly(v, {sympy.Integer(1): v})

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def terms(self) -> dict[sympy.Expr, sympy.Expr]:
        return dict(self._terms)

    @property
    def is_zero(self) -> bool:
        return not self._terms

    @property
    def is_constant(self) -> bool:
        if not self._terms:
            return True
        if set(self._terms) != {sympy.Integer(1)}:
            return False
        return self.var not in self._terms[sympy.Integer(1)].free_symbols

    @property
    def bases(self) -> list[sympy.Expr]:
        return list(self._terms.keys())

    def coefficient(self, base) -> sympy.Expr:
        return self._terms.get(_to_sympy_number(base), sympy.Integer(0))

    def polynomial_degree(self, base=1) -> int:
        """Degree (in the sequence variable) of the coefficient of ``base``."""
        coeff = self.coefficient(base)
        if coeff == 0:
            return -1
        return sympy.Poly(coeff, self.var).degree()

    def dominant_term(self) -> tuple[sympy.Expr, int]:
        """The asymptotically dominant ``(|base|, degree)`` pair.

        Terms are ordered first by absolute value of the base, then by the
        degree of the polynomial coefficient.
        """
        if self.is_zero:
            return sympy.Integer(1), -1
        best = None
        for base, poly in self._terms.items():
            degree = sympy.Poly(poly, self.var).degree() if poly.has(self.var) else 0
            key = (abs(base), degree)
            if best is None or (key[0] > best[0]) or (key[0] == best[0] and key[1] > best[1]):
                best = (abs(base), degree)
        return best

    def free_parameters(self) -> set[sympy.Symbol]:
        """Symbols other than the sequence variable appearing in the closed form."""
        out: set[sympy.Symbol] = set()
        for base, poly in self._terms.items():
            out |= base.free_symbols | poly.free_symbols
        out.discard(self.var)
        return out

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def _check_var(self, other: "ExpPoly") -> None:
        if self.var != other.var:
            raise ValueError(
                f"cannot combine closed forms over different variables "
                f"({self.var} vs {other.var})"
            )

    def __add__(self, other: "ExpPoly") -> "ExpPoly":
        if not isinstance(other, ExpPoly):
            other = ExpPoly.constant(other, self.var)
        self._check_var(other)
        merged = dict(self._terms)
        for base, poly in other._terms.items():
            merged[base] = merged.get(base, sympy.Integer(0)) + poly
        return ExpPoly(self.var, merged)

    def __radd__(self, other) -> "ExpPoly":
        return self.__add__(other)

    def __neg__(self) -> "ExpPoly":
        return ExpPoly(self.var, {b: -p for b, p in self._terms.items()})

    def __sub__(self, other) -> "ExpPoly":
        if not isinstance(other, ExpPoly):
            other = ExpPoly.constant(other, self.var)
        return self + (-other)

    def __rsub__(self, other) -> "ExpPoly":
        return ExpPoly.constant(other, self.var) - self

    def __mul__(self, other) -> "ExpPoly":
        if not isinstance(other, ExpPoly):
            return self.scale(other)
        self._check_var(other)
        result: dict[sympy.Expr, sympy.Expr] = {}
        for b1, p1 in self._terms.items():
            for b2, p2 in other._terms.items():
                base = sympy.simplify(b1 * b2)
                result[base] = result.get(base, sympy.Integer(0)) + sympy.expand(p1 * p2)
        return ExpPoly(self.var, result)

    def __rmul__(self, other) -> "ExpPoly":
        return self.scale(other)

    def scale(self, factor) -> "ExpPoly":
        factor = _to_sympy_number(factor)
        return ExpPoly(self.var, {b: factor * p for b, p in self._terms.items()})

    def __pow__(self, exponent: int) -> "ExpPoly":
        if exponent < 0:
            raise ValueError("ExpPoly powers must be non-negative")
        result = ExpPoly.constant(1, self.var)
        for _ in range(exponent):
            result = result * self
        return result

    def shift(self, delta: int) -> "ExpPoly":
        """The closed form of ``k -> self(k + delta)``."""
        result: dict[sympy.Expr, sympy.Expr] = {}
        for base, poly in self._terms.items():
            shifted_poly = sympy.expand(poly.subs(self.var, self.var + delta))
            scaled = sympy.expand(shifted_poly * base**delta)
            result[base] = result.get(base, sympy.Integer(0)) + scaled
        return ExpPoly(self.var, result)

    # ------------------------------------------------------------------ #
    # Conversion / evaluation
    # ------------------------------------------------------------------ #
    def to_sympy(self) -> sympy.Expr:
        """The closed form as a single sympy expression in the sequence variable."""
        expr = sympy.Integer(0)
        for base, poly in self._terms.items():
            if base == 1:
                expr += poly
            else:
                expr += poly * base**self.var
        return sympy.expand(expr)

    def substitute(self, replacement: sympy.Expr) -> sympy.Expr:
        """The closed form with the sequence variable replaced by ``replacement``.

        Exponentials are rewritten structurally — ``r**(log(n,2) + c)`` becomes
        ``r**c * n**log2(r)`` — so that substituting a logarithmic depth bound
        yields the familiar ``n**log2(r)`` complexity expressions without
        relying on sympy's general simplifier.
        """
        replacement = sympy.sympify(replacement)
        expr = sympy.Integer(0)
        for base, poly in self._terms.items():
            new_poly = poly.subs(self.var, replacement)
            if base == 1:
                expr += new_poly
                continue
            expr += new_poly * _rewrite_power(base, replacement)
        return sympy.expand(expr)

    def evaluate(self, value: int) -> sympy.Expr:
        """Evaluate the closed form at an integer index."""
        total = sympy.Integer(0)
        for base, poly in self._terms.items():
            total += poly.subs(self.var, value) * base**value
        return sympy.simplify(total)

    # ------------------------------------------------------------------ #
    # Comparison / rendering
    # ------------------------------------------------------------------ #
    def equals(self, other: "ExpPoly") -> bool:
        """Semantic equality (difference simplifies to zero)."""
        diff = self - other
        return all(sympy.simplify(p) == 0 for p in diff._terms.values()) or diff.is_zero

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExpPoly):
            return NotImplemented
        return self.var == other.var and self.equals(other)

    def __hash__(self) -> int:  # pragma: no cover - not used as dict keys
        return hash((self.var, frozenset(self._terms)))

    def __str__(self) -> str:
        if self.is_zero:
            return "0"
        parts = []
        for base, poly in sorted(self._terms.items(), key=lambda kv: str(kv[0])):
            if base == 1:
                parts.append(str(poly))
            else:
                parts.append(f"({poly})*({base})**{self.var}")
        return " + ".join(parts)

    def __repr__(self) -> str:
        return f"ExpPoly({self!s})"


def _rewrite_power(base: sympy.Expr, exponent: sympy.Expr) -> sympy.Expr:
    """Rewrite ``base**exponent`` pulling logarithms out of the exponent.

    ``base**(a*log(n, 2) + rest)`` is rewritten to ``n**(a*log2(base)) *
    base**rest``; this keeps divide-and-conquer bounds in the polynomial form
    the paper reports (e.g. ``7**log2(n)`` becomes ``n**log2(7)``).
    """
    exponent = sympy.expand(exponent)
    terms = exponent.as_ordered_terms() if exponent.is_Add else [exponent]
    result = sympy.Integer(1)
    residual = sympy.Integer(0)
    for term in terms:
        log_parts = [f for f in sympy.Mul.make_args(term) if isinstance(f, sympy.log)]
        if len(log_parts) == 1:
            log_factor = log_parts[0]
            coefficient = term / log_factor
            if not coefficient.free_symbols:
                argument = log_factor.args[0]
                # base**(c * log(argument)) == argument**(c * log(base))
                result *= argument ** (coefficient * sympy.log(base) / sympy.log(sympy.E))
                continue
        residual += term
    if residual != 0:
        result *= base**residual
    return result
