"""C-finite recurrence solving.

This module computes exact exponential-polynomial closed forms (Defn. 3.1 of
the paper) for

* first-order scalar recurrences  ``b(k+1) = a*b(k) + g(k)``  with constant
  ``a`` and exponential-polynomial inhomogeneity ``g`` (the common case for
  height-based recurrence analysis: e.g. ``b(h+1) = 2 b(h) + 2`` for
  subsetSum, ``b(h+1) = 7 b(h) + c 4**h`` for Strassen), and
* coupled linear systems ``x(k+1) = A x(k) + g(k)`` with a constant
  diagonalizable matrix ``A`` (the mutual-recursion case, §4.4, e.g.
  ``[b1;b2](h+1) = [[0,18],[2,0]] [b1;b2](h) + [17;1]``).

The key primitive is :func:`geometric_convolution`, which computes
``S(n) = sum_{m=0}^{n-1} a**(n-1-m) * g(m)`` purely by polynomial algebra
(method of undetermined coefficients), avoiding any reliance on the output
format of a general symbolic summation routine.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

import sympy

from .exppoly import ExpPoly

__all__ = [
    "ClosedForm",
    "geometric_convolution",
    "solve_first_order",
    "solve_linear_system",
    "RecurrenceSolvingError",
]


class RecurrenceSolvingError(Exception):
    """Raised when a recurrence cannot be put in solvable (C-finite) form."""


@dataclass(frozen=True)
class ClosedForm:
    """A closed form together with the index from which it is valid.

    ``valid_from`` matters for recurrences whose homogeneous coefficient is
    zero (``b(k+1) = g(k)``): the closed form then only describes indices
    strictly greater than the initial index.
    """

    expression: ExpPoly
    valid_from: int = 0

    def evaluate(self, value: int) -> sympy.Expr:
        return self.expression.evaluate(value)

    def __str__(self) -> str:
        return f"{self.expression} (valid for k >= {self.valid_from})"


def _indefinite_sum(poly: sympy.Expr, q: sympy.Expr, var: sympy.Symbol) -> tuple[sympy.Expr, sympy.Expr]:
    """Closed form of ``T(n) = sum_{m=0}^{n-1} p(m) q**m``.

    Returns ``(A, C)`` such that ``T(n) = A(n) * q**n + C`` when ``q != 1``,
    or ``(A, 0)`` such that ``T(n) = A(n)`` when ``q == 1`` (then ``A`` has
    degree ``deg p + 1``).  Solved by undetermined coefficients.
    """
    p = sympy.Poly(poly, var)
    degree = p.degree() if p.degree() >= 0 else 0
    if q == 1:
        # Ansatz: T(n) polynomial of degree d+1 with T(0) = 0 and
        # T(n+1) - T(n) = p(n).
        coeffs = sympy.symbols(f"faul0:{degree + 2}")
        ansatz = sum(c * var**i for i, c in enumerate(coeffs))
        difference = sympy.expand(ansatz.subs(var, var + 1) - ansatz - poly)
        equations = sympy.Poly(difference, var).all_coeffs()
        equations.append(ansatz.subs(var, 0))
        solution = sympy.solve(equations, coeffs, dict=True)
        if not solution:
            raise RecurrenceSolvingError(f"could not sum polynomial {poly}")
        resolved = ansatz.subs(solution[0])
        return sympy.expand(resolved), sympy.Integer(0)
    # Ansatz: T(n) = A(n) q**n + C with deg A = deg p, T(0) = 0 and
    # T(n+1) - T(n) = p(n) q**n, i.e. q*A(n+1) - A(n) = p(n).
    coeffs = sympy.symbols(f"geo0:{degree + 1}")
    ansatz = sum(c * var**i for i, c in enumerate(coeffs))
    difference = sympy.expand(q * ansatz.subs(var, var + 1) - ansatz - poly)
    equations = sympy.Poly(difference, var).all_coeffs()
    solution = sympy.solve(equations, coeffs, dict=True)
    if not solution:
        raise RecurrenceSolvingError(f"could not solve convolution for {poly}, q={q}")
    resolved = sympy.expand(ansatz.subs(solution[0]))
    constant = sympy.expand(-resolved.subs(var, 0))
    return resolved, constant


def geometric_convolution(a: sympy.Expr, g: ExpPoly) -> ExpPoly:
    """Closed form of ``S(n) = sum_{m=0}^{n-1} a**(n-1-m) * g(m)``.

    ``a`` must be non-zero.  The result is an exponential polynomial in the
    same variable as ``g`` (the bases of the result are the bases of ``g``
    together with ``a``).
    """
    a = sympy.sympify(a)
    if a == 0:
        raise ValueError("geometric_convolution requires a non-zero coefficient")
    var = g.var
    result = ExpPoly.zero(var)
    for base, poly in g.terms.items():
        q = sympy.simplify(base / a)
        summed, constant = _indefinite_sum(poly, q, var)
        if q == 1:
            # S contribution: a**(n-1) * T(n) with T polynomial.
            result = result + ExpPoly(var, {a: summed / a})
        else:
            # T(n) = A(n) q**n + C; S contribution:
            #   a**(n-1) (A(n) q**n + C) = A(n)/a * base**n + C/a * a**n.
            result = result + ExpPoly(var, {base: summed / a})
            if constant != 0:
                result = result + ExpPoly(var, {a: constant / a})
    return result


def solve_first_order(
    coefficient,
    inhomogeneity: ExpPoly,
    initial_value,
    initial_index: int = 0,
) -> ClosedForm:
    """Solve ``b(k+1) = coefficient * b(k) + inhomogeneity(k)`` exactly.

    ``initial_value`` is the value of ``b`` at ``initial_index``.  The closed
    form is valid for ``k >= initial_index`` when ``coefficient != 0`` and for
    ``k >= initial_index + 1`` when ``coefficient == 0``.
    """
    a = sympy.sympify(coefficient)
    var = inhomogeneity.var
    v0 = sympy.sympify(initial_value)
    if a == 0:
        # b(k) = g(k - 1) for k > initial_index.
        closed = inhomogeneity.shift(-1)
        return ClosedForm(closed, valid_from=initial_index + 1)
    # Change variables: c(m) = b(m + initial_index), c(0) = v0,
    # c(m+1) = a c(m) + G(m) with G(m) = g(m + initial_index).
    shifted_g = inhomogeneity.shift(initial_index)
    convolution = geometric_convolution(a, shifted_g)
    homogeneous = ExpPoly(var, {a: v0})
    in_m = homogeneous + convolution
    # Convert back: b(k) = c(k - initial_index).
    closed = in_m.shift(-initial_index)
    return ClosedForm(closed, valid_from=initial_index)


def solve_linear_system(
    matrix: Sequence[Sequence[Fraction | int]],
    inhomogeneity: Sequence[ExpPoly],
    initial_values: Sequence,
    initial_index: int = 0,
) -> list[ClosedForm]:
    """Solve ``x(k+1) = A x(k) + g(k)`` for a diagonalizable constant matrix.

    The system is decoupled through the eigendecomposition ``A = P D P^-1``:
    each component of ``y = P^-1 x`` satisfies a scalar first-order recurrence
    that :func:`solve_first_order` handles, and ``x = P y`` recombines the
    solutions.  Raises :class:`RecurrenceSolvingError` when ``A`` is not
    diagonalizable (the caller then simply fails to find those bounding
    functions, mirroring the paper's "n.b." outcomes).
    """
    size = len(matrix)
    if size == 0:
        return []
    var = inhomogeneity[0].var if inhomogeneity else ExpPoly.zero().var
    a_matrix = sympy.Matrix(
        [[sympy.Rational(Fraction(matrix[i][j])) for j in range(size)] for i in range(size)]
    )
    try:
        p_matrix, d_matrix = a_matrix.diagonalize()
    except sympy.matrices.exceptions.NonSquareMatrixError as exc:  # pragma: no cover
        raise RecurrenceSolvingError(str(exc)) from exc
    except Exception as exc:
        raise RecurrenceSolvingError(f"matrix is not diagonalizable: {exc}") from exc
    p_inverse = p_matrix.inv()
    x0 = sympy.Matrix([sympy.sympify(v) for v in initial_values])
    y0 = p_inverse * x0
    # Transform the inhomogeneity: (P^-1 g)(k), componentwise ExpPoly algebra.
    transformed: list[ExpPoly] = []
    for i in range(size):
        acc = ExpPoly.zero(var)
        for j in range(size):
            coefficient = p_inverse[i, j]
            if coefficient == 0:
                continue
            acc = acc + inhomogeneity[j].scale(coefficient)
        transformed.append(acc)
    # Solve each decoupled scalar recurrence y_i(k+1) = d_i y_i(k) + (P^-1 g)_i(k).
    decoupled: list[ClosedForm] = []
    for i in range(size):
        eigenvalue = d_matrix[i, i]
        if eigenvalue == 0:
            decoupled.append(
                ClosedForm(transformed[i].shift(-1), valid_from=initial_index + 1)
            )
        else:
            decoupled.append(
                solve_first_order(eigenvalue, transformed[i], y0[i], initial_index)
            )
    # Recombine: x = P y.
    results: list[ClosedForm] = []
    valid_from = max(cf.valid_from for cf in decoupled)
    for i in range(size):
        acc = ExpPoly.zero(var)
        for j in range(size):
            coefficient = p_matrix[i, j]
            if coefficient == 0:
                continue
            acc = acc + decoupled[j].expression.scale(coefficient)
        results.append(ClosedForm(acc, valid_from=valid_from))
    return results
