"""Recurrence solving: exponential-polynomial closed forms for C-finite and
stratified polynomial recurrence systems (Defn. 3.1 / 3.2 of the paper)."""

from .exppoly import ExpPoly
from .cfinite import (
    ClosedForm,
    RecurrenceSolvingError,
    geometric_convolution,
    solve_first_order,
    solve_linear_system,
)
from .stratified import (
    RecurrenceEquation,
    StratifiedSystem,
    evaluate_polynomial_over_closed_forms,
)

__all__ = [
    "ExpPoly",
    "ClosedForm",
    "RecurrenceSolvingError",
    "geometric_convolution",
    "solve_first_order",
    "solve_linear_system",
    "RecurrenceEquation",
    "StratifiedSystem",
    "evaluate_polynomial_over_closed_forms",
]
