"""Recurrence solving: exponential-polynomial closed forms.

The layer's contract: given a C-finite recurrence system (Defn. 3.1) or a
stratified system of polynomial recurrence inequations (Defn. 3.2, the
output of Alg. 3's candidate stratification), produce
:class:`~repro.recurrence.exppoly.ExpPoly` closed forms — sums of
``c * n^k * r^n`` terms with exact rational coefficients — or raise
:class:`RecurrenceSolvingError`.  Everything here is pure symbolic
mathematics over sympy: no knowledge of programs, formulas or polyhedra;
callers (:mod:`repro.analysis` for loops, :mod:`repro.core` for recursion
heights) translate between program quantities and recurrence variables.
"""

from .exppoly import ExpPoly
from .cfinite import (
    ClosedForm,
    RecurrenceSolvingError,
    geometric_convolution,
    solve_first_order,
    solve_linear_system,
)
from .stratified import (
    RecurrenceEquation,
    StratifiedSystem,
    evaluate_polynomial_over_closed_forms,
)

__all__ = [
    "ExpPoly",
    "ClosedForm",
    "RecurrenceSolvingError",
    "geometric_convolution",
    "solve_first_order",
    "solve_linear_system",
    "RecurrenceEquation",
    "StratifiedSystem",
    "evaluate_polynomial_over_closed_forms",
]
