"""The ``repro`` command line interface.

::

    repro analyze FILE [--procedure P] [--cost-variable V] [--sub k=v ...]
                [--parallel-sccs [N]] [--lint]
    repro bench --suite table1|fig3|table2|all [--tool chora|icra|unrolling]
                [--depth N] [--jobs N] [--full] [--json]
                [--engine pool|warm] [--shard I/N] [--memo-snapshot]
                [--distribute HOST:PORT,...] [--deadline-ms MS] [--retry-429 N]
                [--cache-url URL] [--parallel-sccs [N]] [--lint]
    repro lint FILE ... [--severity error|warning|info] [--disable CODES]
               [--json]
    repro batch --url URL (--suite NAME | --tasks FILE) [--deadline-ms MS]
                [--retry-429 N] [--json]
    repro serve [--host H] [--port P] [--workers N] [--timeout S]
                [--backlog N] [--cache-url URL] [--parallel-sccs [N]]
    repro loadtest --url URL [--rps N] [--duration S] [--concurrency N]
                   [--deadline-ms MS] [--json]
    repro profile [--suite NAME|all] [--micro] [--engines] [--check]
                  [--threshold PCT] [--parallel-sccs [N]]
    repro fuzz [--seed S] [--count N] [--runs R] [--size K] [--minimize]
               [--out DIR] [--no-baselines] [--jobs N] [--timeout S] [--json]
               [--parallel-sccs [N]]
    repro suites
    repro cache stats|clear [--cache-dir DIR | --cache-url URL]

``analyze`` runs the full CHORA pipeline on one mini-language file and prints
the procedure summaries, assertion verdicts and (when a procedure is named)
the cost bound.  ``bench`` reproduces an evaluation artefact of the paper
through the batch engine: programs run concurrently in worker processes,
results are cached on disk, and a pathological program can at worst time out
— never sink the batch; ``--tool`` swaps in one of the paper's comparison
baselines, ``--engine warm`` serves the batch from long-lived warm workers
instead of one process per task, ``--shard i/n`` runs one deterministic
slice of the suite and merges the other shards' results from the shared
result cache, and ``--memo-snapshot`` (default on with a cache) lets cold
forks warm-start from the persisted polyhedral memo snapshot.
``--distribute host:port,...`` turns bench into a coordinator: the same
deterministic shard partition, but each shard is sent to a running ``repro
serve`` over ``POST /v1/batch`` and failed shards are retried on surviving
hosts; ``--cache-url`` (here, on ``serve`` and on ``cache``) swaps the
local cache directory for the cache plane of a running service, so many
machines share one result cache and memo snapshot.  ``serve``
starts the warm analysis service: an asyncio HTTP endpoint (versioned
under ``/v1``, with keep-alive, bounded admission, per-request deadlines
and a ``/v1/metrics`` SLO document) whose ``POST /v1/analyze`` accepts
program source and returns the same JSON records as ``repro analyze
--json`` and whose ``POST /v1/batch`` runs whole suites; ``batch`` is
the matching client — it sends a suite (or an inline task list) to a
remote service and renders the records exactly like ``repro bench``.
``lint`` runs the semantic diagnostics passes (see ``docs/linting.md``)
over program files without analysing them: exit status 1 when any
error-severity diagnostic fires, 0 otherwise; ``analyze`` and ``bench``
accept ``--lint`` to reject invalid programs (error diagnostics) before
spending analysis time on them — on lint-clean programs a gated run is
bit-identical to an ungated one.
``loadtest`` drives open-loop load at a running service and records the
throughput/latency curve into ``benchmarks/perf/BENCH_service.json``.
``profile`` records cold suite
timings, hull/projection micro-benchmark timings and (with ``--engines``)
cold-vs-warm engine comparisons into the append-only
``benchmarks/perf/BENCH_*.json`` history and, with ``--check``, fails on
perf regressions or verdict changes versus the previous entry.  ``fuzz``
runs the differential fuzzer: seeded random programs, every analyser claim
cross-checked against concrete interpreter runs, findings written to
``--out`` (minimized with ``--minimize``); exit status 1 when a campaign
surfaces a violation.

Every command that runs CHORA itself accepts ``--parallel-sccs [N]``:
independent strongly-connected components of each program's call graph are
analysed in up to ``N`` forked children (bare flag or ``auto`` means one per
CPU), with verdicts, bounds and rendered tables bit-identical to a serial
run.

The full command reference with examples lives in ``docs/cli.md``.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Optional, Sequence

from .benchlib.suites import SUITES, suite_names
from .engine.suites import TOOLS
from .core import ChoraOptions
from .engine import (
    AnalysisTask,
    BatchEngine,
    BatchResult,
    ResultCache,
    default_cache_directory,
    full_bench_enabled,
    make_cache,
    suite_tasks,
    summarize_batch,
)
from .engine.config import DEFAULT_SERVICE_PORT
from .lint import SEVERITIES as _LINT_SEVERITIES
from .reporting import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CHORA reproduction: templates and recurrences, better together.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser(
        "analyze", help="analyse one mini-language program file"
    )
    analyze.add_argument("file", type=Path, help="path to the program source")
    analyze.add_argument(
        "--procedure", help="procedure to extract a cost bound from"
    )
    analyze.add_argument(
        "--cost-variable",
        default="cost",
        help="instrumented cost variable (default: cost)",
    )
    analyze.add_argument(
        "--sub",
        action="append",
        default=[],
        metavar="NAME=INT",
        help="substitute a parameter in the bound (repeatable)",
    )
    _lint_gate_argument(analyze)
    _engine_arguments(analyze, jobs=False)

    lint = commands.add_parser(
        "lint", help="run the semantic diagnostics passes over program files"
    )
    lint.add_argument(
        "files", type=Path, nargs="+", metavar="FILE", help="program sources to lint"
    )
    lint.add_argument(
        "--severity",
        choices=list(_LINT_SEVERITIES),
        default=_LINT_SEVERITIES[-1],
        help="report only diagnostics at least this severe (default: all)",
    )
    lint.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="CODES",
        help="comma-separated diagnostic codes to suppress (repeatable),"
        " e.g. --disable R003,R101",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    bench = commands.add_parser(
        "bench", help="run one of the paper's benchmark suites through the engine"
    )
    bench.add_argument(
        "--suite",
        required=True,
        choices=sorted(suite_names()) + ["all"],
        help="which evaluation artefact to reproduce",
    )
    bench.add_argument(
        "--full",
        action="store_true",
        help="include the slow rows (minutes each; default honours REPRO_FULL_BENCH)",
    )
    bench.add_argument(
        "--tool",
        choices=sorted(TOOLS),
        default="chora",
        help="analyser to run the suite with: chora (native) or one of the"
        " paper's comparison baselines (default: chora)",
    )
    bench.add_argument(
        "--depth",
        type=int,
        default=None,
        metavar="N",
        help="unrolling depth for --tool unrolling (default: the unroller's)",
    )
    bench.add_argument(
        "--engine",
        choices=["pool", "warm"],
        default="pool",
        help="pool: one forked process per task (default); warm: long-lived"
        " warm workers with hot caches (see repro serve)",
    )
    bench.add_argument(
        "--shard",
        metavar="I/N",
        default=None,
        help="run the i-th of n deterministic suite slices and merge the"
        " other shards' results from the shared result cache",
    )
    bench.add_argument(
        "--distribute",
        metavar="HOST:PORT,...",
        default=None,
        help="coordinator mode: partition the suite with the shard hash and"
        " fan one shard per listed repro serve instance over POST /v1/batch,"
        " retrying failed shards on surviving hosts; records merge"
        " bit-identically to a local run",
    )
    bench.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-shard server-side deadline under --distribute"
        " (X-Repro-Deadline-Ms; the service answers 504 past it)",
    )
    bench.add_argument(
        "--retry-429",
        type=int,
        default=2,
        metavar="N",
        help="under --distribute, how many times to retry a shard request"
        " the service answered 429, honouring its Retry-After hint"
        " (default: 2)",
    )
    _lint_gate_argument(bench)
    _engine_arguments(bench, jobs=True)

    serve = commands.add_parser(
        "serve", help="serve analysis requests over HTTP from warm workers"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=DEFAULT_SERVICE_PORT,
        help=f"TCP port; 0 picks a free one (default: {DEFAULT_SERVICE_PORT})",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="number of warm worker processes (default: 2)",
    )
    serve.add_argument(
        "--backlog",
        type=int,
        default=None,
        metavar="N",
        help="admission queue length beyond the worker count: at most"
        " workers+N analysis requests in flight before the service answers"
        " 429 (default: 16)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    _engine_arguments(serve, jobs=False, json_flag=False, memo_flag=False)

    batch = commands.add_parser(
        "batch",
        help="send a suite (or inline tasks) to a remote repro serve /batch",
    )
    batch.add_argument(
        "--url",
        required=True,
        metavar="URL",
        help="base URL of a running analysis service, e.g."
        " http://127.0.0.1:8734",
    )
    batch.add_argument(
        "--suite",
        choices=sorted(suite_names()) + ["all"],
        default=None,
        help="suite to run remotely (the service resolves it from its own"
        " benchmark registry)",
    )
    batch.add_argument(
        "--full",
        action="store_true",
        help="include the slow rows (resolved by the service)",
    )
    batch.add_argument(
        "--tool",
        choices=sorted(TOOLS),
        default="chora",
        help="analyser the service should run the suite with (default: chora)",
    )
    batch.add_argument(
        "--depth",
        type=int,
        default=None,
        metavar="N",
        help="unrolling depth for --tool unrolling (default: the unroller's)",
    )
    batch.add_argument(
        "--tasks",
        type=Path,
        default=None,
        metavar="FILE",
        help="send an inline task list instead of a suite: a JSON list of"
        " /analyze-shaped task objects (mutually exclusive with --suite)",
    )
    batch.add_argument(
        "--http-timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="client-side HTTP timeout for the whole batch (default: 600)",
    )
    batch.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="server-side deadline for the whole batch (X-Repro-Deadline-Ms;"
        " the service answers 504 past it)",
    )
    batch.add_argument(
        "--retry-429",
        type=int,
        default=2,
        metavar="N",
        help="how many times to retry a 429 backpressure answer, honouring"
        " the service's Retry-After hint (0 fails fast; default: 2)",
    )
    batch.add_argument(
        "--json", action="store_true", help="emit the service's JSON document"
    )

    loadtest = commands.add_parser(
        "loadtest",
        help="drive open-loop load at a running repro serve and record the"
        " throughput/latency into BENCH_service.json",
    )
    loadtest.add_argument(
        "--url",
        required=True,
        metavar="URL",
        help="base URL of a running analysis service, e.g."
        " http://127.0.0.1:8734",
    )
    loadtest.add_argument(
        "--rps",
        type=float,
        default=20.0,
        metavar="N",
        help="open-loop request rate in requests/second (default: 20)",
    )
    loadtest.add_argument(
        "--duration",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long to keep the load up (default: 10)",
    )
    loadtest.add_argument(
        "--concurrency",
        type=int,
        default=8,
        metavar="N",
        help="generator threads, one keep-alive connection each (default: 8)",
    )
    loadtest.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-request X-Repro-Deadline-Ms to send (default: none)",
    )
    loadtest.add_argument(
        "--program",
        type=Path,
        default=None,
        metavar="FILE",
        help="program file to POST per request (default: a built-in"
        " one-liner that exercises dispatch, not the analyzer)",
    )
    loadtest.add_argument(
        "--label", default="", help="free-form label recorded with the entry"
    )
    loadtest.add_argument(
        "--perf-dir",
        type=Path,
        default=None,
        help="where BENCH_service.json lives (default: benchmarks/perf)",
    )
    loadtest.add_argument(
        "--no-record",
        action="store_true",
        help="report only; do not append a BENCH_service.json entry",
    )
    loadtest.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )

    profile = commands.add_parser(
        "profile",
        help="record perf timings into BENCH_*.json and check for regressions",
    )
    profile.add_argument(
        "--suite",
        choices=sorted(suite_names()) + ["all"],
        default=None,
        help="time one suite cold (uncached) through the engine",
    )
    profile.add_argument(
        "--micro",
        action="store_true",
        help="time the hull/projection micro-benchmarks",
    )
    profile.add_argument(
        "--engines",
        action="store_true",
        help="compare cold per-task analysis against warm-worker serving"
        " (records BENCH_engines.json; informational, not gated)",
    )
    profile.add_argument(
        "--label", default="", help="free-form label recorded with the entry"
    )
    profile.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="micro-benchmark / --engines warm-repeat repetitions"
        " (best-of; default: 3)",
    )
    profile.add_argument(
        "--jobs", "-j", type=int, default=1, help="worker processes for suite runs"
    )
    profile.add_argument(
        "--timeout",
        type=_timeout_seconds,
        default=None,
        metavar="SECONDS",
        help="per-row deadline for suite runs; 0 is an immediate deadline,"
        " omit the flag for no deadline (default: none)",
    )
    profile.add_argument(
        "--check",
        action="store_true",
        help="fail when timings regress beyond the threshold (or verdicts change)"
        " versus the last recorded entry",
    )
    profile.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        metavar="PERCENT",
        help="allowed slow-down before --check fails (default: 25%%)",
    )
    profile.add_argument(
        "--perf-dir",
        type=Path,
        default=None,
        help="where BENCH_*.json files live (default: benchmarks/perf)",
    )
    profile.add_argument(
        "--full", action="store_true", help="include the slow suite rows"
    )
    _parallel_sccs_argument(profile)
    profile.add_argument(
        "--json", action="store_true", help="emit the recorded entries as JSON"
    )

    fuzz = commands.add_parser(
        "fuzz",
        help="differential fuzzing: random programs, analyser claims checked"
        " against seeded concrete executions",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default: 0)"
    )
    fuzz.add_argument(
        "--count", type=int, default=100, help="programs to generate (default: 100)"
    )
    fuzz.add_argument(
        "--runs",
        type=int,
        default=10,
        help="seeded concrete interpreter runs per program (default: 10)",
    )
    fuzz.add_argument(
        "--size", type=int, default=3, help="generator size budget (default: 3)"
    )
    fuzz.add_argument(
        "--no-baselines",
        action="store_true",
        help="check only CHORA's claims (skip the unrolling and ICRA baselines)",
    )
    fuzz.add_argument(
        "--minimize",
        action="store_true",
        help="shrink each finding to a minimal reproducer (slower: every"
        " shrink candidate is re-analysed)",
    )
    fuzz.add_argument(
        "--out",
        type=Path,
        default=Path("fuzz-findings"),
        help="directory for finding artifacts (default: fuzz-findings/)",
    )
    _engine_arguments(fuzz, jobs=True)

    commands.add_parser("suites", help="list the benchmark suites")

    cache = commands.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=["stats", "clear"])
    _cache_location_arguments(cache)

    return parser


def _timeout_seconds(text: str) -> float:
    """Parse ``--timeout``: a non-negative float; ``0`` is a real deadline.

    ``0`` means an *immediate* deadline — every task times out — which is
    what a literal reading of "0 seconds" promises, and is occasionally
    useful (e.g. draining a suite into pure cache-hit reporting).  It must
    never silently disable the deadline; omitting the flag does that.
    """
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid timeout {text!r}") from None
    if not math.isfinite(value):
        # NaN compares False against every deadline check downstream, which
        # would silently disable the deadline; infinities are just "omit
        # the flag" in disguise.
        raise argparse.ArgumentTypeError(
            f"timeout must be a finite number of seconds, got {text}"
        )
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"timeout must be >= 0 seconds, got {text}"
        )
    return value


def _engine_arguments(
    parser: argparse.ArgumentParser,
    jobs: bool,
    json_flag: bool = True,
    memo_flag: bool = True,
) -> None:
    if jobs:
        parser.add_argument(
            "--jobs",
            "-j",
            type=int,
            default=1,
            help="number of concurrent worker processes (default: 1)",
        )
    parser.add_argument(
        "--timeout",
        type=_timeout_seconds,
        default=None,
        metavar="SECONDS",
        help="per-program deadline; 0 is an immediate deadline, omit the"
        " flag for no deadline (default: none)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk result cache"
    )
    _cache_location_arguments(parser)
    if memo_flag:
        parser.add_argument(
            "--memo-snapshot",
            action=argparse.BooleanOptionalAction,
            default=None,
            help="warm-start worker forks from the persisted polyhedral memo"
            " snapshot (default: on whenever the result cache is enabled)",
        )
    _parallel_sccs_argument(parser)
    if json_flag:
        parser.add_argument(
            "--json", action="store_true", help="emit machine-readable JSON"
        )


def _cache_location_arguments(parser: argparse.ArgumentParser) -> None:
    """``--cache-dir`` / ``--cache-url``: one store location, two transports."""
    where = parser.add_mutually_exclusive_group()
    where.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="result cache location (default: REPRO_CACHE_DIR or ~/.cache/repro-chora)",
    )
    where.add_argument(
        "--cache-url",
        default=None,
        metavar="URL",
        help="use the cache plane of a running repro serve instead of a"
        " local directory (shares results, the memo snapshot and the"
        " incremental store across machines), e.g. http://127.0.0.1:8734",
    )


def _lint_gate_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--lint",
        action="store_true",
        help="lint each program first and reject those with error-severity"
        " diagnostics (structured task errors, never crashes); lint-clean"
        " programs analyse bit-identically to a run without --lint",
    )


def _apply_lint_gate(arguments: argparse.Namespace) -> None:
    """Install ``--lint`` process-wide so forked and spawned workers see it.

    An environment variable for the same reason ``--parallel-sccs`` uses
    one: it must reach worker processes without entering task cache keys.
    ``main`` restores the variable on exit so in-process callers (tests,
    embedding) do not gate every later run.
    """
    if getattr(arguments, "lint", False):
        import os

        from .engine.tasks import LINT_GATE_ENV

        os.environ[LINT_GATE_ENV] = "1"


def _parallel_sccs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--parallel-sccs",
        nargs="?",
        const="auto",
        default=None,
        type=_parallel_sccs_value,
        metavar="N",
        help="analyse independent call-graph SCCs of each program in up to N"
        " forked children (bare flag or 'auto': one per CPU; 0/1: serial;"
        " default: serial, or REPRO_PARALLEL_SCCS).  Verdicts, bounds and"
        " tables are bit-identical to a serial run",
    )


def _parallel_sccs_value(text: str):
    if text == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a worker count or 'auto', got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("the SCC worker count must be >= 0")
    return value


def _apply_parallel_sccs(arguments: argparse.Namespace) -> Optional[int]:
    """Install the ``--parallel-sccs`` setting process-wide, if given.

    Both channels are set: the in-process override covers this process and
    every forked engine worker, the environment variable covers spawned
    worker replacements (which start from a fresh interpreter).
    """
    value = getattr(arguments, "parallel_sccs", None)
    if value is None:
        return None
    import os

    from .core.parallel import PARALLEL_SCCS_ENV, resolve_worker_request
    from .core import set_parallel_sccs

    workers = resolve_worker_request(value)
    set_parallel_sccs(workers)
    os.environ[PARALLEL_SCCS_ENV] = str(workers)
    return workers


def _make_engine(arguments: argparse.Namespace) -> BatchEngine:
    return BatchEngine(
        jobs=getattr(arguments, "jobs", 1),
        # None (flag omitted) disables the deadline; 0 is a real, immediate
        # deadline and must not be coerced away.
        timeout=arguments.timeout,
        cache=make_cache(
            no_cache=getattr(arguments, "no_cache", False),
            directory=arguments.cache_dir,
            url=getattr(arguments, "cache_url", None),
        ),
        options=ChoraOptions(),
        memo_snapshot=getattr(arguments, "memo_snapshot", None),
    )


# ---------------------------------------------------------------------- #
# Sub-commands
# ---------------------------------------------------------------------- #
def _command_analyze(arguments: argparse.Namespace) -> int:
    _apply_parallel_sccs(arguments)
    _apply_lint_gate(arguments)
    try:
        source = arguments.file.read_text(encoding="utf-8")
    except OSError as error:
        print(f"repro: cannot read {arguments.file}: {error}", file=sys.stderr)
        return 2
    # A malformed program is the user's typo, not an analysis failure:
    # report the conventional one-line file:line diagnostic and exit 2
    # before spending engine time on it.
    from .lang import ParseError, parse_program
    from .lint import parse_failure_diagnostic

    try:
        parse_program(source)
    except ParseError as error:
        print(parse_failure_diagnostic(error).render(str(arguments.file)), file=sys.stderr)
        return 2
    substitutions = []
    for item in arguments.sub:
        name, _, value = item.partition("=")
        try:
            substitutions.append((name, int(value)))
        except ValueError:
            print(f"repro: bad --sub {item!r} (expected NAME=INT)", file=sys.stderr)
            return 2
    task = AnalysisTask(
        name=arguments.file.stem,
        source=source,
        kind="analyze",
        procedure=arguments.procedure,
        cost_variable=arguments.cost_variable,
        substitutions=tuple(sorted(substitutions)),
    )
    engine = _make_engine(arguments)
    result = engine.run([task])[0]
    if arguments.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0 if result.ok else 1
    if not result.ok:
        # The payload-level detail is a full traceback; the last line is the
        # exception itself, which is what a user typo needs to see.
        lines = [line for line in result.detail.splitlines() if line.strip()]
        detail = lines[-1] if lines else result.detail
        print(f"{result.outcome}: {detail}", file=sys.stderr)
        # Front-end rejections (unsupported constructs, --lint errors) are
        # usage errors like a parse failure, not analysis failures.
        return 2 if result.detail.startswith("invalid-program:") else 1
    payload = result.payload
    for name, text in payload.get("summaries", {}).items():
        print(f"=== {name} ===")
        print(text)
        print()
    for outcome in payload.get("assertions", []):
        status = "PROVED " if outcome["proved"] else "UNKNOWN"
        print(f"{status} assert({outcome['text']}) in {outcome['procedure']}")
    if payload.get("bound") is not None:
        expression = payload.get("expression")
        suffix = f"  [{expression}]" if expression else ""
        print(f"cost bound for {arguments.procedure}: {payload['bound']}{suffix}")
    cached = " (cached)" if result.cache_hit else ""
    print(f"done in {result.wall_time:.2f}s{cached}")
    return 0


def _command_bench(arguments: argparse.Namespace) -> int:
    parallel_sccs = _apply_parallel_sccs(arguments)
    _apply_lint_gate(arguments)
    full = arguments.full or full_bench_enabled()
    try:
        tasks = suite_tasks(
            arguments.suite, full, tool=arguments.tool, depth=arguments.depth
        )
    except ValueError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    if arguments.distribute is not None:
        if arguments.shard is not None:
            print(
                "repro: --distribute and --shard are mutually exclusive"
                " (the coordinator computes the shard partition itself)",
                file=sys.stderr,
            )
            return 2
        return _bench_distribute(arguments, tasks, full)
    options = ChoraOptions()
    cache = make_cache(
        no_cache=getattr(arguments, "no_cache", False),
        directory=arguments.cache_dir,
        url=getattr(arguments, "cache_url", None),
    )

    shard = None
    run_tasks = tasks
    mine: list = []
    foreign: list = []
    if arguments.shard is not None:
        from .engine.shard import merged_shard_results, parse_shard, partition_tasks

        try:
            shard = parse_shard(arguments.shard)
        except ValueError as error:
            print(f"repro: {error}", file=sys.stderr)
            return 2
        if cache is None:
            print(
                "repro: --shard needs the result cache (it is the shared store"
                " that merges the shards); drop --no-cache and point every"
                " shard's --cache-dir at one directory",
                file=sys.stderr,
            )
            return 2
        mine, foreign = partition_tasks(tasks, *shard)
        run_tasks = [task for _, task in mine]

    def progress(result: BatchResult) -> None:
        if not arguments.json:
            print(f"  {result.name}: {_verdict(result)}", flush=True)

    if arguments.engine == "warm":
        from .service import WorkerPool, run_batch

        with WorkerPool(
            workers=arguments.jobs,
            timeout=arguments.timeout,
            options=options,
            cache=cache,
            memo_snapshot=arguments.memo_snapshot,
            parallel_sccs=parallel_sccs,
        ) as pool:
            # The same suite-serving path POST /batch uses, so a local warm
            # bench and a served suite return identical records.
            results, _ = run_batch(
                pool, run_tasks, suite=arguments.suite, progress=progress
            )
    else:
        engine = BatchEngine(
            jobs=arguments.jobs,
            timeout=arguments.timeout,
            cache=cache,
            options=options,
            memo_snapshot=arguments.memo_snapshot,
        )
        results = engine.run(run_tasks, progress=progress)

    if shard is not None:
        results = merged_shard_results(
            tasks, results, mine, foreign, cache, options, shard[1]
        )

    totals = summarize_batch(results)
    if arguments.json:
        print(
            json.dumps(
                {
                    "suite": arguments.suite,
                    "tool": arguments.tool,
                    "engine": arguments.engine,
                    "shard": arguments.shard,
                    "jobs": arguments.jobs,
                    "full": full,
                    "results": [result.to_dict() for result in results],
                    "totals": totals,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        _print_batch_report(results, totals)
    if totals["error"] or totals["crash"]:
        return 1
    # Exit 3 distinguishes "this shard succeeded but the merged suite is
    # still missing other shards' results" from a complete run, so a
    # driver coordinating N machines can poll on the exit status.
    if totals["pending"]:
        return 3
    return 0


def _bench_distribute(arguments: argparse.Namespace, tasks, full: bool) -> int:
    """Coordinator mode: fan shards to remote serves and merge the records."""
    from .service.coordinator import distribute_batch, parse_hosts

    try:
        hosts = parse_hosts(arguments.distribute)
    except ValueError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2

    def log(message: str) -> None:
        print(f"repro bench: {message}", file=sys.stderr, flush=True)

    results, reports = distribute_batch(
        tasks,
        hosts,
        deadline_ms=arguments.deadline_ms,
        retries_429=arguments.retry_429,
        log=log,
    )
    totals = summarize_batch(results)
    if arguments.json:
        print(
            json.dumps(
                {
                    "suite": arguments.suite,
                    "tool": arguments.tool,
                    "engine": "distribute",
                    "distribute": hosts,
                    "shards": reports,
                    "full": full,
                    "results": [result.to_dict() for result in results],
                    "totals": totals,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        _print_batch_report(results, totals)
        served = sum(1 for report in reports if report["ok"])
        print(
            f"{served}/{len(reports)} shards served across"
            f" {len(hosts)} hosts"
        )
    if totals["error"] or totals["crash"]:
        return 1
    if totals["pending"]:
        return 3
    return 0


def _print_batch_report(results, totals: dict) -> None:
    """The human-readable table + summary line shared by bench and batch."""
    print()
    print(
        format_table(
            ["benchmark", "suite", "kind", "outcome", "verdict", "time", "cache"],
            [
                [
                    result.name,
                    result.suite or "-",
                    result.kind,
                    result.outcome,
                    _verdict(result),
                    f"{result.wall_time:.2f}s",
                    "hit" if result.cache_hit else "-",
                ]
                for result in results
            ],
        )
    )
    # Defaults: local engines always fill every counter, but this also
    # renders responses from a remote service of another version.
    def count(key: str):
        value = totals.get(key)
        return value if isinstance(value, (int, float)) else 0

    pending = f", {count('pending')} pending" if count("pending") else ""
    crash = f", {count('crash')} crash" if count("crash") else ""
    print(
        f"\n{count('ok')}/{count('total')} ok, {count('proved')} proved, "
        f"{count('timeout')} timeout, {count('error')} error{crash}{pending}, "
        f"{count('cache_hits')} cache hits, {count('wall_time'):.2f}s total"
    )


def _command_batch(arguments: argparse.Namespace) -> int:
    """Client mode: run a suite on a remote ``repro serve`` via POST /v1/batch."""
    from .service.client import (
        MalformedResponse,
        ServiceClient,
        ServiceHTTPError,
        ServiceUnreachable,
    )

    if (arguments.suite is None) == (arguments.tasks is None):
        print(
            "repro batch: pass exactly one of --suite NAME or --tasks FILE",
            file=sys.stderr,
        )
        return 2
    if arguments.tasks is not None:
        # An inline task list carries its own kind/params per task; suite
        # options silently doing nothing would mislabel measurements.
        if arguments.tool != "chora" or arguments.depth is not None or arguments.full:
            print(
                "repro batch: --tool/--depth/--full apply to --suite runs;"
                " inline --tasks objects set their own kind and params",
                file=sys.stderr,
            )
            return 2
        try:
            items = json.loads(arguments.tasks.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"repro batch: cannot read {arguments.tasks}: {error}", file=sys.stderr)
            return 2
        if not isinstance(items, list):
            print(
                f"repro batch: {arguments.tasks} must hold a JSON list of"
                " task objects",
                file=sys.stderr,
            )
            return 2
        body: dict = {"tasks": items}
    else:
        body = {
            "suite": arguments.suite,
            "full": arguments.full or full_bench_enabled(),
            "tool": arguments.tool,
        }
        if arguments.depth is not None:
            body["depth"] = arguments.depth
    try:
        with ServiceClient(arguments.url, timeout=arguments.http_timeout) as client:
            document = client.batch(
                body,
                deadline_ms=arguments.deadline_ms,
                retries_429=arguments.retry_429,
            ).document
    except ServiceHTTPError as error:
        # The envelope names the failure precisely; quote it.  429 and 504
        # are the service's SLO protections doing their job, called out as
        # such rather than reported as generic HTTP failures.
        hint = ""
        if error.status == 429 and error.retry_after is not None:
            hint = f" (retry after {error.retry_after:g}s)"
        rid = f" [{error.request_id}]" if error.request_id else ""
        print(
            f"repro batch: the service answered {error.status}"
            f" {error.code or 'error'}: {error.message}{hint}{rid}",
            file=sys.stderr,
        )
        return 2
    except ServiceUnreachable as error:
        print(f"repro batch: cannot reach {arguments.url}: {error}", file=sys.stderr)
        return 2
    except MalformedResponse as error:
        print(f"repro batch: malformed service response: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"repro batch: {error}", file=sys.stderr)
        return 2
    if not isinstance(document, dict):
        print("repro batch: malformed service response: not a JSON object",
              file=sys.stderr)
        return 2
    try:
        results = [BatchResult.from_dict(r) for r in document.get("results", [])]
        totals = dict(document["totals"])
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        print(f"repro batch: malformed service response: {error}", file=sys.stderr)
        return 2
    if arguments.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        _print_batch_report(results, totals)
        spliced = sum(
            len(entry.get("reused", ()))
            for entry in document.get("incremental", [])
            if isinstance(entry, dict)
        )
        print(f"{spliced} procedure summaries spliced by the service")
    if totals.get("error") or totals.get("crash"):
        return 1
    return 0


def _command_serve(arguments: argparse.Namespace) -> int:
    from .service import serve as build_server

    parallel_sccs = _apply_parallel_sccs(arguments)
    cache = make_cache(
        no_cache=getattr(arguments, "no_cache", False),
        directory=arguments.cache_dir,
        url=getattr(arguments, "cache_url", None),
    )
    try:
        # serve() binds the socket before forking the pool, so a busy port
        # fails here with nothing to clean up.
        from .service.server import DEFAULT_BACKLOG

        server = build_server(
            host=arguments.host,
            port=arguments.port,
            workers=arguments.workers,
            timeout=arguments.timeout,
            cache=cache,
            verbose=arguments.verbose,
            backlog=(
                arguments.backlog
                if arguments.backlog is not None
                else DEFAULT_BACKLOG
            ),
            parallel_sccs=parallel_sccs,
        )
    except OSError as error:
        print(
            f"repro serve: cannot bind {arguments.host}:{arguments.port}: {error}",
            file=sys.stderr,
        )
        return 2
    host, port = server.address
    print(
        f"repro serve: {arguments.workers} warm workers on http://{host}:{port}"
        f" (/v1: POST analyze, POST batch, GET healthz, GET stats, GET"
        f" metrics, cache plane under /v1/cache;"
        f" admits {server.capacity} requests; Ctrl-C stops)",
        flush=True,
    )
    # SIGTERM (what init systems and CI send) must take the same clean
    # shutdown path as Ctrl-C, or workers lose their persisted warm state;
    # background jobs in non-interactive shells cannot even receive SIGINT.
    import signal

    def _on_sigterm(signum, frame):
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # not on the main thread (embedded in tests)
        previous = None
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
        server.close()
    return 0


def _verdict(result: BatchResult) -> str:
    if result.outcome != "ok":
        return result.outcome
    if result.bound is not None:
        return result.bound
    if result.proved is not None:
        return "proved" if result.proved else "unknown"
    return "ok"


def _command_profile(arguments: argparse.Namespace) -> int:
    from .engine import profile as perf

    parallel_sccs = _apply_parallel_sccs(arguments)
    if not arguments.micro and not arguments.suite and not arguments.engines:
        print(
            "repro profile: pass --suite NAME, --micro and/or --engines",
            file=sys.stderr,
        )
        return 2
    directory = arguments.perf_dir or perf.DEFAULT_PERF_DIR
    threshold = arguments.threshold / 100.0
    recorded: list[dict] = []
    failures: list[str] = []

    def record(name: str, entry: dict) -> None:
        path = perf.bench_path(directory, name)
        baseline = perf.latest_entry(perf.load_entries(path))
        perf.append_entry(path, entry)
        recorded.append(entry)
        if not arguments.json:
            print(f"== {name} -> {path}")
            print(
                format_table(
                    ["row", "seconds", "baseline", "ratio"],
                    [
                        [
                            row["name"],
                            f"{row['seconds']:.4f}",
                            _baseline_cell(baseline, row["name"]),
                            _ratio_cell(baseline, row),
                        ]
                        for row in entry["rows"]
                    ],
                )
            )
        # Engine-comparison and service-loadtest entries are informational
        # (sub-millisecond warm rows and HTTP latencies are machine noise)
        # and never gate.
        gated = entry.get("kind") not in ("engines", "service")
        if arguments.check and baseline is not None and gated:
            for regression in perf.compare_entries(baseline, entry, threshold):
                failures.append(f"{name}: {regression}")
            failures.extend(
                f"{name}: {change}" for change in _verdict_changes(baseline, entry)
            )

    if arguments.micro:
        record("micro", perf.micro_entry(arguments.label, arguments.repeats))
    if arguments.engines:
        record(
            "engines",
            perf.engine_comparison_entry(
                arguments.suite or "table2",
                label=arguments.label,
                repeats=arguments.repeats,
                full=arguments.full or full_bench_enabled(),
            ),
        )
    if arguments.suite:
        names = (
            sorted(suite_names()) if arguments.suite == "all" else [arguments.suite]
        )
        for name in names:
            tasks = suite_tasks(name, arguments.full or full_bench_enabled())
            engine = BatchEngine(
                jobs=arguments.jobs,
                timeout=arguments.timeout,
                cache=None,
                options=ChoraOptions(),
            )
            results = engine.run(tasks)
            record(
                name,
                perf.suite_entry_record(
                    name,
                    results,
                    arguments.label,
                    arguments.jobs,
                    timeout=arguments.timeout,
                    parallel_sccs=parallel_sccs,
                ),
            )
    if arguments.json:
        print(json.dumps({"entries": recorded}, indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION {failure}", file=sys.stderr)
        return 1
    return 0


def _baseline_cell(baseline: Optional[dict], name: str) -> str:
    if baseline is None:
        return "-"
    for row in baseline.get("rows", []):
        if row["name"] == name:
            return f"{row['seconds']:.4f}"
    return "-"


def _ratio_cell(baseline: Optional[dict], row: dict) -> str:
    cell = _baseline_cell(baseline, row["name"])
    if cell == "-" or float(cell) == 0.0:
        return "-"
    return f"{row['seconds'] / float(cell):.2f}x"


def _verdict_changes(baseline: dict, entry: dict) -> list[str]:
    """Analysis-verdict differences between two suite entries (must be none)."""
    if entry.get("kind") != "suite":
        return []
    reference = {
        row["name"]: (row.get("outcome"), row.get("proved"), row.get("bound"))
        for row in baseline.get("rows", [])
    }
    changes = []
    for row in entry.get("rows", []):
        expected = reference.get(row["name"])
        found = (row.get("outcome"), row.get("proved"), row.get("bound"))
        if expected is not None and expected != found:
            changes.append(f"{row['name']}: verdict changed {expected} -> {found}")
    return changes


def _command_loadtest(arguments: argparse.Namespace) -> int:
    """Drive open-loop load at a service and record BENCH_service.json."""
    from .engine import profile as perf
    from .engine.loadtest import loadtest_entry, run_loadtest

    document = None
    if arguments.program is not None:
        try:
            document = {"source": arguments.program.read_text(encoding="utf-8")}
        except OSError as error:
            print(
                f"repro loadtest: cannot read {arguments.program}: {error}",
                file=sys.stderr,
            )
            return 2
    try:
        report = run_loadtest(
            arguments.url,
            rps=arguments.rps,
            duration=arguments.duration,
            concurrency=arguments.concurrency,
            deadline_ms=arguments.deadline_ms,
            document=document,
        )
    except ValueError as error:
        print(f"repro loadtest: {error}", file=sys.stderr)
        return 2
    if not arguments.no_record:
        directory = arguments.perf_dir or perf.DEFAULT_PERF_DIR
        path = perf.bench_path(directory, "service")
        perf.append_entry(path, loadtest_entry(report, arguments.label))
        if not arguments.json:
            print(f"recorded -> {path}")
    if arguments.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        latency = report["latency"]

        def cell(value):
            return f"{value:.1f}ms" if isinstance(value, (int, float)) else "-"

        print(
            f"{report['served_2xx']}/{report['requested']} served in"
            f" {report['elapsed_seconds']:.1f}s"
            f" ({report['throughput_rps']:.1f} req/s),"
            f" {report['rejected_429']} backpressured (429),"
            f" {report['deadline_504']} past deadline (504),"
            f" {report['unreachable']} unreachable"
        )
        print(
            f"latency p50 {cell(latency['p50_ms'])}, p95 {cell(latency['p95_ms'])},"
            f" p99 {cell(latency['p99_ms'])}; generator lag p95"
            f" {cell(report['lag_p95_ms'])}"
        )
    if report["completed"] == 0:
        print("repro loadtest: no request completed", file=sys.stderr)
        return 2
    if report["served_2xx"] == 0:
        print("repro loadtest: no request was served (all non-2xx)", file=sys.stderr)
        return 1
    return 0


#: Per-program deadline applied when ``repro fuzz`` is run without
#: ``--timeout``: unlike the benchmark suites, generated programs have no
#: curated size, so an unbounded campaign could sink on one pathological
#: program.
FUZZ_DEFAULT_TIMEOUT = 60.0


def _fuzz_violation_kinds(result: BatchResult) -> set[str]:
    """The violation kinds one fuzz task exhibited (empty = clean/skipped).

    Engine-level outcomes map onto finding kinds: a worker crash is an
    analyser bug (``analyzer-crash``), a task error is an infrastructure or
    generator bug (``oracle-error``); timeouts and pending results are skips,
    not findings.
    """
    if result.outcome == "crash":
        return {"analyzer-crash"}
    if result.outcome == "error":
        return {"oracle-error"}
    if result.outcome != "ok":
        return set()
    findings = result.payload.get("findings", [])
    return {f["kind"] for f in findings if f["kind"] != "disagreement"}


def _command_fuzz(arguments: argparse.Namespace) -> int:
    # Importing the package registers the "fuzz" task kind; workers inherit
    # the registration through fork.
    from .fuzz import GeneratorConfig, format_program, generate_program, program_seed
    from .fuzz.shrink import shrink_program

    _apply_parallel_sccs(arguments)
    if arguments.timeout is None:
        arguments.timeout = FUZZ_DEFAULT_TIMEOUT
    config = GeneratorConfig(size=arguments.size)
    params = (
        ("runs", arguments.runs),
        ("seed", arguments.seed),
        ("baselines", not arguments.no_baselines),
    )
    tasks = []
    for index in range(arguments.count):
        seed = program_seed(arguments.seed, index)
        source = format_program(generate_program(seed, config))
        tasks.append(
            AnalysisTask(
                name=f"fuzz-s{arguments.seed}-{index:04d}",
                source=source,
                kind="fuzz",
                params=params + (("program_seed", seed),),
                suite="fuzz",
            )
        )

    done = 0

    def progress(result: BatchResult) -> None:
        nonlocal done
        done += 1
        if not arguments.json:
            kinds = _fuzz_violation_kinds(result)
            status = ",".join(sorted(kinds)) if kinds else result.outcome
            print(f"  [{done}/{len(tasks)}] {result.name}: {status}", flush=True)

    engine = _make_engine(arguments)
    results = engine.run(tasks, progress=progress)

    # ---- collect findings ---------------------------------------------- #
    task_by_name = {task.name: task for task in tasks}
    findings: list[dict] = []
    skipped = 0
    for result in results:
        if result.outcome in ("timeout", "pending"):
            skipped += 1
            continue
        kinds = _fuzz_violation_kinds(result)
        if not kinds:
            continue
        record = {
            "name": result.name,
            "campaign_seed": arguments.seed,
            "program_seed": task_by_name[result.name].param("program_seed"),
            "outcome": result.outcome,
            "kinds": sorted(kinds),
            "findings": list(result.payload.get("findings", []))
            or [{"kind": next(iter(kinds)), "detail": result.detail}],
            "claims": dict(result.payload.get("claims", {})),
            "source": task_by_name[result.name].source,
        }
        findings.append(record)

    # ---- minimize ------------------------------------------------------ #
    if arguments.minimize and findings:
        shrink_engine = BatchEngine(
            jobs=1,
            timeout=arguments.timeout,
            cache=None,
            options=ChoraOptions(),
        )

        def reproduces_factory(kinds: set[str]):
            def reproduces(candidate: str) -> bool:
                probe = AnalysisTask(
                    name="shrink-probe", source=candidate, kind="fuzz", params=params
                )
                outcome = shrink_engine.run([probe])[0]
                return bool(_fuzz_violation_kinds(outcome) & kinds)

            return reproduces

        for record in findings:
            if not arguments.json:
                print(f"  minimizing {record['name']} ...", flush=True)
            record["minimized_source"] = shrink_program(
                record["source"], reproduces_factory(set(record["kinds"]))
            )

    # ---- artifacts ------------------------------------------------------ #
    if findings:
        arguments.out.mkdir(parents=True, exist_ok=True)
        for record in findings:
            stem = arguments.out / record["name"]
            stem.with_suffix(".c").write_text(record["source"], encoding="utf-8")
            if "minimized_source" in record:
                (arguments.out / f"{record['name']}.min.c").write_text(
                    record["minimized_source"], encoding="utf-8"
                )
            stem.with_suffix(".json").write_text(
                json.dumps(
                    {key: value for key, value in record.items() if key != "source"},
                    indent=2,
                    sort_keys=True,
                )
                + "\n",
                encoding="utf-8",
            )

    # ---- report --------------------------------------------------------- #
    disagreements = sum(
        1
        for result in results
        if result.outcome == "ok"
        for f in result.payload.get("findings", [])
        if f["kind"] == "disagreement"
    )
    if arguments.json:
        print(
            json.dumps(
                {
                    "seed": arguments.seed,
                    "count": arguments.count,
                    "runs": arguments.runs,
                    "checked": len(results) - skipped,
                    "skipped": skipped,
                    "disagreements": disagreements,
                    "violations": findings,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"\n{len(results) - skipped}/{len(results)} programs checked"
            f" ({skipped} timed out), {len(findings)} with violations,"
            f" {disagreements} precision disagreements"
        )
        for record in findings:
            print(f"\n{record['name']} ({', '.join(record['kinds'])}):")
            for finding in record["findings"]:
                print(f"  - {finding['detail']}")
            print(f"  artifacts: {arguments.out / record['name']}.c / .json")
    return 1 if findings else 0


def _command_lint(arguments: argparse.Namespace) -> int:
    """Lint program files; exit 1 on error diagnostics, 0 otherwise."""
    from .lint import filter_diagnostics, has_errors, lint_source

    disabled = [
        code for item in arguments.disable for code in item.split(",") if code
    ]
    any_errors = False
    total = 0
    documents: list[dict] = []
    for path in arguments.files:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            print(f"repro lint: cannot read {path}: {error}", file=sys.stderr)
            return 2
        diagnostics = filter_diagnostics(
            lint_source(source), arguments.severity, disabled
        )
        any_errors = any_errors or has_errors(diagnostics)
        total += len(diagnostics)
        if arguments.json:
            documents.append(
                {
                    "file": str(path),
                    "ok": not has_errors(diagnostics),
                    "diagnostics": [d.to_dict() for d in diagnostics],
                }
            )
        else:
            for diagnostic in diagnostics:
                print(diagnostic.render(str(path)))
    if arguments.json:
        print(
            json.dumps(
                {"ok": not any_errors, "files": documents},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        files = len(arguments.files)
        print(
            f"{files} file{'s' if files != 1 else ''} linted,"
            f" {total} diagnostic{'s' if total != 1 else ''}"
        )
    return 1 if any_errors else 0


def _command_suites(arguments: argparse.Namespace) -> int:
    rows = []
    for suite in SUITES.values():
        fast = len(suite.iter(False))
        rows.append([suite.name, suite.title, fast, len(suite.entries)])
    print(format_table(["suite", "title", "fast entries", "total"], rows))
    return 0


def _command_cache(arguments: argparse.Namespace) -> int:
    if arguments.cache_url is not None:
        from .service.remote import RemoteStorage

        cache = ResultCache(storage=RemoteStorage(arguments.cache_url))
    else:
        cache = ResultCache(arguments.cache_dir or default_cache_directory())
    # Everything below goes through the CacheStorage protocol, so remote
    # stores render the same report a directory does; a remote store that
    # cannot be reached surfaces as one OSError, not a traceback.
    try:
        if arguments.action == "clear":
            removed = cache.clear()
            extras = []
            if cache.clear_memo_snapshot():
                extras.append("the polyhedra memo snapshot")
            if cache.clear_incremental_store():
                extras.append("the incremental summary store")
            suffix = f" (and {' and '.join(extras)})" if extras else ""
            print(
                f"removed {removed} cached results from"
                f" {cache.storage.location()}{suffix}"
            )
            return 0
        stats = cache.stats()
        print(f"store: {stats['directory']}")
        print(f"{stats['entries']} entries, {stats['bytes']} bytes")
        for suite, count in stats["suites"].items():
            print(f"  {suite}: {count}")
        namespaces = cache.storage.stats().get("namespaces") or {}
        for name, info in sorted(namespaces.items()):
            print(
                f"namespace {name}: {info.get('entries', 0)} entries,"
                f" {info.get('bytes', 0)} bytes"
            )
        memo = cache.memo_snapshot_stats()
        if memo["present"]:
            print(
                f"polyhedra memo snapshot: {memo['entries']} entries,"
                f" {memo['bytes']} bytes"
            )
            for table, count in memo["tables"].items():
                print(f"  {table}: {count}")
        else:
            print("polyhedra memo snapshot: none")
        store = cache.incremental_store_stats()
        if store["present"]:
            print(
                f"incremental summary store: {store['components']} components"
                f" ({store['procedures']} procedures), {store['bytes']} bytes"
            )
        else:
            print("incremental summary store: none")
    except OSError as error:
        print(f"repro cache: {error}", file=sys.stderr)
        return 2
    return 0


_COMMANDS = {
    "analyze": _command_analyze,
    "bench": _command_bench,
    "lint": _command_lint,
    "batch": _command_batch,
    "serve": _command_serve,
    "loadtest": _command_loadtest,
    "profile": _command_profile,
    "fuzz": _command_fuzz,
    "suites": _command_suites,
    "cache": _command_cache,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    import os

    from .engine.tasks import LINT_GATE_ENV

    arguments = build_parser().parse_args(argv)
    saved_gate = os.environ.get(LINT_GATE_ENV)
    try:
        return _COMMANDS[arguments.command](arguments)
    except BrokenPipeError:
        # Output piped into e.g. ``head``; not an analysis failure.
        return 0
    finally:
        if os.environ.get(LINT_GATE_ENV) != saved_gate:
            if saved_gate is None:
                os.environ.pop(LINT_GATE_ENV, None)
            else:
                os.environ[LINT_GATE_ENV] = saved_gate


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
