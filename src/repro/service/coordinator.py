"""The ``repro bench --distribute`` coordinator: shards fanned to services.

One machine partitions a suite with the *same* deterministic shard hash
``repro bench --shard i/n`` uses (:func:`~repro.engine.shard.shard_index`
over each task's cache material), sends shard ``k`` to the ``k``-th
``repro serve`` instance as one ``POST /v1/batch`` request, and merges the
returned records back into suite order.  Because the partition is a pure
function of task content and every service runs the same engine through
:func:`~repro.service.server.run_batch`, the merged records are
bit-identical to a single-box ``repro bench`` run (up to wall time and
cache-hit counters — timing is the one thing distribution changes).

Straggler policy: a shard whose host fails is retried on the surviving
hosts, each host at most once per shard (bounded, logged).  A host that was
*unreachable* (connection refused, reset, timed out) is marked dead so
later shards skip it; a host that answered an HTTP error stays in rotation
for other shards — it may only dislike this request.  A shard that fails on
every live host degrades to explicit per-task ``error`` records naming the
failure, never a shortened report.

Pair ``--distribute`` with ``--cache-url`` on the serve instances to share
one result cache and memo snapshot across the fleet; the coordinator
itself needs no cache — results ride back in the batch responses.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional, Sequence

from ..engine.batch import BatchResult
from ..engine.shard import shard_index
from ..engine.tasks import AnalysisTask
from .client import (
    ServiceClient,
    ServiceError,
    ServiceHTTPError,
    ServiceUnreachable,
    _parse_url,
)

__all__ = ["parse_hosts", "task_payload", "distribute_batch"]


def parse_hosts(spec: str) -> list[str]:
    """The normalized service URLs of one ``--distribute`` host list.

    ``spec`` is a comma-separated ``host:port[,host:port,...]`` list (a
    scheme is optional; only ``http`` is supported).  Raises ``ValueError``
    on empty items or duplicates — a duplicated host would silently halve
    the fleet while looking like scale-out.
    """
    hosts: list[str] = []
    seen: set[str] = set()
    for part in spec.split(","):
        part = part.strip()
        if not part:
            raise ValueError(
                f"empty host in --distribute list {spec!r}"
                " (expected host:port,host:port,...)"
            )
        host, port, prefix = _parse_url(part)
        url = f"http://{host}:{port}{prefix}"
        if url in seen:
            raise ValueError(f"duplicate host {url} in --distribute list")
        seen.add(url)
        hosts.append(url)
    if not hosts:
        raise ValueError("--distribute needs at least one host:port")
    return hosts


def task_payload(task: AnalysisTask) -> dict[str, Any]:
    """The ``POST /v1/batch`` task object one :class:`AnalysisTask` becomes.

    Shaped to round-trip through the service's task parser
    (:func:`~repro.service.server.task_from_request`'s ``_task_from_mapping``)
    so the reconstructed task has the same cache material — and therefore
    the same cache key and shard assignment — as the local one.
    """
    payload: dict[str, Any] = {
        "name": task.name,
        "source": task.source,
        "kind": task.kind,
        "cost_variable": task.cost_variable,
        "substitutions": [[name, value] for name, value in task.substitutions],
        "params": {key: value for key, value in task.params},
    }
    if task.procedure is not None:
        payload["procedure"] = task.procedure
    if task.suite is not None:
        payload["suite"] = task.suite
    return payload


def _default_client_factory(timeout: Optional[float]) -> Callable[[str], ServiceClient]:
    return lambda url: ServiceClient(url, timeout=timeout)


def distribute_batch(
    tasks: Sequence[AnalysisTask],
    hosts: Sequence[str],
    *,
    deadline_ms: Optional[float] = None,
    timeout: Optional[float] = 600.0,
    retries_429: int = 2,
    log: Optional[Callable[[str], None]] = None,
    client_factory: Optional[Callable[[str], ServiceClient]] = None,
) -> tuple[list[BatchResult], list[dict[str, Any]]]:
    """Fan ``tasks`` over ``hosts`` shard-wise and merge in suite order.

    Returns ``(results, shard_reports)``: one result per task, in input
    order, plus one report per non-empty shard describing which host served
    it and what failed along the way (``{"shard", "tasks", "host",
    "attempts", "ok"}``).  ``deadline_ms`` bounds each shard's batch
    request end to end; ``retries_429`` is passed through to the client's
    backpressure retry loop.  ``client_factory`` exists for tests — each
    shard thread builds its own client (the keep-alive client is
    single-threaded).
    """
    if not hosts:
        raise ValueError("distribute_batch needs at least one host")
    count = len(hosts)
    emit = log or (lambda message: None)
    factory = client_factory or _default_client_factory(timeout)

    shards: dict[int, list[tuple[int, AnalysisTask]]] = {}
    for position, task in enumerate(tasks):
        shards.setdefault(shard_index(task, count), []).append((position, task))

    dead_hosts: set[str] = set()
    dead_lock = threading.Lock()

    def _is_dead(url: str) -> bool:
        with dead_lock:
            return url in dead_hosts

    def _mark_dead(url: str) -> None:
        with dead_lock:
            dead_hosts.add(url)

    def _run_shard(
        shard: int, members: list[tuple[int, AnalysisTask]]
    ) -> tuple[list[tuple[int, BatchResult]], dict[str, Any]]:
        body = {"tasks": [task_payload(task) for _, task in members]}
        attempts: list[dict[str, Any]] = []
        last_error = "no host attempted"
        # Start at the shard's own host, then rotate through the survivors.
        for offset in range(count):
            url = hosts[(shard - 1 + offset) % count]
            if _is_dead(url):
                attempts.append({"host": url, "error": "skipped: host marked dead"})
                continue
            client = factory(url)
            try:
                response = client.batch(
                    body, deadline_ms=deadline_ms, retries_429=retries_429
                )
            except ServiceUnreachable as error:
                _mark_dead(url)
                last_error = f"{url}: {error}"
                attempts.append({"host": url, "error": str(error)})
                emit(
                    f"shard {shard}/{count}: {url} unreachable"
                    f" ({error}); marking host dead and retrying elsewhere"
                )
                continue
            except ServiceHTTPError as error:
                last_error = f"{url}: {error}"
                attempts.append({"host": url, "error": str(error)})
                if error.status >= 500 or error.status == 429:
                    emit(
                        f"shard {shard}/{count}: {url} answered"
                        f" {error.status}; retrying on another host"
                    )
                    continue
                # A 4xx is this request's fault; another host will say the
                # same thing, so fail the shard now.
                emit(f"shard {shard}/{count}: {url} rejected the batch: {error}")
                break
            except ServiceError as error:
                last_error = f"{url}: {error}"
                attempts.append({"host": url, "error": str(error)})
                emit(
                    f"shard {shard}/{count}: {url} failed"
                    f" ({error}); retrying on another host"
                )
                continue
            finally:
                client.close()
            try:
                merged = _shard_results(response.document, members)
            except ValueError as error:
                last_error = f"{url}: {error}"
                attempts.append({"host": url, "error": str(error)})
                emit(
                    f"shard {shard}/{count}: {url} returned a malformed"
                    f" batch document ({error}); retrying on another host"
                )
                continue
            attempts.append({"host": url, "error": None})
            report = {
                "shard": shard,
                "tasks": len(members),
                "host": url,
                "attempts": attempts,
                "ok": True,
            }
            return merged, report
        failed = [
            (
                position,
                BatchResult(
                    name=task.name,
                    kind=task.kind,
                    outcome="error",
                    wall_time=0.0,
                    suite=task.suite,
                    detail=f"shard {shard}/{count} failed on every host;"
                    f" last error: {last_error}",
                ),
            )
            for position, task in members
        ]
        emit(f"shard {shard}/{count}: failed on every host ({last_error})")
        report = {
            "shard": shard,
            "tasks": len(members),
            "host": None,
            "attempts": attempts,
            "ok": False,
        }
        return failed, report

    outcomes: dict[int, tuple[list[tuple[int, BatchResult]], dict[str, Any]]] = {}

    def _shard_thread(shard: int, members: list[tuple[int, AnalysisTask]]) -> None:
        outcomes[shard] = _run_shard(shard, members)

    threads = [
        threading.Thread(
            target=_shard_thread, args=(shard, members), daemon=True
        )
        for shard, members in sorted(shards.items())
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    slots: list[Optional[BatchResult]] = [None] * len(tasks)
    reports: list[dict[str, Any]] = []
    for shard in sorted(outcomes):
        merged, report = outcomes[shard]
        reports.append(report)
        for position, result in merged:
            slots[position] = result
    results: list[BatchResult] = []
    for position, task in enumerate(tasks):
        result = slots[position]
        if result is None:  # pragma: no cover - shard bookkeeping bug guard
            result = BatchResult(
                name=task.name,
                kind=task.kind,
                outcome="error",
                wall_time=0.0,
                suite=task.suite,
                detail="no shard reported a result for this task; this is a"
                " coordinator bookkeeping bug, not an analysis outcome",
            )
        results.append(result)
    return results, reports


def _shard_results(
    document: Any, members: Sequence[tuple[int, AnalysisTask]]
) -> list[tuple[int, BatchResult]]:
    """Decode one shard's batch response against its member list."""
    if not isinstance(document, dict):
        raise ValueError("batch response was not a JSON object")
    records = document.get("results")
    if not isinstance(records, list):
        raise ValueError('batch response had no "results" list')
    if len(records) != len(members):
        raise ValueError(
            f"batch response carried {len(records)} results for"
            f" {len(members)} tasks"
        )
    merged: list[tuple[int, BatchResult]] = []
    for (position, _task), record in zip(members, records):
        merged.append((position, BatchResult.from_dict(record)))
    return merged
