"""The ``repro serve`` HTTP front-end: a single-event-loop asyncio server.

The service speaks a versioned HTTP API.  Every route is mounted under
``/v1/`` (``/v1/analyze``, ``/v1/batch``, ``/v1/healthz``, ``/v1/stats``,
``/v1/metrics``); the unversioned paths from earlier releases still answer,
marked with a ``Deprecation: true`` header and a ``Link`` to their
successor.  One ``asyncio`` event loop accepts **keep-alive and pipelined**
connections and parses HTTP/1.1 itself (stdlib only); analysis work is
dispatched to the forked :class:`~repro.service.pool.WorkerPool` through a
thread-pool executor, so a slow analysis never blocks the acceptor, health
checks, or metrics scrapes.

Three service-level-objective mechanisms wrap every analysis request:

**Bounded admission with backpressure.**  At most ``pool.workers +
backlog`` analysis requests (``/analyze`` + ``/batch``) are admitted at
once — the pool's workers plus a bounded queue waiting for one.  A request
beyond that is answered ``429 Too Many Requests`` with a ``Retry-After``
hint immediately, instead of queueing without bound and letting latency
grow until clients give up.

**Per-request deadlines.**  An ``X-Repro-Deadline-Ms`` header (or a
``"deadline_ms"`` body field) bounds the request end to end — queue wait
included.  The remaining budget is propagated into
:meth:`WorkerPool.submit <repro.service.pool.WorkerPool.submit>` as the
per-request timeout (it can only tighten the operator's ``--timeout``);
when the client's deadline expires the response is ``504`` with the
timeout record in the error detail, and the overrun worker is replaced, so
an expired request never holds a slot.

**Latency accounting.**  ``GET /v1/metrics`` reports, per route, p50/p95/
p99/mean latency over a ring buffer of recent requests, plus queue depth,
in-flight count, worker utilisation, total 2xx/4xx/5xx counts, and the
429/504 counters.  ``repro loadtest`` drives open-loop load against these
numbers and records them to ``benchmarks/perf/BENCH_service.json``.

Every non-2xx response carries one uniform envelope::

    {"error": {"code": "<machine_code>", "message": "...", "detail": {...}},
     "request_id": "..."}

with the request id echoed in an ``X-Request-Id`` header (2xx responses
carry the header only — analysis records stay bit-identical to ``repro
bench --json``).  Codes: ``bad_request``, ``not_found``,
``method_not_allowed``, ``payload_too_large``, ``queue_full``,
``deadline_exceeded``, ``internal``.

The routes themselves are unchanged in substance:

``POST /v1/analyze``
    Body: a JSON object ``{"source": "...", "procedure": null,
    "cost_variable": "cost", "substitutions": {"n": 8}, "kind":
    "analyze"}`` — everything but ``source`` optional — or the raw program
    text itself (``Content-Type: text/plain``).  The response is the same
    JSON record ``repro analyze --json`` prints
    (:meth:`repro.engine.batch.BatchResult.to_dict`), with HTTP 200 even
    for ``error``/``timeout`` outcomes: the record *is* the result (unless
    a client deadline expired — that is the 504 above).
``POST /v1/batch``
    Body: a whole suite — either ``{"suite": "table2"}`` (optionally with
    ``"full"``, ``"tool"``, ``"depth"``), resolved through the benchmark
    registry of :mod:`repro.benchlib.suites`, or an inline task list
    ``{"tasks": [...]}`` / a bare JSON list.  The response carries the
    same ordered ``BatchResult`` records ``repro bench --json`` prints,
    the batch totals, and a per-task incremental splice summary (see
    :func:`run_batch`).  A ``"deadline_ms"`` bounds the whole batch.
``GET /v1/healthz``
    Liveness: ``{"status": "ok", "workers": N}``.
``GET /v1/stats``
    Pool counters (requests, cache hits, incremental splice totals,
    restarts) plus the result-cache stats when a cache is attached.
``GET /v1/metrics``
    The SLO document described above.

One route family is new in substance — the **cache plane** (``/v1`` only,
no legacy alias).  When the service has a cache attached, it serves that
store's entries over HTTP so :class:`~repro.service.remote.RemoteStorage`
backends on other machines can share it:

``GET/PUT/DELETE /v1/cache/{namespace}/{name}``
    One entry, moved verbatim as ``application/octet-stream``.  The
    ``results`` namespace is the result cache itself; ``memo`` and
    ``incremental`` hold the polyhedral memo snapshot and the persistent
    incremental store.  GET answers the raw bytes or 404; PUT stores the
    request body atomically; DELETE reports ``{"deleted": bool}``.
``GET /v1/cache/{namespace}``
    The sorted entry names of one namespace.
``GET /v1/cache/stats``
    Entry/byte counters of the whole store, per namespace, plus the memo
    snapshot and incremental store summaries.

Cache routes do **not** take an admission slot (like ``/lint``): they are
storage I/O, not analysis, and a shard worker fetching the shared memo
snapshot must not deadlock behind the very batch requests it serves.
"""

from __future__ import annotations

import asyncio
import collections
import itertools
import json
import math
import re
import socket
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from ..engine.batch import BatchResult, summarize_batch
from ..engine.cache import ResultCache
from ..engine.config import DEFAULT_SERVICE_PORT as DEFAULT_PORT
from ..engine.profile import percentile
from ..engine.tasks import AnalysisTask
from .pool import WorkerPool

__all__ = [
    "AnalysisServer",
    "ServiceMetrics",
    "serve",
    "run_batch",
    "task_from_request",
    "tasks_from_batch_request",
    "API_VERSION",
    "DEFAULT_BACKLOG",
    "DEFAULT_PORT",
]

#: The mounted API version (route prefix ``/v1``).
API_VERSION = "v1"

#: Default admission queue length beyond the worker count: up to
#: ``workers + DEFAULT_BACKLOG`` analysis requests are in flight before the
#: service answers 429.
DEFAULT_BACKLOG = 16

#: Largest accepted request body (a whole inline task list fits easily).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Ring-buffer window of per-route latency samples behind the percentiles.
LATENCY_WINDOW = 512

#: Valid cache-plane namespace and entry names: portable filenames with no
#: leading dot, so a directory-backed store can never be walked out of.
_CACHE_SEGMENT = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")

_STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


# ---------------------------------------------------------------------- #
# Request-body parsing (shared by the async routes and their tests)
# ---------------------------------------------------------------------- #
def _integer_value(label: str, value: Any) -> int:
    """Coerce one request field to an exact integer.

    Booleans and non-integral numbers are rejected rather than silently
    truncated (``2.7`` used to become ``2`` and ``true`` become ``1``);
    integral floats (``2.0``) and integer strings are accepted.  ``label``
    names the field in the 400 error text (``substitution 'n'``,
    ``"depth"``).
    """
    if isinstance(value, bool):
        raise ValueError(f"{label} must be an integer, not a boolean")
    if isinstance(value, float):
        if not value.is_integer():
            raise ValueError(f"{label} must be an integer, got {value!r}")
        return int(value)
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ValueError(f"{label} must be an integer, got {value!r}") from None


def _task_from_mapping(data: Mapping[str, Any]) -> AnalysisTask:
    """Build one analysis task from a request-shaped JSON object."""
    source = data.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ValueError('"source" must be a non-empty string of program text')
    kind = data.get("kind", "analyze")
    if not isinstance(kind, str):
        raise ValueError('"kind" must be a string')
    substitutions = data.get("substitutions") or {}
    if isinstance(substitutions, Mapping):
        pairs = substitutions.items()
    elif isinstance(substitutions, (list, tuple)):
        pairs = substitutions
    else:
        raise ValueError('"substitutions" must be an object or a pair list')
    try:
        normalized = tuple(
            sorted(
                (str(name), _integer_value(f"substitution {str(name)!r}", value))
                for name, value in pairs
            )
        )
    except ValueError:
        raise
    except TypeError:
        raise ValueError('"substitutions" must be an object or a pair list') from None
    params = data.get("params") or {}
    if not isinstance(params, Mapping):
        raise ValueError('"params" must be an object')
    suite = data.get("suite")
    if suite is not None and not isinstance(suite, str):
        raise ValueError('"suite" must be a string when given')
    return AnalysisTask(
        name=str(data.get("name", "request")),
        source=source,
        kind=kind,
        procedure=data.get("procedure"),
        cost_variable=str(data.get("cost_variable", "cost")),
        substitutions=normalized,
        params=tuple(sorted((str(key), value) for key, value in params.items())),
        suite=suite,
    )


def _json_object(body: bytes) -> Any:
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"request body is not valid JSON: {error}") from None
    if not isinstance(data, (dict, list)):
        raise ValueError("request body must be a JSON object")
    return data


def _deadline_ms_value(value: Any) -> float:
    """Validate one deadline: a positive, finite number of milliseconds."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        try:
            value = float(value)
        except (TypeError, ValueError):
            raise ValueError(
                f"the deadline must be a number of milliseconds, got {value!r}"
            ) from None
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ValueError(
            f"the deadline must be a positive number of milliseconds, got {value!r}"
        )
    return value


def lint_request(body: bytes, content_type: str) -> tuple[str, str, tuple[str, ...]]:
    """The ``(source, minimum severity, disabled codes)`` of ``POST /lint``.

    ``text/plain`` bodies are bare program text with the defaults (all
    severities, no code disabled); JSON bodies take ``"source"`` plus the
    optional ``"severity"`` and ``"disable"`` fields matching the CLI flags.
    Raises ``ValueError`` on malformed bodies (the 400 text).
    """
    from ..lint import SEVERITIES

    if content_type.startswith("text/plain"):
        return body.decode("utf-8", "replace"), SEVERITIES[-1], ()
    data = _json_object(body)
    if not isinstance(data, Mapping):
        raise ValueError("request body must be a JSON object")
    source = data.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ValueError('"source" must be a non-empty string of program text')
    severity = data.get("severity", SEVERITIES[-1])
    if severity not in SEVERITIES:
        raise ValueError(
            f'"severity" must be one of {", ".join(SEVERITIES)}, got {severity!r}'
        )
    disabled = data.get("disable") or []
    if not isinstance(disabled, (list, tuple)) or not all(
        isinstance(code, str) for code in disabled
    ):
        raise ValueError('"disable" must be a list of diagnostic codes')
    return source, severity, tuple(disabled)


def task_from_request(
    body: bytes, content_type: str
) -> tuple[AnalysisTask, Optional[float]]:
    """The ``(task, deadline_ms)`` one ``POST /analyze`` request describes.

    Raises ``ValueError`` on malformed bodies; the error text is what the
    400 response carries.  ``deadline_ms`` is the body-level
    ``"deadline_ms"`` field (``None`` when absent; the header overrides it).
    """
    if content_type.startswith("text/plain"):
        data: Mapping[str, Any] = {"source": body.decode("utf-8", "replace")}
    else:
        data = _json_object(body)
        if not isinstance(data, Mapping):
            raise ValueError("request body must be a JSON object")
    deadline_ms = data.get("deadline_ms")
    if deadline_ms is not None:
        deadline_ms = _deadline_ms_value(deadline_ms)
    return _task_from_mapping(data), deadline_ms


def tasks_from_batch_request(
    body: bytes,
) -> tuple[Optional[str], list[AnalysisTask], Optional[float]]:
    """The ``(suite label, tasks, deadline_ms)`` of one ``POST /batch`` body.

    Two shapes are accepted (see the module docstring): a suite reference
    resolved through :func:`repro.engine.suites.suite_tasks` — the same
    resolver ``repro bench`` uses, so the records come back identical — or
    an inline task list.  Raises ``ValueError`` on malformed bodies.
    """
    data = _json_object(body)
    if isinstance(data, list):
        data = {"tasks": data}
    deadline_ms = data.get("deadline_ms")
    if deadline_ms is not None:
        deadline_ms = _deadline_ms_value(deadline_ms)
    suite = data.get("suite")
    if suite is not None:
        if not isinstance(suite, str):
            raise ValueError('"suite" must be a suite name string')
        tool = data.get("tool", "chora")
        if not isinstance(tool, str):
            raise ValueError('"tool" must be a string')
        depth = data.get("depth")
        if depth is not None:
            depth = _integer_value('"depth"', depth)
        from ..engine.suites import suite_tasks

        try:
            tasks = suite_tasks(suite, bool(data.get("full", False)), tool, depth)
        except (KeyError, ValueError) as error:
            message = error.args[0] if error.args else str(error)
            raise ValueError(str(message)) from None
        return suite, tasks, deadline_ms
    items = data.get("tasks")
    if not isinstance(items, list) or not items:
        raise ValueError(
            'batch body must be {"suite": NAME, ...}, {"tasks": [...]}'
            " or a non-empty JSON list of task objects"
        )
    tasks = []
    for index, item in enumerate(items):
        if not isinstance(item, Mapping):
            raise ValueError(f"task #{index} must be a JSON object")
        try:
            tasks.append(_task_from_mapping(item))
        except ValueError as error:
            raise ValueError(f"task #{index}: {error}") from None
    return None, tasks, deadline_ms


def run_batch(
    pool: WorkerPool,
    tasks: Sequence[AnalysisTask],
    suite: Optional[str] = None,
    progress: Optional[Callable[[BatchResult], None]] = None,
    deadline: Optional[float] = None,
) -> tuple[list[BatchResult], dict[str, Any]]:
    """Fan a task batch over the warm pool and build the batch document.

    This is the single suite-serving path: the ``POST /batch`` route and
    ``repro bench --engine warm`` both run through it, so a served suite
    returns exactly the records a local warm bench prints.  The document
    adds a per-task ``incremental`` splice summary (the
    :class:`~repro.core.incremental.IncrementalReport` shape per record).
    ``deadline`` is an absolute ``time.monotonic()`` bound on the whole
    batch (see :meth:`WorkerPool.run_with_meta`).
    """
    results, metas = pool.run_with_meta(tasks, progress=progress, deadline=deadline)
    incremental = []
    for task, result, meta in zip(tasks, results, metas):
        report = meta.get("incremental") or {"analyzed": [], "reused": []}
        incremental.append(
            {
                "name": task.name,
                "cache_hit": result.cache_hit,
                "analyzed": list(report.get("analyzed", ())),
                "reused": list(report.get("reused", ())),
            }
        )
    document = {
        "suite": suite,
        "engine": "warm",
        "results": [result.to_dict() for result in results],
        "incremental": incremental,
        "totals": summarize_batch(results),
    }
    return results, document


# ---------------------------------------------------------------------- #
# SLO metrics
# ---------------------------------------------------------------------- #
@dataclass
class _RouteMetrics:
    """Latency accounting of one route: counters + a sample ring buffer."""

    count: int = 0
    total_seconds: float = 0.0
    window: "collections.deque[float]" = field(
        default_factory=lambda: collections.deque(maxlen=LATENCY_WINDOW)
    )

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        self.window.append(seconds)

    def to_dict(self) -> dict[str, Any]:
        samples = list(self.window)

        def ms(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value * 1000.0, 3)

        return {
            "count": self.count,
            "window": len(samples),
            "p50_ms": ms(percentile(samples, 50)),
            "p95_ms": ms(percentile(samples, 95)),
            "p99_ms": ms(percentile(samples, 99)),
            "mean_ms": ms(sum(samples) / len(samples) if samples else None),
            "max_ms": ms(max(samples) if samples else None),
        }


class ServiceMetrics:
    """The numbers behind ``GET /v1/metrics``.

    Mutated only from the event-loop thread (route handlers run there;
    executor results are observed there), so no locking is needed.
    """

    def __init__(self) -> None:
        self.started = time.time()
        self.routes: dict[str, _RouteMetrics] = {}
        self.status_classes: dict[str, int] = {"2xx": 0, "4xx": 0, "5xx": 0}
        self.rejected_429 = 0
        self.deadline_504 = 0

    def record(self, route: str, status: int, seconds: float) -> None:
        self.routes.setdefault(route, _RouteMetrics()).record(seconds)
        bucket = f"{status // 100}xx"
        self.status_classes[bucket] = self.status_classes.get(bucket, 0) + 1
        if status == 429:
            self.rejected_429 += 1
        if status == 504:
            self.deadline_504 += 1

    def analyze_p50(self) -> Optional[float]:
        """The analyze route's p50 seconds (the ``Retry-After`` hint)."""
        route = self.routes.get("analyze")
        return percentile(list(route.window), 50) if route else None

    def document(
        self, capacity: int, admitted: int, pool: WorkerPool
    ) -> dict[str, Any]:
        busy = pool.busy_workers()
        responses = dict(self.status_classes)
        responses["total"] = sum(self.status_classes.values())
        pool_stats = pool.stats_dict()
        return {
            "uptime_seconds": round(time.time() - self.started, 1),
            "queue": {
                "capacity": capacity,
                "in_flight": admitted,
                "depth": max(0, admitted - pool.workers),
            },
            "workers": {
                "total": pool.workers,
                "busy": busy,
                "utilisation": round(busy / pool.workers, 3) if pool.workers else 0.0,
            },
            # Intra-program DAG scheduling inside the workers: per-SCC
            # timing aggregated from the workers' reply metas (see
            # docs/architecture.md, "Intra-program parallelism").
            "parallel_sccs": {
                "configured": pool.parallel_sccs,
                "components_forked": pool_stats.get("scc_components_forked", 0),
                "components_inline": pool_stats.get("scc_components_inline", 0),
                "component_seconds": pool_stats.get("scc_seconds", 0.0),
                "fallbacks": pool_stats.get("scc_fallbacks", 0),
            },
            "responses": responses,
            "rejected_429": self.rejected_429,
            "deadline_504": self.deadline_504,
            "latency_window": LATENCY_WINDOW,
            "routes": {
                name: route.to_dict() for name, route in sorted(self.routes.items())
            },
        }


# ---------------------------------------------------------------------- #
# HTTP plumbing
# ---------------------------------------------------------------------- #
class _HttpError(Exception):
    """A routed request that must answer a non-2xx envelope."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        detail: Optional[dict[str, Any]] = None,
        headers: Sequence[tuple[str, str]] = (),
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.detail = detail or {}
        self.headers = list(headers)


@dataclass
class _Request:
    """One parsed HTTP request."""

    method: str
    target: str
    version: str
    headers: dict[str, str]
    body: bytes

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        connection = self.header("connection").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


async def _read_request(reader: asyncio.StreamReader) -> Optional[_Request]:
    """Parse one HTTP/1.1 request off the stream (None on clean EOF).

    Raises :class:`_HttpError` on malformed input and ``ConnectionError``/
    ``asyncio.IncompleteReadError`` when the peer goes away mid-request.
    """
    try:
        line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError):
        raise _HttpError(400, "bad_request", "request line too long") from None
    if not line:
        return None
    try:
        text = line.decode("latin-1").strip()
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes anything
        raise _HttpError(400, "bad_request", "undecodable request line") from None
    if not text:
        return None
    parts = text.split()
    if len(parts) == 2:
        method, target, version = parts[0], parts[1], "HTTP/1.0"
    elif len(parts) == 3:
        method, target, version = parts
    else:
        raise _HttpError(400, "bad_request", f"malformed request line {text!r}")
    headers: dict[str, str] = {}
    for _ in range(128):
        try:
            raw = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise _HttpError(400, "bad_request", "header line too long") from None
        if raw in (b"\r\n", b"\n", b""):
            break
        name, separator, value = raw.decode("latin-1").partition(":")
        if not separator:
            raise _HttpError(400, "bad_request", "malformed header line")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _HttpError(400, "bad_request", "too many header lines")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise _HttpError(
            400, "bad_request", f"malformed Content-Length {length_text!r}"
        ) from None
    if length < 0:
        raise _HttpError(400, "bad_request", "negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise _HttpError(
            413,
            "payload_too_large",
            f"request body of {length} bytes exceeds the"
            f" {MAX_BODY_BYTES}-byte limit",
        )
    body = await reader.readexactly(length) if length else b""
    return _Request(
        method=method.upper(),
        target=target,
        version=version,
        headers=headers,
        body=body,
    )


class AnalysisServer:
    """An asyncio HTTP front-end over a :class:`WorkerPool`.

    The socket is bound in the constructor (so ``port=0`` resolves before
    serving starts and a bind failure never leaks the caller's forked
    pool); :meth:`serve_forever` then runs the event loop until
    :meth:`shutdown` — which is thread-safe and blocks until the loop has
    wound down, mirroring ``http.server``'s contract so existing callers
    (the CLI, tests driving the server from a thread) are unchanged.
    """

    #: Advertised in the ``Server`` response header.
    VERSION_STRING = "repro-serve/3"

    ROUTES: dict[str, str] = {
        "analyze": "POST",
        "batch": "POST",
        "lint": "POST",
        "healthz": "GET",
        "stats": "GET",
        "metrics": "GET",
    }

    def __init__(
        self,
        pool: WorkerPool,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache: Optional[ResultCache] = None,
        verbose: bool = False,
        backlog: int = DEFAULT_BACKLOG,
        sock: Optional[socket.socket] = None,
    ):
        self.pool = pool
        self.cache = cache if cache is not None else pool.cache
        self.verbose = verbose
        self.backlog = max(0, int(backlog))
        self.capacity = pool.workers + self.backlog
        self.metrics = ServiceMetrics()
        if sock is None:
            # Binding can fail (port already in use); the pool handed in
            # must not leak its forked workers when it does.
            try:
                sock = socket.create_server((host, port))
            except BaseException:
                pool.close()
                raise
        self._socket = sock
        self._socket.setblocking(False)
        # Every admitted analysis request owns one executor thread for the
        # duration of its (blocking) pool call, so the executor is sized to
        # the admission capacity: admission control is the real limiter.
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.capacity), thread_name_prefix="repro-serve"
        )
        self._request_ids = itertools.count(1)
        self._admitted = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self._stop = threading.Event()
        self._stopped = threading.Event()
        self._started = False
        self._connections: set[asyncio.Task] = set()

    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — port resolved even when 0 was asked."""
        host, port = self._socket.getsockname()[:2]
        return str(host), int(port)

    def stats(self) -> dict[str, Any]:
        document: dict[str, Any] = {"pool": self.pool.stats_dict()}
        if self.cache is not None:
            # Counters only: the per-suite breakdown re-reads every entry,
            # too costly for a polled monitoring route on a shared cache.
            document["result_cache"] = self.cache.stats(per_suite=False)
        return document

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or interrupt)."""
        self._started = True
        self._stopped.clear()
        loop = asyncio.new_event_loop()
        try:
            loop.run_until_complete(self._main())
        finally:
            try:
                for task in asyncio.all_tasks(loop):
                    task.cancel()
                loop.run_until_complete(loop.shutdown_asyncgens())
            except Exception:  # pragma: no cover - cleanup best effort
                pass
            loop.close()
            self._loop = None
            self._stopped.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        if self._stop.is_set():
            # shutdown() raced serve_forever() before the loop existed.
            return
        server = await asyncio.start_server(self._on_connection, sock=self._socket)
        try:
            await self._wake.wait()
        finally:
            server.close()
            for task in list(self._connections):
                task.cancel()
            try:
                await server.wait_closed()
            except Exception:  # pragma: no cover - close best effort
                pass

    def shutdown(self) -> None:
        """Stop :meth:`serve_forever` (thread-safe; waits for the loop)."""
        self._stop.set()
        loop, wake = self._loop, self._wake
        if loop is not None and wake is not None:
            try:
                loop.call_soon_threadsafe(wake.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._started:
            self._stopped.wait(timeout=30)

    def close(self) -> None:
        self._executor.shutdown(wait=False)
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - already closed by the loop
            pass
        self.pool.close()

    # ------------------------------------------------------------------ #
    # Connection handling: keep-alive + pipelining
    # ------------------------------------------------------------------ #
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> "asyncio.Task":
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)
        return task

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Requests on one connection are handled strictly in order, so
        # pipelined clients get their responses in request order for free;
        # concurrency comes from having many connections on one loop.
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _HttpError as error:
                    # The stream is unparseable from here on: answer the
                    # envelope and close.
                    self._write_response(
                        writer,
                        error.status,
                        self._envelope(error, self._next_request_id()),
                        error.headers,
                        keep_alive=False,
                        request_id=None,
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive
                started = time.monotonic()
                request_id = self._next_request_id()
                status, document, headers, route = await self._dispatch(
                    request, request_id
                )
                self._write_response(
                    writer,
                    status,
                    document,
                    headers,
                    keep_alive=keep_alive,
                    request_id=request_id,
                )
                await writer.drain()
                self.metrics.record(route, status, time.monotonic() - started)
                if self.verbose:
                    elapsed = time.monotonic() - started
                    print(
                        f"repro serve: {request.method} {request.target}"
                        f" -> {status} [{request_id}] {elapsed * 1000:.1f}ms",
                        flush=True,
                    )
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
            TimeoutError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    def _next_request_id(self) -> str:
        return f"r{next(self._request_ids):06d}"

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def _dispatch(
        self, request: _Request, request_id: str
    ) -> tuple[int, Any, list[tuple[str, str]], str]:
        """Route one request; returns (status, document, headers, route)."""
        path = request.target.split("?", 1)[0]
        legacy = not path.startswith(f"/{API_VERSION}/")
        name = path[len(API_VERSION) + 2 :] if not legacy else path.lstrip("/")
        # The cache plane exists only under /v1 (no legacy alias to deprecate).
        is_cache = not legacy and (name == "cache" or name.startswith("cache/"))
        route_label = (
            "cache"
            if is_cache
            else (name if name in self.ROUTES else "other")
        )
        headers: list[tuple[str, str]] = []
        if legacy and name in self.ROUTES:
            # RFC 8594: the unversioned paths still work but are deprecated
            # in favour of their /v1 successors.
            headers.append(("Deprecation", "true"))
            headers.append(
                (
                    "Link",
                    f"</{API_VERSION}/{name}>; rel=\"successor-version\"",
                )
            )
        try:
            if is_cache:
                status, document, extra = await self._route_cache(request, name)
                return status, document, headers + list(extra), "cache"
            if name not in self.ROUTES:
                raise _HttpError(
                    404, "not_found", f"no such path {path!r}"
                )
            expected = self.ROUTES[name]
            if request.method != expected:
                raise _HttpError(
                    405,
                    "method_not_allowed",
                    f"{path} accepts {expected}, not {request.method}",
                    headers=[("Allow", expected)],
                )
            handler = getattr(self, f"_route_{name}")
            status, document, extra = await handler(request)
            return status, document, headers + list(extra), name
        except _HttpError as error:
            return (
                error.status,
                self._envelope(error, request_id),
                headers + error.headers,
                route_label,
            )
        except Exception as error:
            # The pool can fail out from under a request (a closed pool
            # during shutdown raises RuntimeError, a broken storage backend
            # can raise anything): answer 500 with the envelope instead of
            # dropping the connection with a stderr traceback.
            if self.verbose:
                traceback.print_exc()
            wrapped = _HttpError(
                500, "internal", str(error) or error.__class__.__name__
            )
            return (
                500,
                self._envelope(wrapped, request_id),
                headers,
                route_label,
            )

    @staticmethod
    def _envelope(error: _HttpError, request_id: str) -> dict[str, Any]:
        return {
            "error": {
                "code": error.code,
                "message": error.message,
                "detail": error.detail,
            },
            "request_id": request_id,
        }

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        document: Any,
        headers: Sequence[tuple[str, str]],
        keep_alive: bool,
        request_id: Optional[str],
    ) -> None:
        if isinstance(document, (bytes, bytearray, memoryview)):
            # Cache-plane entry bodies move verbatim; everything else is JSON.
            body = bytes(document)
            content_type = "application/octet-stream"
        else:
            body = json.dumps(document, indent=2, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        phrase = _STATUS_PHRASES.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {phrase}",
            f"Server: {self.VERSION_STRING}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if request_id is not None:
            lines.append(f"X-Request-Id: {request_id}")
        lines.extend(f"{name}: {value}" for name, value in headers)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)

    # ------------------------------------------------------------------ #
    # Admission control + deadlines
    # ------------------------------------------------------------------ #
    def _admit(self) -> None:
        """Take one admission slot or answer 429 (event-loop thread only)."""
        if self._admitted >= self.capacity:
            p50 = self.metrics.analyze_p50()
            retry_after = max(1, int(math.ceil(p50))) if p50 else 1
            raise _HttpError(
                429,
                "queue_full",
                f"the admission queue is full ({self._admitted} requests"
                f" in flight, capacity {self.capacity}); retry later",
                detail={
                    "capacity": self.capacity,
                    "in_flight": self._admitted,
                    "workers": self.pool.workers,
                },
                headers=[("Retry-After", str(retry_after))],
            )
        self._admitted += 1

    def _release(self) -> None:
        self._admitted = max(0, self._admitted - 1)

    def _deadline_from(
        self, request: _Request, body_deadline_ms: Optional[float]
    ) -> tuple[Optional[float], Optional[float]]:
        """The ``(deadline_ms, absolute monotonic deadline)`` of a request.

        The ``X-Repro-Deadline-Ms`` header wins over the body field.  The
        absolute deadline anchors at admission, so queue wait counts
        against the client's budget.
        """
        header = request.header("x-repro-deadline-ms")
        deadline_ms = body_deadline_ms
        if header:
            try:
                deadline_ms = _deadline_ms_value(header)
            except ValueError as error:
                raise _HttpError(
                    400, "bad_request", f"X-Repro-Deadline-Ms: {error}"
                ) from None
        if deadline_ms is None:
            return None, None
        return deadline_ms, time.monotonic() + deadline_ms / 1000.0

    def _submit_blocking(
        self, task: AnalysisTask, deadline_at: Optional[float]
    ) -> tuple[BatchResult, dict]:
        """Run in an executor thread: pool submit under the remaining budget."""
        if deadline_at is None:
            return self.pool.submit_with_meta(task)
        remaining = max(0.0, deadline_at - time.monotonic())
        return self.pool.submit_with_meta(task, timeout=remaining)

    def _run_batch_blocking(
        self,
        tasks: Sequence[AnalysisTask],
        suite: Optional[str],
        deadline_at: Optional[float],
    ) -> dict[str, Any]:
        _, document = run_batch(self.pool, tasks, suite=suite, deadline=deadline_at)
        return document

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    async def _route_analyze(
        self, request: _Request
    ) -> tuple[int, dict[str, Any], list[tuple[str, str]]]:
        try:
            task, body_deadline = task_from_request(
                request.body, request.header("content-type", "application/json")
            )
        except ValueError as error:
            raise _HttpError(400, "bad_request", str(error)) from None
        deadline_ms, deadline_at = self._deadline_from(request, body_deadline)
        self._admit()
        try:
            result, _ = await asyncio.get_running_loop().run_in_executor(
                self._executor, self._submit_blocking, task, deadline_at
            )
        finally:
            self._release()
        if (
            deadline_at is not None
            and result.outcome == "timeout"
            and time.monotonic() >= deadline_at
        ):
            raise _HttpError(
                504,
                "deadline_exceeded",
                f"the request exceeded its {deadline_ms:g}ms deadline",
                detail={"deadline_ms": deadline_ms, "result": result.to_dict()},
            )
        if result.outcome == "error" and result.detail.startswith("invalid-program:"):
            # Front-end rejections (parse errors, unsupported constructs,
            # lint-gate errors) are the client's fault, not a server failure.
            raise _HttpError(
                400,
                "invalid_program",
                result.detail[len("invalid-program:") :].strip(),
                detail={"result": result.to_dict()},
            )
        return 200, result.to_dict(), []

    async def _route_batch(
        self, request: _Request
    ) -> tuple[int, dict[str, Any], list[tuple[str, str]]]:
        try:
            suite, tasks, deadline_ms = tasks_from_batch_request(request.body)
        except ValueError as error:
            raise _HttpError(400, "bad_request", str(error)) from None
        deadline_ms, deadline_at = self._deadline_from(request, deadline_ms)
        self._admit()
        try:
            document = await asyncio.get_running_loop().run_in_executor(
                self._executor, self._run_batch_blocking, tasks, suite, deadline_at
            )
        finally:
            self._release()
        totals = document.get("totals", {})
        if (
            deadline_at is not None
            and totals.get("timeout")
            and time.monotonic() >= deadline_at
        ):
            raise _HttpError(
                504,
                "deadline_exceeded",
                f"the batch exceeded its {deadline_ms:g}ms deadline"
                f" ({totals.get('timeout')} of {totals.get('total')} tasks"
                " timed out)",
                detail={"deadline_ms": deadline_ms, "totals": totals},
            )
        return 200, document, []

    def _lint_blocking(
        self, source: str, severity: str, disabled: tuple[str, ...]
    ) -> list:
        from ..lint import filter_diagnostics, lint_source

        return filter_diagnostics(lint_source(source), severity, disabled)

    async def _route_lint(
        self, request: _Request
    ) -> tuple[int, dict[str, Any], list[tuple[str, str]]]:
        """Lint one program; always 200 with the diagnostics document.

        Lint findings — including parse errors (``R000``) — are the
        *content* of the answer, not request failures, so only a malformed
        request body earns a non-2xx envelope.  Linting is front-end-only
        work (no analysis), so it runs on an executor thread without taking
        a worker-pool admission slot.
        """
        try:
            source, severity, disabled = lint_request(
                request.body, request.header("content-type", "application/json")
            )
        except ValueError as error:
            raise _HttpError(400, "bad_request", str(error)) from None
        diagnostics = await asyncio.get_running_loop().run_in_executor(
            self._executor, self._lint_blocking, source, severity, disabled
        )
        counts: dict[str, int] = {}
        for diagnostic in diagnostics:
            counts[diagnostic.severity] = counts.get(diagnostic.severity, 0) + 1
        document = {
            "ok": counts.get("error", 0) == 0,
            "counts": counts,
            "diagnostics": [diagnostic.to_dict() for diagnostic in diagnostics],
        }
        return 200, document, []

    async def _route_healthz(
        self, request: _Request
    ) -> tuple[int, dict[str, Any], list[tuple[str, str]]]:
        return 200, {"status": "ok", "workers": self.pool.workers}, []

    async def _route_stats(
        self, request: _Request
    ) -> tuple[int, dict[str, Any], list[tuple[str, str]]]:
        return 200, self.stats(), []

    async def _route_metrics(
        self, request: _Request
    ) -> tuple[int, dict[str, Any], list[tuple[str, str]]]:
        document = self.metrics.document(self.capacity, self._admitted, self.pool)
        return 200, document, []

    # ------------------------------------------------------------------ #
    # The cache plane: /v1/cache/... (see the module docstring)
    # ------------------------------------------------------------------ #
    def _cache_namespace_storage(self, namespace: str):
        """The storage backend one cache-plane namespace maps to."""
        from .remote import ROOT_NAMESPACE

        if namespace == "stats" or not _CACHE_SEGMENT.match(namespace):
            raise _HttpError(
                400, "bad_request", f"bad cache namespace {namespace!r}"
            )
        if namespace == ROOT_NAMESPACE:
            return self.cache.storage
        return self.cache.storage.namespace(namespace)

    def _cache_stats_blocking(self) -> dict[str, Any]:
        document = self.cache.storage.stats()
        document["memo_snapshot"] = self.cache.memo_snapshot_stats()
        document["incremental_store"] = self.cache.incremental_store_stats()
        return document

    async def _route_cache(
        self, request: _Request, name: str
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        """Serve the attached cache store over HTTP (no admission slot).

        Storage calls are blocking I/O, so they run on the executor like
        the analysis routes; unlike those they bypass :meth:`_admit` — a
        shard worker pulling the shared memo snapshot must not queue
        behind the very batch requests it is serving.
        """
        if self.cache is None:
            raise _HttpError(
                404,
                "not_found",
                "this service has no cache attached"
                " (start repro serve with caching enabled)",
            )
        loop = asyncio.get_running_loop()
        segments = name.split("/")[1:]
        if segments == ["stats"]:
            if request.method != "GET":
                raise _HttpError(
                    405,
                    "method_not_allowed",
                    f"/v1/cache/stats accepts GET, not {request.method}",
                    headers=[("Allow", "GET")],
                )
            document = await loop.run_in_executor(
                self._executor, self._cache_stats_blocking
            )
            return 200, document, []
        if len(segments) == 1 and segments[0]:
            namespace = segments[0]
            storage = self._cache_namespace_storage(namespace)
            if request.method != "GET":
                raise _HttpError(
                    405,
                    "method_not_allowed",
                    f"/v1/cache/{namespace} accepts GET, not {request.method}",
                    headers=[("Allow", "GET")],
                )
            names = await loop.run_in_executor(
                self._executor, lambda: sorted(storage.names())
            )
            return 200, {"namespace": namespace, "names": names}, []
        if len(segments) == 2 and all(segments):
            namespace, entry = segments
            storage = self._cache_namespace_storage(namespace)
            if not _CACHE_SEGMENT.match(entry):
                raise _HttpError(
                    400, "bad_request", f"bad cache entry name {entry!r}"
                )
            if request.method == "GET":
                data = await loop.run_in_executor(
                    self._executor, storage.read, entry
                )
                if data is None:
                    raise _HttpError(
                        404,
                        "not_found",
                        f"no cache entry {entry!r} in namespace {namespace!r}",
                    )
                return 200, data, []
            if request.method == "PUT":
                body = request.body
                await loop.run_in_executor(
                    self._executor, storage.write, entry, body
                )
                return (
                    200,
                    {"stored": entry, "namespace": namespace, "bytes": len(body)},
                    [],
                )
            if request.method == "DELETE":
                removed = await loop.run_in_executor(
                    self._executor, storage.delete, entry
                )
                return (
                    200,
                    {"deleted": bool(removed), "name": entry, "namespace": namespace},
                    [],
                )
            raise _HttpError(
                405,
                "method_not_allowed",
                f"/v1/cache/{namespace}/{entry} accepts GET, PUT or DELETE,"
                f" not {request.method}",
                headers=[("Allow", "GET, PUT, DELETE")],
            )
        raise _HttpError(404, "not_found", f"no such path '/v1/{name}'")


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    workers: int = 2,
    timeout: Optional[float] = None,
    cache: Optional[ResultCache] = None,
    verbose: bool = False,
    backlog: int = DEFAULT_BACKLOG,
    parallel_sccs: Optional[int] = None,
) -> AnalysisServer:
    """Build a ready-to-run server (the CLI calls ``serve_forever`` on it).

    The socket is bound *before* the worker pool is forked: a bind failure
    (port already in use) used to leak a fully started pool of worker
    processes that nothing would ever stop.
    """
    sock = socket.create_server((host, port))
    try:
        pool = WorkerPool(
            workers=workers,
            timeout=timeout,
            cache=cache,
            parallel_sccs=parallel_sccs,
        )
    except BaseException:
        sock.close()
        raise
    return AnalysisServer(pool, verbose=verbose, backlog=backlog, sock=sock)
