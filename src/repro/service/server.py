"""The ``repro serve`` HTTP endpoint in front of a warm worker pool.

A deliberately small, dependency-free server (``http.server`` from the
standard library, threaded so slow analyses don't block health checks):

``POST /analyze``
    Body: a JSON object ``{"source": "...", "procedure": null,
    "cost_variable": "cost", "substitutions": {"n": 8}, "kind":
    "analyze"}`` — everything but ``source`` optional — or the raw program
    text itself (``Content-Type: text/plain``).  The response is the same
    JSON record ``repro analyze --json`` prints
    (:meth:`repro.engine.batch.BatchResult.to_dict`), with HTTP 200 even
    for ``error``/``timeout`` outcomes: the record *is* the result.
``GET /healthz``
    Liveness: ``{"status": "ok", "workers": N}``.
``GET /stats``
    Pool counters (requests, cache hits, incremental splice totals,
    restarts) plus the result-cache stats when a cache is attached.

Malformed requests get 400 with ``{"error": ...}``; unknown paths 404.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping, Optional

from ..engine.cache import ResultCache
from ..engine.config import DEFAULT_SERVICE_PORT as DEFAULT_PORT
from ..engine.tasks import AnalysisTask
from .pool import WorkerPool

__all__ = ["AnalysisServer", "serve", "task_from_request", "DEFAULT_PORT"]


def task_from_request(body: bytes, content_type: str) -> AnalysisTask:
    """Build the analysis task one ``POST /analyze`` request describes.

    Raises ``ValueError`` on malformed bodies; the error text is what the
    400 response carries.
    """
    if content_type.startswith("text/plain"):
        data: Mapping[str, Any] = {"source": body.decode("utf-8", "replace")}
    else:
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"request body is not valid JSON: {error}") from None
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
    source = data.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ValueError('"source" must be a non-empty string of program text')
    kind = data.get("kind", "analyze")
    if not isinstance(kind, str):
        raise ValueError('"kind" must be a string')
    substitutions = data.get("substitutions") or {}
    if isinstance(substitutions, Mapping):
        pairs = substitutions.items()
    elif isinstance(substitutions, (list, tuple)):
        pairs = substitutions
    else:
        raise ValueError('"substitutions" must be an object or a pair list')
    try:
        normalized = tuple(sorted((str(name), int(value)) for name, value in pairs))
    except (TypeError, ValueError):
        raise ValueError('"substitutions" values must be integers') from None
    return AnalysisTask(
        name=str(data.get("name", "request")),
        source=source,
        kind=kind,
        procedure=data.get("procedure"),
        cost_variable=str(data.get("cost_variable", "cost")),
        substitutions=normalized,
    )


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`AnalysisServer`."""

    # The server attribute is the ThreadingHTTPServer; its ``app`` field is
    # set by AnalysisServer before serving starts.
    server_version = "repro-serve/1"

    @property
    def app(self) -> "AnalysisServer":
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.app.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, document: Mapping[str, Any]) -> None:
        data = json.dumps(document, indent=2, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._send_json(
                200, {"status": "ok", "workers": self.app.pool.workers}
            )
        elif self.path == "/stats":
            self._send_json(200, self.app.stats())
        else:
            self._send_json(404, {"error": f"no such path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/analyze":
            self._send_json(404, {"error": f"no such path {self.path!r}"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        try:
            task = task_from_request(
                body, self.headers.get("Content-Type", "application/json")
            )
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
            return
        result = self.app.pool.submit(task)
        self._send_json(200, result.to_dict())


class AnalysisServer:
    """An HTTP front-end over a :class:`WorkerPool` (see module docstring)."""

    def __init__(
        self,
        pool: WorkerPool,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache: Optional[ResultCache] = None,
        verbose: bool = False,
    ):
        self.pool = pool
        self.cache = cache if cache is not None else pool.cache
        self.verbose = verbose
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.app = self  # type: ignore[attr-defined]

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — port resolved even when 0 was asked."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def stats(self) -> dict[str, Any]:
        document: dict[str, Any] = {"pool": self.pool.stats_dict()}
        if self.cache is not None:
            # Counters only: the per-suite breakdown re-reads every entry,
            # too costly for a polled monitoring route on a shared cache.
            document["result_cache"] = self.cache.stats(per_suite=False)
        return document

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or interrupt)."""
        self._httpd.serve_forever(poll_interval=0.2)

    def shutdown(self) -> None:
        self._httpd.shutdown()

    def close(self) -> None:
        self._httpd.server_close()
        self.pool.close()


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    workers: int = 2,
    timeout: Optional[float] = None,
    cache: Optional[ResultCache] = None,
    verbose: bool = False,
) -> AnalysisServer:
    """Build a ready-to-run server (the CLI calls ``serve_forever`` on it)."""
    pool = WorkerPool(workers=workers, timeout=timeout, cache=cache)
    return AnalysisServer(pool, host=host, port=port, verbose=verbose)
