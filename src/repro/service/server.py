"""The ``repro serve`` HTTP endpoint in front of a warm worker pool.

A deliberately small, dependency-free server (``http.server`` from the
standard library, threaded so slow analyses don't block health checks):

``POST /analyze``
    Body: a JSON object ``{"source": "...", "procedure": null,
    "cost_variable": "cost", "substitutions": {"n": 8}, "kind":
    "analyze"}`` — everything but ``source`` optional — or the raw program
    text itself (``Content-Type: text/plain``).  The response is the same
    JSON record ``repro analyze --json`` prints
    (:meth:`repro.engine.batch.BatchResult.to_dict`), with HTTP 200 even
    for ``error``/``timeout`` outcomes: the record *is* the result.
``POST /batch``
    Body: a whole suite — either ``{"suite": "table2"}`` (optionally with
    ``"full"``, ``"tool"``, ``"depth"``), resolved through the benchmark
    registry of :mod:`repro.benchlib.suites`, or an inline task list
    ``{"tasks": [...]}`` / a bare JSON list, each element shaped like an
    ``/analyze`` body (plus optional ``"params"`` and ``"suite"`` labels).
    The response carries the same ordered ``BatchResult`` records ``repro
    bench --json`` prints, the batch totals, and a per-task incremental
    splice summary (see :func:`run_batch`).
``GET /healthz``
    Liveness: ``{"status": "ok", "workers": N}``.
``GET /stats``
    Pool counters (requests, cache hits, incremental splice totals,
    restarts) plus the result-cache stats when a cache is attached.

Malformed requests get 400 with ``{"error": ...}``; unknown paths 404;
an unexpected failure inside the pool (e.g. a closed pool during
shutdown) gets 500 with ``{"error": ...}`` instead of a dropped
connection.
"""

from __future__ import annotations

import json
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping, Optional, Sequence

from ..engine.batch import BatchResult, summarize_batch
from ..engine.cache import ResultCache
from ..engine.config import DEFAULT_SERVICE_PORT as DEFAULT_PORT
from ..engine.tasks import AnalysisTask
from .pool import WorkerPool

__all__ = [
    "AnalysisServer",
    "serve",
    "run_batch",
    "task_from_request",
    "tasks_from_batch_request",
    "DEFAULT_PORT",
]


def _integer_value(label: str, value: Any) -> int:
    """Coerce one request field to an exact integer.

    Booleans and non-integral numbers are rejected rather than silently
    truncated (``2.7`` used to become ``2`` and ``true`` become ``1``);
    integral floats (``2.0``) and integer strings are accepted.  ``label``
    names the field in the 400 error text (``substitution 'n'``,
    ``"depth"``).
    """
    if isinstance(value, bool):
        raise ValueError(f"{label} must be an integer, not a boolean")
    if isinstance(value, float):
        if not value.is_integer():
            raise ValueError(f"{label} must be an integer, got {value!r}")
        return int(value)
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ValueError(f"{label} must be an integer, got {value!r}") from None


def _task_from_mapping(data: Mapping[str, Any]) -> AnalysisTask:
    """Build one analysis task from a request-shaped JSON object."""
    source = data.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ValueError('"source" must be a non-empty string of program text')
    kind = data.get("kind", "analyze")
    if not isinstance(kind, str):
        raise ValueError('"kind" must be a string')
    substitutions = data.get("substitutions") or {}
    if isinstance(substitutions, Mapping):
        pairs = substitutions.items()
    elif isinstance(substitutions, (list, tuple)):
        pairs = substitutions
    else:
        raise ValueError('"substitutions" must be an object or a pair list')
    try:
        normalized = tuple(
            sorted(
                (str(name), _integer_value(f"substitution {str(name)!r}", value))
                for name, value in pairs
            )
        )
    except ValueError:
        raise
    except TypeError:
        raise ValueError('"substitutions" must be an object or a pair list') from None
    params = data.get("params") or {}
    if not isinstance(params, Mapping):
        raise ValueError('"params" must be an object')
    suite = data.get("suite")
    if suite is not None and not isinstance(suite, str):
        raise ValueError('"suite" must be a string when given')
    return AnalysisTask(
        name=str(data.get("name", "request")),
        source=source,
        kind=kind,
        procedure=data.get("procedure"),
        cost_variable=str(data.get("cost_variable", "cost")),
        substitutions=normalized,
        params=tuple(sorted((str(key), value) for key, value in params.items())),
        suite=suite,
    )


def task_from_request(body: bytes, content_type: str) -> AnalysisTask:
    """Build the analysis task one ``POST /analyze`` request describes.

    Raises ``ValueError`` on malformed bodies; the error text is what the
    400 response carries.
    """
    if content_type.startswith("text/plain"):
        data: Mapping[str, Any] = {"source": body.decode("utf-8", "replace")}
    else:
        data = _json_object(body)
        if not isinstance(data, Mapping):
            raise ValueError("request body must be a JSON object")
    return _task_from_mapping(data)


def _json_object(body: bytes) -> Any:
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"request body is not valid JSON: {error}") from None
    if not isinstance(data, (dict, list)):
        raise ValueError("request body must be a JSON object")
    return data


def tasks_from_batch_request(
    body: bytes,
) -> tuple[Optional[str], list[AnalysisTask]]:
    """The ``(suite label, tasks)`` one ``POST /batch`` request describes.

    Two shapes are accepted (see the module docstring): a suite reference
    resolved through :func:`repro.engine.suites.suite_tasks` — the same
    resolver ``repro bench`` uses, so the records come back identical — or
    an inline task list.  Raises ``ValueError`` on malformed bodies.
    """
    data = _json_object(body)
    if isinstance(data, list):
        data = {"tasks": data}
    suite = data.get("suite")
    if suite is not None:
        if not isinstance(suite, str):
            raise ValueError('"suite" must be a suite name string')
        tool = data.get("tool", "chora")
        if not isinstance(tool, str):
            raise ValueError('"tool" must be a string')
        depth = data.get("depth")
        if depth is not None:
            depth = _integer_value('"depth"', depth)
        from ..engine.suites import suite_tasks

        try:
            tasks = suite_tasks(suite, bool(data.get("full", False)), tool, depth)
        except (KeyError, ValueError) as error:
            message = error.args[0] if error.args else str(error)
            raise ValueError(str(message)) from None
        return suite, tasks
    items = data.get("tasks")
    if not isinstance(items, list) or not items:
        raise ValueError(
            'batch body must be {"suite": NAME, ...}, {"tasks": [...]}'
            " or a non-empty JSON list of task objects"
        )
    tasks = []
    for index, item in enumerate(items):
        if not isinstance(item, Mapping):
            raise ValueError(f"task #{index} must be a JSON object")
        try:
            tasks.append(_task_from_mapping(item))
        except ValueError as error:
            raise ValueError(f"task #{index}: {error}") from None
    return None, tasks


def run_batch(
    pool: WorkerPool,
    tasks: Sequence[AnalysisTask],
    suite: Optional[str] = None,
    progress: Optional[Callable[[BatchResult], None]] = None,
) -> tuple[list[BatchResult], dict[str, Any]]:
    """Fan a task batch over the warm pool and build the batch document.

    This is the single suite-serving path: the ``POST /batch`` route and
    ``repro bench --engine warm`` both run through it, so a served suite
    returns exactly the records a local warm bench prints.  The document
    adds a per-task ``incremental`` splice summary (the
    :class:`~repro.core.incremental.IncrementalReport` shape per record).
    """
    results, metas = pool.run_with_meta(tasks, progress=progress)
    incremental = []
    for task, result, meta in zip(tasks, results, metas):
        report = meta.get("incremental") or {"analyzed": [], "reused": []}
        incremental.append(
            {
                "name": task.name,
                "cache_hit": result.cache_hit,
                "analyzed": list(report.get("analyzed", ())),
                "reused": list(report.get("reused", ())),
            }
        )
    document = {
        "suite": suite,
        "engine": "warm",
        "results": [result.to_dict() for result in results],
        "incremental": incremental,
        "totals": summarize_batch(results),
    }
    return results, document


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`AnalysisServer`."""

    # The server attribute is the ThreadingHTTPServer; its ``app`` field is
    # set by AnalysisServer before serving starts.
    server_version = "repro-serve/2"

    @property
    def app(self) -> "AnalysisServer":
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.app.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, document: Mapping[str, Any]) -> None:
        data = json.dumps(document, indent=2, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._send_json(
                200, {"status": "ok", "workers": self.app.pool.workers}
            )
        elif self.path == "/stats":
            self._send_json(200, self.app.stats())
        else:
            self._send_json(404, {"error": f"no such path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path not in ("/analyze", "/batch"):
            self._send_json(404, {"error": f"no such path {self.path!r}"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        try:
            if self.path == "/analyze":
                task = task_from_request(
                    body, self.headers.get("Content-Type", "application/json")
                )
            else:
                suite, tasks = tasks_from_batch_request(body)
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
            return
        # The pool can fail out from under a request (a closed pool during
        # shutdown raises RuntimeError, a broken storage backend can raise
        # anything): answer 500 with the error instead of dropping the
        # connection with a stderr traceback.
        try:
            if self.path == "/analyze":
                document = self.app.pool.submit(task).to_dict()
            else:
                _, document = run_batch(self.app.pool, tasks, suite=suite)
        except Exception as error:
            detail = str(error) or error.__class__.__name__
            if self.app.verbose:
                traceback.print_exc()
            self._send_json(500, {"error": detail})
            return
        self._send_json(200, document)


class AnalysisServer:
    """An HTTP front-end over a :class:`WorkerPool` (see module docstring)."""

    def __init__(
        self,
        pool: WorkerPool,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache: Optional[ResultCache] = None,
        verbose: bool = False,
        httpd: Optional[ThreadingHTTPServer] = None,
    ):
        self.pool = pool
        self.cache = cache if cache is not None else pool.cache
        self.verbose = verbose
        if httpd is None:
            # Binding can fail (port already in use); the pool handed in
            # must not leak its forked workers when it does.
            try:
                httpd = ThreadingHTTPServer((host, port), _Handler)
            except BaseException:
                pool.close()
                raise
        self._httpd = httpd
        self._httpd.app = self  # type: ignore[attr-defined]

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — port resolved even when 0 was asked."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def stats(self) -> dict[str, Any]:
        document: dict[str, Any] = {"pool": self.pool.stats_dict()}
        if self.cache is not None:
            # Counters only: the per-suite breakdown re-reads every entry,
            # too costly for a polled monitoring route on a shared cache.
            document["result_cache"] = self.cache.stats(per_suite=False)
        return document

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or interrupt)."""
        self._httpd.serve_forever(poll_interval=0.2)

    def shutdown(self) -> None:
        self._httpd.shutdown()

    def close(self) -> None:
        self._httpd.server_close()
        self.pool.close()


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    workers: int = 2,
    timeout: Optional[float] = None,
    cache: Optional[ResultCache] = None,
    verbose: bool = False,
) -> AnalysisServer:
    """Build a ready-to-run server (the CLI calls ``serve_forever`` on it).

    The socket is bound *before* the worker pool is forked: a bind failure
    (port already in use) used to leak a fully started pool of worker
    processes that nothing would ever stop.
    """
    httpd = ThreadingHTTPServer((host, port), _Handler)
    try:
        pool = WorkerPool(workers=workers, timeout=timeout, cache=cache)
    except BaseException:
        httpd.server_close()
        raise
    return AnalysisServer(pool, verbose=verbose, httpd=httpd)
