"""One HTTP client for the ``repro serve`` API, shared by every caller.

``repro batch --url``, the ``repro loadtest`` harness and the integration
tests all talk to the service through :class:`ServiceClient`, so request
framing, the ``/v1`` route preference, error-envelope decoding and
keep-alive handling live in exactly one place (they used to be duplicated
``urllib`` fragments).

The client is stdlib-only (``http.client``) and holds **one persistent
keep-alive connection** — ``urllib.request`` closes the socket after every
call, which would make a loadtest measure TCP handshakes instead of the
service.  One instance therefore serves one thread; concurrent callers
(the loadtest's open-loop workers) each build their own.

Failures are typed rather than stringly:

* :class:`ServiceHTTPError` — the service answered a non-2xx envelope;
  carries the machine ``code``, human ``message``, ``detail`` object,
  ``request_id`` and any ``Retry-After`` hint.
* :class:`ServiceUnreachable` — no HTTP conversation happened at all
  (refused, reset mid-request beyond the one keep-alive retry, timed out).
* :class:`MalformedResponse` — the peer spoke, but not this protocol.

All three derive from :class:`ServiceError`.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Mapping, Optional
from urllib.parse import urlsplit

__all__ = [
    "MalformedResponse",
    "Response",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPError",
    "ServiceUnreachable",
]

#: A keep-alive connection can die between requests (server restart, idle
#: timeout); these are the "stale socket" shapes worth one silent retry on
#: a fresh connection.  ``RemoteDisconnected`` subclasses both
#: ``BadStatusLine`` and ``ConnectionResetError``, listed for clarity.
_RETRYABLE = (
    http.client.RemoteDisconnected,
    ConnectionResetError,
    BrokenPipeError,
)


class ServiceError(Exception):
    """Anything that stops a service call from returning its document."""


class ServiceUnreachable(ServiceError):
    """The service never answered (connect refused, reset, timeout)."""


class MalformedResponse(ServiceError):
    """The peer answered, but not with this API's JSON."""


class ServiceHTTPError(ServiceError):
    """A non-2xx response, decoded from the uniform error envelope."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        detail: Optional[Mapping[str, Any]] = None,
        request_id: str = "",
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(f"{status} {code}: {message}" if code else f"{status}")
        self.status = status
        self.code = code
        self.message = message
        self.detail = dict(detail or {})
        self.request_id = request_id
        self.retry_after = retry_after


class Response:
    """One decoded 2xx response."""

    def __init__(
        self,
        status: int,
        document: Any,
        headers: Mapping[str, str],
        latency: float,
    ) -> None:
        self.status = status
        self.document = document
        self.headers = dict(headers)
        self.latency = latency

    @property
    def request_id(self) -> str:
        return self.headers.get("X-Request-Id", "")

    @property
    def deprecated(self) -> bool:
        return "Deprecation" in self.headers


def _parse_url(url: str) -> tuple[str, int, str]:
    """``(host, port, path prefix)`` of a service base URL."""
    if "//" not in url:
        url = "http://" + url
    parts = urlsplit(url)
    if parts.scheme not in ("http", ""):
        raise ValueError(f"only http:// service URLs are supported, got {url!r}")
    if not parts.hostname:
        raise ValueError(f"no host in service URL {url!r}")
    return parts.hostname, parts.port or 80, parts.path.rstrip("/")


class ServiceClient:
    """A keep-alive client for one ``repro serve`` endpoint.

    Routes are requested under ``/v1`` first; against an older service
    whose ``/v1`` answers 404, the client falls back to the unversioned
    path once and remembers the choice.  Not thread-safe (one underlying
    connection): give each thread its own instance.
    """

    def __init__(self, url: str, timeout: Optional[float] = 300.0) -> None:
        self.host, self.port, self.prefix = _parse_url(url)
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None
        #: None = undecided, True = this service speaks /v1.
        self._v1: Optional[bool] = None

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Request plumbing
    # ------------------------------------------------------------------ #
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def _round_trip(
        self, method: str, path: str, body: Optional[bytes], headers: Mapping[str, str]
    ) -> tuple[int, bytes, dict[str, str]]:
        """One request/response on the persistent connection.

        A stale keep-alive socket (the server went away between requests)
        gets one retry on a fresh connection; a failure on that fresh
        connection is the real answer.
        """
        for attempt in (1, 2):
            connection = self._connect()
            fresh = connection.sock is None
            try:
                connection.request(method, path, body=body, headers=dict(headers))
                response = connection.getresponse()
                payload = response.read()
                return response.status, payload, dict(response.getheaders())
            except _RETRYABLE as error:
                self.close()
                if fresh or attempt == 2:
                    raise ServiceUnreachable(
                        f"http://{self.host}:{self.port}: connection lost: {error}"
                    ) from error
            except (socket.timeout, TimeoutError) as error:
                self.close()
                raise ServiceUnreachable(
                    f"http://{self.host}:{self.port}: timed out after"
                    f" {self.timeout}s"
                ) from error
            except (http.client.HTTPException, OSError) as error:
                self.close()
                raise ServiceUnreachable(
                    f"http://{self.host}:{self.port}: {error}"
                ) from error
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _decode(payload: bytes, status: int) -> Any:
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise MalformedResponse(
                f"the service answered {status} with a non-JSON body: {error}"
            ) from None

    @staticmethod
    def _raise_http_error(
        status: int, document: Any, headers: Mapping[str, str]
    ) -> None:
        code, message, detail, request_id = "", "", {}, ""
        if isinstance(document, Mapping):
            request_id = str(document.get("request_id", ""))
            envelope = document.get("error")
            if isinstance(envelope, Mapping):
                code = str(envelope.get("code", ""))
                message = str(envelope.get("message", ""))
                raw_detail = envelope.get("detail")
                detail = raw_detail if isinstance(raw_detail, Mapping) else {}
            elif isinstance(envelope, str):
                # Pre-v1 services sent {"error": "text"}.
                message = envelope
        retry_after: Optional[float] = None
        raw_retry = headers.get("Retry-After")
        if raw_retry is not None:
            try:
                retry_after = float(raw_retry)
            except ValueError:
                retry_after = None
        raise ServiceHTTPError(
            status,
            code,
            message or f"HTTP {status}",
            detail,
            request_id,
            retry_after,
        )

    def request(
        self,
        method: str,
        route: str,
        document: Optional[Any] = None,
        deadline_ms: Optional[float] = None,
        retries_429: int = 0,
    ) -> Response:
        """Call one route (``"healthz"``, ``"batch"``, ...) and decode it.

        ``deadline_ms`` is sent as ``X-Repro-Deadline-Ms``; its expiry
        surfaces as a :class:`ServiceHTTPError` with status 504 and code
        ``deadline_exceeded``.

        ``retries_429`` bounds how many times a 429 backpressure answer is
        retried (after honouring the service's ``Retry-After`` hint, with a
        capped exponential fallback when the hint is missing) before the
        error is raised.  The default keeps the historical fail-fast
        behaviour; ``repro batch --retry-429`` and the ``--distribute``
        coordinator opt in.
        """
        rejections = 0
        while True:
            try:
                return self._request_once(method, route, document, deadline_ms)
            except ServiceHTTPError as error:
                if error.status != 429 or rejections >= max(0, retries_429):
                    raise
                rejections += 1
                delay = error.retry_after
                if delay is None:
                    delay = 0.5 * (2 ** (rejections - 1))
                time.sleep(min(max(delay, 0.0), 30.0))

    def _request_once(
        self,
        method: str,
        route: str,
        document: Optional[Any] = None,
        deadline_ms: Optional[float] = None,
    ) -> Response:
        body = None
        headers: dict[str, str] = {"Connection": "keep-alive"}
        if document is not None:
            body = json.dumps(document).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if deadline_ms is not None:
            headers["X-Repro-Deadline-Ms"] = f"{deadline_ms:g}"
        route = route.lstrip("/")
        attempts = ["v1", "legacy"] if self._v1 is None else (
            ["v1"] if self._v1 else ["legacy"]
        )
        started = time.monotonic()
        for flavour in attempts:
            versioned = flavour == "v1"
            path = (
                f"{self.prefix}/v1/{route}" if versioned else f"{self.prefix}/{route}"
            )
            status, payload, response_headers = self._round_trip(
                method, path, body, headers
            )
            if status == 404 and versioned and self._v1 is None:
                # An older service without /v1: fall back once, remember.
                continue
            if self._v1 is None:
                self._v1 = versioned
            decoded = self._decode(payload, status)
            if status >= 300:
                self._raise_http_error(status, decoded, response_headers)
            return Response(
                status, decoded, response_headers, time.monotonic() - started
            )
        # Both flavours 404ed: report the canonical path's envelope.
        self._v1 = True
        decoded = self._decode(payload, status)
        self._raise_http_error(status, decoded, response_headers)
        raise AssertionError("unreachable")  # pragma: no cover

    def request_bytes(
        self, method: str, route: str, body: Optional[bytes] = None
    ) -> Response:
        """Call one ``/v1`` route moving opaque bytes instead of JSON.

        The cache-plane routes (``/v1/cache/...``) transport whole cache
        entries verbatim: the request body (when given) is sent as
        ``application/octet-stream`` and a 2xx response body comes back as
        raw ``bytes`` in :attr:`Response.document`.  Non-2xx answers are
        still the service's JSON error envelope and raise the same typed
        errors as :meth:`request`.  No legacy-path fallback: the cache
        plane only exists under ``/v1``.
        """
        headers: dict[str, str] = {"Connection": "keep-alive"}
        if body is not None:
            headers["Content-Type"] = "application/octet-stream"
        path = f"{self.prefix}/v1/{route.lstrip('/')}"
        started = time.monotonic()
        status, payload, response_headers = self._round_trip(
            method, path, body, headers
        )
        if status >= 300:
            try:
                decoded = self._decode(payload, status)
            except MalformedResponse:
                decoded = None
            self._raise_http_error(status, decoded, response_headers)
        return Response(
            status, payload, response_headers, time.monotonic() - started
        )

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def analyze(
        self, document: Mapping[str, Any], deadline_ms: Optional[float] = None
    ) -> Response:
        return self.request("POST", "analyze", document, deadline_ms)

    def batch(
        self,
        document: Any,
        deadline_ms: Optional[float] = None,
        retries_429: int = 0,
    ) -> Response:
        return self.request("POST", "batch", document, deadline_ms, retries_429)

    def healthz(self) -> Response:
        return self.request("GET", "healthz")

    def stats(self) -> Response:
        return self.request("GET", "stats")

    def metrics(self) -> Response:
        return self.request("GET", "metrics")
