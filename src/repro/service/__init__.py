"""The warm analysis service: long-lived workers serving analysis requests.

The batch engine (:mod:`repro.engine`) forks one process per task: perfect
isolation, but every task pays process start-up and runs with cold memo
tables.  This package provides the *serving* counterpart for request-level
traffic:

* :class:`~repro.service.pool.WorkerPool` — a pool of **warm worker
  processes**.  Each worker imports sympy and the analysis code once, keeps
  the polyhedral memo caches hot across requests
  (:func:`repro.polyhedra.cache.keep_warm`), and runs CHORA through an
  :class:`~repro.core.incremental.IncrementalAnalyzer`, so a repeated or
  lightly-edited program re-analyses only the procedures whose fingerprints
  changed.  Per-request timeout and crash isolation match the batch engine:
  a hung or dying worker is replaced, never the service.
* :class:`~repro.service.server.AnalysisServer` — an asyncio HTTP
  front-end (``repro serve``) speaking the versioned ``/v1`` API with
  keep-alive and pipelined connections, bounded admission (429 + a
  ``Retry-After`` hint under overload), per-request deadlines
  (``X-Repro-Deadline-Ms`` → 504 on expiry) and a ``/v1/metrics`` SLO
  document; it returns exactly the JSON records ``repro analyze --json``
  prints.
* :class:`~repro.service.client.ServiceClient` — the one keep-alive HTTP
  client for that API, shared by ``repro batch --url``, ``repro loadtest``
  and the integration tests, raising typed errors decoded from the
  service's uniform error envelope.

Results are indistinguishable from the cold engine's up to fresh-symbol
numbering: every warm structure (memo tables, spliced summaries) is keyed
on content and pure, so warmth changes latency, never verdicts.
"""

from .client import (
    MalformedResponse,
    ServiceClient,
    ServiceError,
    ServiceHTTPError,
    ServiceUnreachable,
)
from .coordinator import distribute_batch, parse_hosts
from .pool import PoolStats, WorkerPool
from .remote import RemoteStorage
from .server import AnalysisServer, ServiceMetrics, run_batch, serve

__all__ = [
    "WorkerPool",
    "PoolStats",
    "AnalysisServer",
    "ServiceMetrics",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPError",
    "ServiceUnreachable",
    "MalformedResponse",
    "RemoteStorage",
    "distribute_batch",
    "parse_hosts",
    "run_batch",
    "serve",
]
