"""HTTP-backed :class:`~repro.engine.storage.CacheStorage` (the cache plane).

:class:`RemoteStorage` points the content-addressed cache machinery — the
result cache, the polyhedral memo snapshot and the incremental summary
store — at the ``/v1/cache/...`` routes of a ``repro serve`` instance
instead of a local directory.  Because every consumer already talks to
storage through the :class:`~repro.engine.storage.CacheStorage` protocol,
``repro bench --cache-url http://host:port`` and ``repro serve
--cache-url ...`` make N machines share one store with no further code:
the cache key is host-independent, so shards on different boxes read each
other's results (and one shared memo snapshot) over HTTP exactly as they
would from a shared directory.

Error mapping follows the storage contract:

* ``read``/``read_many`` treat *any* service failure (unreachable, 404,
  5xx, malformed envelope) as a miss and return ``None``/omit the entry —
  a flaky cache host degrades a run to cold-cache, it never fails it.
* ``write``/``delete``/``names``/``stats`` raise ``OSError`` on failure,
  the same family a directory backend raises, so existing swallow points
  (``ResultCache.put``, the warm workers' snapshot load) behave
  identically for remote and local stores.

Instances are picklable and fork-safe: the underlying keep-alive
:class:`~repro.service.client.ServiceClient` is built lazily and rebuilt
after a ``fork`` (the warm worker pool passes storage objects into child
processes), so a socket is never shared across processes.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator, Optional

from ..engine.storage import CacheStorage
from .client import Response, ServiceClient, ServiceError, ServiceHTTPError

__all__ = ["RemoteStorage", "ROOT_NAMESPACE"]

#: The namespace holding the result-cache entries themselves.  The server
#: maps it to the root of its backing store; every other namespace name maps
#: to ``storage.namespace(name)``.
ROOT_NAMESPACE = "results"


class RemoteStorage(CacheStorage):
    """Cache entries stored by a remote ``repro serve`` over HTTP."""

    def __init__(
        self,
        url: str,
        namespace: str = ROOT_NAMESPACE,
        timeout: float = 60.0,
    ) -> None:
        # Normalise eagerly so a bad URL fails at construction, not on the
        # first cache probe deep inside a batch run.
        host, port, prefix = _parse_url_parts(url)
        self.url = f"http://{host}:{port}{prefix}"
        self._namespace = namespace
        self.timeout = timeout
        self._client: Optional[ServiceClient] = None
        self._client_pid: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Transport plumbing
    # ------------------------------------------------------------------ #
    def _service(self) -> ServiceClient:
        """The keep-alive client, rebuilt lazily and after a fork."""
        pid = os.getpid()
        if self._client is None or self._client_pid != pid:
            self._client = ServiceClient(self.url, timeout=self.timeout)
            self._client_pid = pid
        return self._client

    def __getstate__(self) -> dict[str, Any]:
        # The live connection never crosses a pickle/fork boundary.
        state = self.__dict__.copy()
        state["_client"] = None
        state["_client_pid"] = None
        return state

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None
            self._client_pid = None

    def _call(
        self, method: str, route: str, body: Optional[bytes] = None
    ) -> Response:
        return self._service().request_bytes(method, route, body)

    def _entry_route(self, name: str) -> str:
        return f"cache/{self._namespace}/{name}"

    # ------------------------------------------------------------------ #
    # CacheStorage contract
    # ------------------------------------------------------------------ #
    def read(self, name: str) -> Optional[bytes]:
        try:
            response = self._call("GET", self._entry_route(name))
        except ServiceError:
            # Unreachable host, 404 miss, 5xx — all read as a cache miss.
            return None
        document = response.document
        return bytes(document) if isinstance(document, (bytes, bytearray)) else None

    def write(self, name: str, data: bytes) -> None:
        try:
            self._call("PUT", self._entry_route(name), bytes(data))
        except ServiceError as error:
            raise OSError(f"remote cache write failed: {error}") from error

    def delete(self, name: str) -> bool:
        try:
            response = self._call("DELETE", self._entry_route(name))
        except ServiceHTTPError as error:
            if error.status == 404:
                return False
            raise OSError(f"remote cache delete failed: {error}") from error
        except ServiceError as error:
            raise OSError(f"remote cache delete failed: {error}") from error
        document = _decode_json(response)
        return bool(document.get("deleted")) if isinstance(document, dict) else False

    def names(self) -> Iterator[str]:
        try:
            response = self._call("GET", f"cache/{self._namespace}")
        except ServiceError as error:
            raise OSError(f"remote cache listing failed: {error}") from error
        document = _decode_json(response)
        names = document.get("names") if isinstance(document, dict) else None
        if not isinstance(names, list):
            raise OSError(
                f"remote cache listing from {self.url} had no 'names' list"
            )
        yield from (str(name) for name in names)

    def location(self) -> str:
        return f"{self.url}/v1/cache/{self._namespace}"

    def namespace(self, name: str) -> CacheStorage:
        if self._namespace == ROOT_NAMESPACE:
            return RemoteStorage(self.url, namespace=name, timeout=self.timeout)
        # Namespaces of namespaces never occur today; fall back to the
        # generic prefix view rather than inventing nested routes.
        return super().namespace(name)

    def stats(self) -> dict[str, Any]:
        if self._namespace != ROOT_NAMESPACE:
            return super().stats()
        try:
            response = self._call("GET", "cache/stats")
        except ServiceError as error:
            raise OSError(f"remote cache stats failed: {error}") from error
        document = _decode_json(response)
        if not isinstance(document, dict):
            raise OSError(f"remote cache stats from {self.url} was not an object")
        stats = dict(document)
        # The server reports its own backing location; the caller asked
        # about *this* store, which is the URL.
        stats["location"] = self.location()
        return stats


def _parse_url_parts(url: str) -> tuple[str, int, str]:
    from .client import _parse_url

    return _parse_url(url)


def _decode_json(response: Response) -> Any:
    document = response.document
    if not isinstance(document, (bytes, bytearray)):
        return None
    try:
        return json.loads(bytes(document).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
