"""A pool of warm, long-lived analysis worker processes.

Each worker is a child process running :func:`_worker_main`: a loop that
receives :class:`~repro.engine.tasks.AnalysisTask` objects over a pipe,
executes them with **warm state** — the polyhedral memo tables are kept
across requests (:func:`repro.polyhedra.cache.keep_warm`) and CHORA runs
through a per-worker :class:`~repro.core.incremental.IncrementalAnalyzer`
that splices cached procedure summaries — and reports the same payload
dicts the batch engine's cold workers produce.

The parent hands a request to exactly one idle worker at a time (a worker's
pipe is never shared between two in-flight requests), so the pool is safe
to drive from multiple threads: the HTTP server checks workers out of an
idle queue, and :meth:`WorkerPool.run` fans a task list out over them.

Failure handling mirrors the batch engine: a request that overruns the
deadline gets a ``timeout`` result and its worker is killed and replaced; a
worker that dies mid-request yields a ``crash`` result and is replaced; an
exception inside the analysis yields an ``error`` result and the worker
stays (its state is still consistent — warm tables are content-keyed and
never partially updated).

When the pool has a result cache, its storage backend also carries two
persisted warm-state blobs: a snapshot of the polyhedral memo tables (see
:func:`repro.polyhedra.cache.save_snapshot`) and the incremental summary
store (:meth:`repro.core.incremental.IncrementalAnalyzer.save_store`).
Every worker loads both when it starts — so a restarted ``repro serve`` or
a second ``repro bench --engine warm`` begins with the previous run's
projection/LP memo *and* answers its first repeated request by splicing
every cached component — and merges its own state back on clean shutdown.
Workers killed on the timeout/crash path skip the save; both blobs are a
best-effort warm start, never a correctness dependency.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..core import ChoraOptions
from ..engine.batch import BatchResult
from ..engine.cache import ResultCache
from ..engine.tasks import (
    AnalysisTask,
    InvalidProgram,
    execute_task,
    set_program_analyzer,
)

__all__ = ["WorkerPool", "PoolStats"]


def _worker_main(
    connection,
    options: ChoraOptions,
    memo_storage=None,
    store_storage=None,
    parallel_sccs: Optional[int] = None,
) -> None:
    """Entry point of one warm worker: serve requests until told to stop."""
    import signal

    from ..core import IncrementalAnalyzer, IncrementalReport
    from ..core.parallel import take_schedule_report
    from ..engine.cache import code_fingerprint
    from ..polyhedra.cache import keep_warm, load_snapshot, save_snapshot

    # A terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group — the parent *and* every forked worker.  The worker must not
    # die from it mid-``recv``: that skips the clean-shutdown save of the
    # memo snapshot and incremental store the parent is about to request.
    # Lifecycle belongs to the parent alone (the ``None`` stop message,
    # escalating to SIGTERM via ``_WarmWorker.kill``).
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass

    analyzer = IncrementalAnalyzer(parallel_sccs=parallel_sccs)
    previous = set_program_analyzer(analyzer.analyze)
    requests = 0
    loaded = 0
    store_loaded = 0
    # Both loads run before the ready handshake; nothing a persisted blob
    # contains may crash the worker here (every restarted worker would die
    # the same way until the store is cleared) — degrade to a cold start.
    if memo_storage is not None:
        try:
            loaded = load_snapshot(memo_storage, code_fingerprint())
        except Exception:
            loaded = 0
    if store_storage is not None:
        # Restore the previous service's per-SCC summaries, so the first
        # repeated request after a restart splices every component.
        try:
            store_loaded = analyzer.load_store(store_storage, code_fingerprint())
        except Exception:
            store_loaded = 0
    try:
        # Tell the parent start-up is done (imports and snapshots paid),
        # so request deadlines measure analysis time, not spawn time.
        connection.send(
            ("ready", None, {"memo_loaded": loaded, "store_loaded": store_loaded})
        )
        with keep_warm():
            while True:
                try:
                    message = connection.recv()
                except (EOFError, OSError):
                    break
                if message is None:
                    # Clean shutdown: merge this worker's memo tables and
                    # component store into the shared persisted copies for
                    # the next pool to load.
                    if memo_storage is not None:
                        save_snapshot(memo_storage, code_fingerprint())
                    if store_storage is not None:
                        analyzer.save_store(store_storage, code_fingerprint())
                    break
                requests += 1
                started = time.perf_counter()
                # Reset so kinds that never run CHORA (the baselines) don't
                # report the previous request's splice counts or schedule.
                analyzer.last_report = IncrementalReport()
                take_schedule_report()
                try:
                    payload = execute_task(message, options)
                    meta = {
                        "worker_seconds": round(time.perf_counter() - started, 4),
                        "requests": requests,
                        "incremental": analyzer.last_report.to_dict(),
                    }
                    schedule = take_schedule_report()
                    if schedule is not None:
                        # Per-SCC timing of the DAG-parallel scheduler: meta
                        # only, never the payload, so cached results stay
                        # identical between serial and parallel runs.
                        meta["scc"] = schedule.to_dict()
                    reply = ("ok", payload, meta)
                except InvalidProgram as error:
                    # Front-end rejection: a structured one-line detail the
                    # service maps to a 400 answer, not a traceback.
                    meta = {
                        "worker_seconds": round(time.perf_counter() - started, 4),
                        "requests": requests,
                    }
                    reply = ("error", f"invalid-program: {error}", meta)
                except BaseException:
                    meta = {
                        "worker_seconds": round(time.perf_counter() - started, 4),
                        "requests": requests,
                    }
                    reply = ("error", traceback.format_exc(limit=20), meta)
                try:
                    connection.send(reply)
                except BaseException:
                    # The payload failed to serialize; report that as this
                    # request's error instead of dying mid-send (which the
                    # parent would misread as a worker crash).
                    connection.send(
                        (
                            "error",
                            "the task succeeded but its result payload could"
                            " not be serialized for the parent process:\n"
                            + traceback.format_exc(limit=20),
                            meta,
                        )
                    )
    finally:
        set_program_analyzer(previous)
        connection.close()


class _WarmWorker:
    """Parent-side handle of one warm worker process."""

    __slots__ = (
        "process",
        "connection",
        "served",
        "ready",
        "memo_loaded",
        "store_loaded",
    )

    #: Ceiling on worker start-up (interpreter + sympy import for spawned
    #: replacements); forked workers signal readiness in milliseconds.
    STARTUP_TIMEOUT = 300.0

    #: Grace period for a clean stop: the worker may be merging and writing
    #: its memo snapshot, which must not be cut short by an impatient kill.
    SHUTDOWN_GRACE = 30.0

    def __init__(
        self,
        context,
        options: ChoraOptions,
        memo_storage=None,
        store_storage=None,
        parallel_sccs: Optional[int] = None,
    ):
        parent_end, child_end = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main,
            args=(child_end, options, memo_storage, store_storage, parallel_sccs),
            daemon=True,
        )
        self.process.start()
        child_end.close()
        self.connection = parent_end
        self.served = 0
        self.ready = False
        self.memo_loaded = 0
        self.store_loaded = 0

    def _await_ready(self) -> None:
        """Consume the start-up handshake (once per worker lifetime)."""
        deadline = time.monotonic() + self.STARTUP_TIMEOUT
        while not self.connection.poll(0.05):
            if not self.process.is_alive() and not self.connection.poll(0):
                raise ConnectionError(
                    f"worker exited with code {self.process.exitcode}"
                    " during start-up"
                )
            if time.monotonic() >= deadline:  # pragma: no cover - 5 min
                raise ConnectionError("worker start-up timed out")
        try:
            message = self.connection.recv()
        except (EOFError, OSError) as error:
            raise ConnectionError("worker died during start-up") from error
        if not (isinstance(message, tuple) and message[0] == "ready"):
            raise ConnectionError(f"unexpected start-up message {message!r}")
        meta = message[2] if len(message) > 2 and isinstance(message[2], dict) else {}
        self.memo_loaded = int(meta.get("memo_loaded", 0) or 0)
        self.store_loaded = int(meta.get("store_loaded", 0) or 0)
        self.ready = True

    def request(self, task: AnalysisTask, timeout: Optional[float]):
        """Send one task and wait for its reply.

        Returns the worker's ``(status, body, meta)`` triple; raises
        ``TimeoutError`` on deadline overrun and ``ConnectionError`` when
        the worker died without replying.  After either exception the
        worker is unusable and must be replaced.  The per-request deadline
        starts only once the worker has finished starting up.
        """
        if not self.ready:
            self._await_ready()
        self.connection.send(task)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = 0.05 if deadline is None else min(0.05, deadline - time.monotonic())
            if self.connection.poll(max(wait, 0)):
                try:
                    reply = self.connection.recv()
                except (EOFError, OSError) as error:
                    self.process.join(1)
                    raise ConnectionError(
                        "worker died mid-request"
                        f" (exit code {self.process.exitcode})"
                    ) from error
                except BaseException:
                    # The worker replied but the payload failed to
                    # deserialize on this side; the worker itself is alive
                    # and consistent, so report an error result and keep it.
                    reply = (
                        "error",
                        "the worker's result payload could not be"
                        " deserialized:\n" + traceback.format_exc(limit=20),
                        {},
                    )
                self.served += 1
                return reply
            if not self.process.is_alive():
                # One final poll: the reply may have raced the exit.
                if self.connection.poll(0):
                    continue
                raise ConnectionError(
                    f"worker exited with code {self.process.exitcode}"
                    " without reporting a result"
                )
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError

    def stop(self) -> None:
        """Ask the worker to exit cleanly; escalate if it does not.

        A cleanly stopping worker saves its memo snapshot first, so the
        join waits :data:`SHUTDOWN_GRACE` (a worker that exits immediately
        costs nothing; one that hangs is still killed).
        """
        try:
            self.connection.send(None)
        except (OSError, ValueError):
            pass
        self.process.join(self.SHUTDOWN_GRACE)
        self.kill()

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(5)
            if self.process.is_alive():  # pragma: no cover - stubborn worker
                self.process.kill()
                self.process.join()
        self.connection.close()


@dataclass
class PoolStats:
    """Mutable counters of one :class:`WorkerPool`'s lifetime."""

    requests: int = 0
    cache_hits: int = 0
    errors: int = 0
    timeouts: int = 0
    crashes: int = 0
    restarts: int = 0
    #: procedures spliced vs re-analysed by the workers' incremental stores.
    procedures_reused: int = 0
    procedures_analyzed: int = 0
    #: DAG-parallel SCC scheduling inside the workers (meta["scc"]): how many
    #: components ran in forked children vs inline, summed child wall time,
    #: and how often the scheduler fell back to the serial pass.
    scc_components_forked: int = 0
    scc_components_inline: int = 0
    scc_seconds: float = 0.0
    scc_fallbacks: int = 0
    started: float = field(default_factory=time.time)

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "procedures_reused": self.procedures_reused,
            "procedures_analyzed": self.procedures_analyzed,
            "scc_components_forked": self.scc_components_forked,
            "scc_components_inline": self.scc_components_inline,
            "scc_seconds": round(self.scc_seconds, 4),
            "scc_fallbacks": self.scc_fallbacks,
            "uptime_seconds": round(time.time() - self.started, 1),
        }


class WorkerPool:
    """Serve analysis tasks from a pool of warm worker processes.

    Parameters
    ----------
    workers:
        Number of long-lived worker processes.
    timeout:
        Per-request deadline in seconds.  ``None`` disables it; ``0`` is an
        immediate deadline (cache hits still serve, everything else times
        out without engaging a worker).
    options:
        The :class:`ChoraOptions` every request is analysed under.
    cache:
        An optional shared :class:`ResultCache` consulted before a worker
        is engaged and populated after it answers — the same content keys
        the batch engine uses, so the service and batch runs share results.
    memo_snapshot:
        Whether workers use the persisted polyhedral memo snapshot (load
        on start, merge on clean shutdown).  ``None`` — the default —
        enables it exactly when a cache is configured; ``False`` runs the
        pool with genuinely cold memo tables (``repro bench --engine warm
        --no-memo-snapshot``).
    """

    def __init__(
        self,
        workers: int = 2,
        timeout: Optional[float] = None,
        options: ChoraOptions = ChoraOptions(),
        cache: Optional[ResultCache] = None,
        memo_snapshot: Optional[bool] = None,
        parallel_sccs: Optional[int] = None,
    ):
        self.workers = max(1, int(workers))
        self.timeout = timeout
        self.options = options
        self.cache = cache
        #: SCC worker count each warm worker analyses cache-miss components
        #: with (``None``: the REPRO_PARALLEL_SCCS environment / serial).
        #: Not part of any cache key — parallel results are bit-identical.
        self.parallel_sccs = parallel_sccs
        # The polyhedral memo snapshot and the incremental summary store
        # live in their own namespaces of the result cache's storage
        # backend: workers load both on start and merge their state back on
        # clean shutdown, so warmth survives restarts.
        memo_enabled = (
            (cache is not None) if memo_snapshot is None else bool(memo_snapshot)
        )
        self.memo_storage = (
            cache.memo_storage() if memo_enabled and cache is not None else None
        )
        self.incremental_storage = (
            cache.incremental_storage() if cache is not None else None
        )
        self.stats = PoolStats()
        methods = multiprocessing.get_all_start_methods()
        # Fork shares the parent's warm module state (sympy, parsed code)
        # with every worker at no per-request cost.
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._stats_lock = threading.Lock()
        self._idle: "queue.Queue[_WarmWorker]" = queue.Queue()
        self._all: list[_WarmWorker] = []
        self._closed = False
        for _ in range(self.workers):
            self._add_worker()

    # ------------------------------------------------------------------ #
    def _add_worker(self, context=None) -> None:
        worker = _WarmWorker(
            context or self._context,
            self.options,
            self.memo_storage,
            self.incremental_storage,
            self.parallel_sccs,
        )
        self._all.append(worker)
        self._idle.put(worker)

    def _replace(self, worker: _WarmWorker) -> None:
        worker.kill()
        self._all.remove(worker)
        with self._stats_lock:
            self.stats.restarts += 1
        # Replacements happen while request threads are live (the HTTP
        # server, run()'s executor), and forking a multithreaded process
        # can deadlock the child.  Spawn instead: the replacement pays a
        # one-off interpreter + import start-up — acceptable on the
        # exceptional timeout/crash path — and serves warm thereafter.
        self._add_worker(multiprocessing.get_context("spawn"))

    # ------------------------------------------------------------------ #
    def submit(
        self, task: AnalysisTask, timeout: Optional[float] = None
    ) -> BatchResult:
        """Run one task on a warm worker and return its result record.

        Thread-safe; blocks while every worker is busy.  The record has
        exactly the shape the batch engine produces, so callers (the HTTP
        server, ``repro bench --engine warm``) are engine-agnostic.
        ``timeout`` is a per-request deadline in seconds: it can only
        *tighten* the pool-wide deadline (the effective deadline is the
        smaller of the two), so a client-supplied deadline never extends
        the budget the operator configured.  ``0`` is an immediate
        deadline, ``None`` falls back to the pool default.
        """
        return self.submit_with_meta(task, timeout=timeout)[0]

    def submit_with_meta(
        self, task: AnalysisTask, timeout: Optional[float] = None
    ) -> tuple[BatchResult, dict]:
        """Like :meth:`submit`, also returning the worker's meta dict.

        The meta carries the per-request incremental splice report
        (``meta["incremental"]``, the
        :class:`~repro.core.incremental.IncrementalReport` shape) and the
        worker-side timing; it is ``{}`` for requests that never engaged a
        worker (cache hits, immediate deadlines).
        """
        if self._closed:
            raise RuntimeError("the worker pool is closed")
        effective = self.timeout
        if timeout is not None:
            effective = timeout if effective is None else min(effective, timeout)
        with self._stats_lock:
            self.stats.requests += 1
        key = self.cache.key(task, self.options) if self.cache else None
        if key is not None:
            payload = self.cache.get(key)
            if payload is not None:
                with self._stats_lock:
                    self.stats.cache_hits += 1
                return self._ok_result(task, payload, 0.0, cache_hit=True), {}

        if effective == 0:
            # An immediate deadline: report the timeout without engaging (and
            # then having to kill and replace) a perfectly healthy worker.
            with self._stats_lock:
                self.stats.timeouts += 1
            return (
                self._failed_result(task, "timeout", 0.0, "exceeded the 0s deadline"),
                {},
            )

        worker = self._idle.get()
        started = time.monotonic()
        try:
            status, body, meta = worker.request(task, effective)
        except TimeoutError:
            elapsed = time.monotonic() - started
            self._replace(worker)
            with self._stats_lock:
                self.stats.timeouts += 1
            return (
                self._failed_result(
                    task,
                    "timeout",
                    elapsed,
                    f"exceeded the {effective:g}s deadline",
                ),
                {},
            )
        except ConnectionError as error:
            elapsed = time.monotonic() - started
            self._replace(worker)
            with self._stats_lock:
                self.stats.crashes += 1
            return self._failed_result(task, "crash", elapsed, str(error)), {}
        except BaseException:
            # Any other failure between checkout and reply (a payload that
            # cannot pickle for the send, an interrupt, a bug) leaves the
            # worker's pipe state unknown.  Replace it rather than leak the
            # slot: before this accounting existed, an unexpected exception
            # here silently shrank the pool forever.
            self._replace(worker)
            raise
        else:
            # The request round-trip completed; the worker is healthy and
            # goes straight back into rotation.  Everything below this line
            # (stats, cache writes) runs with the slot already returned, so
            # a failure there cannot leak it either.
            self._idle.put(worker)
        elapsed = time.monotonic() - started
        meta = meta if isinstance(meta, dict) else {}
        self._absorb_meta(meta)
        if status != "ok":
            with self._stats_lock:
                self.stats.errors += 1
            return self._failed_result(task, "error", elapsed, str(body)), meta
        if key is not None and self.cache is not None:
            self.cache.put(key, body, task_name=task.name, suite=task.suite)
        return self._ok_result(task, body, elapsed, cache_hit=False), meta

    def run(
        self,
        tasks: Sequence[AnalysisTask],
        progress: Optional[Callable[[BatchResult], None]] = None,
        deadline: Optional[float] = None,
    ) -> list[BatchResult]:
        """Run a batch over the warm pool; results come back in task order."""
        return self.run_with_meta(tasks, progress, deadline=deadline)[0]

    def run_with_meta(
        self,
        tasks: Sequence[AnalysisTask],
        progress: Optional[Callable[[BatchResult], None]] = None,
        deadline: Optional[float] = None,
    ) -> tuple[list[BatchResult], list[dict]]:
        """Run a batch, returning per-task worker metas next to the results.

        ``metas[i]`` is the meta dict of ``results[i]`` (see
        :meth:`submit_with_meta`); the ``POST /batch`` route surfaces the
        incremental splice report it carries per task.  ``deadline`` is an
        absolute ``time.monotonic()`` instant bounding the *whole batch*:
        each task runs under the time remaining until it (tasks starting
        after expiry report ``timeout`` immediately, the pool-wide
        per-request deadline still applies on top).
        """
        results: list[Optional[BatchResult]] = [None] * len(tasks)
        metas: list[dict] = [{} for _ in tasks]

        def work(index: int) -> None:
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline - time.monotonic())
            result, meta = self.submit_with_meta(tasks[index], timeout=timeout)
            results[index] = result
            metas[index] = meta
            if progress is not None:
                progress(result)

        with ThreadPoolExecutor(max_workers=self.workers) as executor:
            for future in [executor.submit(work, i) for i in range(len(tasks))]:
                future.result()
        # Account for every task: a slot no result landed in becomes an
        # explicit error record rather than silently shrinking the report.
        for index, task in enumerate(tasks):
            if results[index] is None:
                results[index] = self._failed_result(
                    task,
                    "error",
                    0.0,
                    "no result was recorded for this task; this is a pool"
                    " bookkeeping bug, not an analysis outcome",
                )
        return [result for result in results if result is not None], metas

    # ------------------------------------------------------------------ #
    def _absorb_meta(self, meta: dict) -> None:
        incremental = meta.get("incremental") or {}
        schedule = meta.get("scc") or {}
        components = schedule.get("components") or ()
        with self._stats_lock:
            self.stats.procedures_reused += len(incremental.get("reused", ()))
            self.stats.procedures_analyzed += len(incremental.get("analyzed", ()))
            for component in components:
                mode = component.get("mode")
                if mode == "forked":
                    self.stats.scc_components_forked += 1
                elif mode in ("inline", "serial"):
                    self.stats.scc_components_inline += 1
                try:
                    self.stats.scc_seconds += float(component.get("seconds", 0) or 0)
                except (TypeError, ValueError):
                    pass
            if schedule.get("fallback"):
                self.stats.scc_fallbacks += 1

    @staticmethod
    def _ok_result(
        task: AnalysisTask, payload: dict, wall_time: float, cache_hit: bool
    ) -> BatchResult:
        return BatchResult(
            name=task.name,
            kind=task.kind,
            outcome="ok",
            wall_time=wall_time,
            cache_hit=cache_hit,
            suite=task.suite,
            proved=payload.get("proved"),
            bound=payload.get("bound"),
            payload=payload,
        )

    @staticmethod
    def _failed_result(
        task: AnalysisTask, outcome: str, wall_time: float, detail: str
    ) -> BatchResult:
        return BatchResult(
            name=task.name,
            kind=task.kind,
            outcome=outcome,
            wall_time=wall_time,
            suite=task.suite,
            detail=detail,
        )

    # ------------------------------------------------------------------ #
    def busy_workers(self) -> int:
        """How many workers are serving a request right now (approximate).

        Read lock-free from the idle queue's length: exact enough for the
        ``/metrics`` utilisation gauge, never used for scheduling.
        """
        return max(0, min(self.workers, self.workers - self._idle.qsize()))

    def stats_dict(self) -> dict[str, Any]:
        """A JSON-ready snapshot of the pool's counters."""
        with self._stats_lock:
            snapshot = self.stats.to_dict()
        snapshot["workers"] = self.workers
        snapshot["memo_snapshot_entries_loaded"] = sum(
            worker.memo_loaded for worker in self._all
        )
        snapshot["incremental_store_components_loaded"] = sum(
            worker.store_loaded for worker in self._all
        )
        return snapshot

    def close(self) -> None:
        """Stop every worker; the pool cannot be used afterwards."""
        if self._closed:
            return
        self._closed = True
        for worker in self._all:
            worker.stop()
        self._all.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
