"""Symbolic abstraction (``Abstract``) and the satisfiability layer built on it.

Implements Alg. 1 of the paper (convex hull of a formula) and its non-linear
variant ([25, Alg. 3]-style): non-linear monomials become fresh dimensions,
inference rules recover consequences of the non-linear theory, and the
polyhedral join combines the DNF cubes.
"""

from .linearize import LinearizationContext, inference_constraints
from .symbolic_abstraction import (
    AbstractionOptions,
    AbstractionResult,
    Inequation,
    abstract,
    abstract_cubes,
    abstract_many,
    formula_entails,
    is_formula_satisfiable,
)

__all__ = [
    "LinearizationContext",
    "inference_constraints",
    "AbstractionOptions",
    "AbstractionResult",
    "Inequation",
    "abstract",
    "abstract_cubes",
    "abstract_many",
    "formula_entails",
    "is_formula_satisfiable",
]
