"""Symbolic abstraction: ``Abstract(phi, V)`` (Alg. 1 and its non-linear variant).

``Abstract(phi, V)`` computes a conjunction of polynomial inequations over
the symbols ``V`` that are implied by the formula ``phi``.  Following the
paper, the linear case is the convex hull of ``phi`` projected onto ``V``;
non-linear terms are handled by treating each non-linear monomial as an extra
dimension (congruence closure plus the inference rules of
:mod:`repro.abstraction.linearize`).

The cubes of ``phi``'s DNF are enumerated syntactically (the paper enumerates
them lazily with an SMT solver — see DESIGN.md for the substitution), each
satisfiable cube is projected with Fourier–Motzkin, and the projections are
joined with the polyhedral join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..formulas.dnf import DEFAULT_CUBE_LIMIT, Cube, to_dnf
from ..formulas.formula import Atom, AtomKind, Formula, conjoin, negate
from ..formulas.polynomial import Polynomial
from ..formulas.symbols import Symbol
from ..polyhedra import ConstraintKind, Polyhedron, convex_hull
from ..polyhedra.cache import register_cache
from ..polyhedra.hull import weak_join
from .linearize import LinearizationContext, inference_constraints

__all__ = [
    "Inequation",
    "AbstractionResult",
    "abstract",
    "abstract_many",
    "abstract_cubes",
    "is_formula_satisfiable",
    "formula_entails",
    "AbstractionOptions",
]

#: ``abstract`` is pure in (formula, symbols, options) and the analyses ask
#: for the same abstractions repeatedly (every candidate ranking re-abstracts
#: the same base-case summaries, the height analysis re-abstracts the same
#: extension formula); the memo table turns those repeats into lookups.
_ABSTRACT_CACHE = register_cache("abstraction.abstract")

#: Entailment checks re-ask satisfiability of the same hypothesis/conclusion
#: conjunctions (descent analysis tries several descent shapes per candidate
#: ranking against the same transformations).
_SATISFIABLE_CACHE = register_cache("abstraction.satisfiable")


@dataclass(frozen=True)
class Inequation:
    """A polynomial inequation ``polynomial <= 0`` or equation ``polynomial == 0``."""

    polynomial: Polynomial
    is_equality: bool = False

    def __str__(self) -> str:
        op = "==" if self.is_equality else "<="
        return f"{self.polynomial} {op} 0"

    def to_atom(self) -> Atom:
        kind = AtomKind.EQ if self.is_equality else AtomKind.LE
        return Atom(self.polynomial, kind)

    def as_le_list(self) -> list[Polynomial]:
        """The inequation as one or two ``p <= 0`` polynomials."""
        if self.is_equality:
            return [self.polynomial, -self.polynomial]
        return [self.polynomial]


@dataclass(frozen=True)
class AbstractionOptions:
    """Tuning knobs for :func:`abstract` (exposed for ablation benchmarks)."""

    cube_limit: int = DEFAULT_CUBE_LIMIT
    exact_hull: bool = True
    use_inference_rules: bool = True
    minimize_result: bool = True


@dataclass
class AbstractionResult:
    """The output of :func:`abstract`.

    Attributes
    ----------
    inequations:
        Polynomial inequations over the requested symbols implied by the
        input formula.
    polyhedron:
        The joined polyhedron over original symbols plus dimension symbols.
    context:
        The linearization context (maps dimension symbols back to monomials).
    """

    inequations: list[Inequation]
    polyhedron: Polyhedron
    context: LinearizationContext

    def to_formula(self) -> Formula:
        return conjoin([ineq.to_atom() for ineq in self.inequations])

    def __iter__(self):
        return iter(self.inequations)

    def __len__(self) -> int:
        return len(self.inequations)


def abstract_cubes(
    formula: Formula,
    options: AbstractionOptions = AbstractionOptions(),
) -> tuple[list[tuple[Cube, Polyhedron]], LinearizationContext]:
    """Enumerate satisfiable DNF cubes of ``formula`` as polyhedra.

    Returns the list of (cube, polyhedron-over-dimensions) pairs together
    with the shared linearization context.  Unsatisfiable cubes are dropped.
    """
    context = LinearizationContext()
    cubes = to_dnf(formula, cube_limit=options.cube_limit)
    result: list[tuple[Cube, Polyhedron]] = []
    for cube in cubes:
        constraints = [context.linearize_atom(atom) for atom in cube.atoms]
        polyhedron = Polyhedron(constraints)
        if polyhedron.is_empty():
            continue
        if options.use_inference_rules and context.dimensions:
            derived = inference_constraints(polyhedron, context)
            if derived:
                polyhedron = polyhedron.add_constraints(derived)
                if polyhedron.is_empty():
                    continue
        result.append((cube, polyhedron))
    return result, context


def abstract(
    formula: Formula,
    symbols: Iterable[Symbol],
    options: AbstractionOptions = AbstractionOptions(),
) -> AbstractionResult:
    """``Abstract(formula, symbols)``: implied polynomial inequations.

    The result's inequations only mention the requested ``symbols``; non-linear
    monomials over those symbols may appear (they correspond to retained
    dimensions).
    """
    return abstract_many(formula, [symbols], options)[0]


def abstract_many(
    formula: Formula,
    symbol_sets: Sequence[Iterable[Symbol]],
    options: AbstractionOptions = AbstractionOptions(),
) -> list[AbstractionResult]:
    """``Abstract(formula, V)`` for several ``V`` over one cube enumeration.

    Enumerating and linearizing the DNF cubes (and discharging their
    satisfiability checks) is independent of the projection target, so
    callers that abstract one formula onto several symbol sets — the height
    analysis projects the same extension formula once per bounding symbol —
    share that work here instead of repeating it per set.
    """
    keeps = [frozenset(symbols) for symbols in symbol_sets]
    missing = any(
        not _ABSTRACT_CACHE.contains((formula, keep, options)) for keep in keeps
    )
    cube_polyhedra = context = None
    if missing:
        cube_polyhedra, context = abstract_cubes(formula, options)
    results = []
    for keep in keeps:
        results.append(
            _ABSTRACT_CACHE.lookup(
                (formula, keep, options),
                lambda: _abstract_projection(cube_polyhedra, context, keep, options),
            )
        )
    return [
        AbstractionResult(list(r.inequations), r.polyhedron, r.context)
        for r in results
    ]


def _abstract_projection(
    cube_polyhedra: Sequence[tuple[Cube, Polyhedron]],
    context: LinearizationContext,
    keep: frozenset[Symbol],
    options: AbstractionOptions,
) -> AbstractionResult:
    if not cube_polyhedra:
        # The formula is unsatisfiable: it implies everything; report the
        # canonical contradiction so callers can detect it.
        return AbstractionResult(
            [Inequation(Polynomial.constant(1))], Polyhedron.empty(), context
        )
    keep_dims = keep | frozenset(context.dimensions_over(keep))
    projected = [
        polyhedron.project_onto(keep_dims) for _, polyhedron in cube_polyhedra
    ]
    if options.exact_hull:
        joined = convex_hull(projected)
    else:
        joined = projected[0]
        for polyhedron in projected[1:]:
            joined = weak_join(joined, polyhedron)
    if options.minimize_result:
        joined = joined.minimize()
    inequations: list[Inequation] = []
    for constraint in joined.constraints:
        poly, kind = context.delinearize_constraint(constraint)
        inequations.append(Inequation(poly, kind is ConstraintKind.EQ))
    return AbstractionResult(inequations, joined, context)


# ---------------------------------------------------------------------- #
# Satisfiability / entailment (the "solver" used for assertion checking)
# ---------------------------------------------------------------------- #
def is_formula_satisfiable(
    formula: Formula,
    options: AbstractionOptions = AbstractionOptions(),
) -> bool:
    """Sound satisfiability check for (possibly non-linear) formulas.

    "Unsatisfiable" answers are exact over the rationals for the linearized
    abstraction; "satisfiable" answers may be spurious when non-linear
    reasoning beyond the inference rules would be needed (this is the safe
    direction for assertion checking: we only claim an assertion proved when
    its negation is *unsatisfiable*).
    """
    return _SATISFIABLE_CACHE.lookup(
        (formula, options),
        lambda: bool(abstract_cubes(formula, options)[0]),
    )


def formula_entails(
    hypothesis: Formula,
    conclusion: Formula,
    options: AbstractionOptions = AbstractionOptions(),
) -> bool:
    """Whether ``hypothesis`` entails ``conclusion`` (sound, incomplete).

    Implemented as unsatisfiability of ``hypothesis /\\ not conclusion``.  The
    conclusion must be quantifier-free (it is negated syntactically).
    """
    negated = negate(conclusion)
    return not is_formula_satisfiable(conjoin([hypothesis, negated]), options)
