"""Linearization of non-linear atoms for the polyhedral domain.

The paper (§3, "Symbolic abstraction") computes polyhedral consequences of
*non-linear* formulas by treating each non-linear term as an additional
dimension of the space: a quadratic inequation ``x*x < y*y`` becomes the
linear inequation ``d_{x^2} < d_{y^2}`` over fresh dimension symbols, and
inference rules / congruence closure recover (some of) the consequences of
the non-linear theory ([25, Alg. 3]).

:class:`LinearizationContext` owns the monomial-to-dimension mapping (so the
same monomial maps to the same dimension everywhere — congruence closure is
by construction), and :func:`inference_constraints` implements the inference
rules used here:

* even-power monomials are non-negative;
* a product of factors that are each non-negative (entailed by the cube) is
  non-negative, and analogously for definite signs;
* when one factor of a binary product is bounded by *constants* the product
  is bounded by the corresponding multiples of the other factor;
* when one factor is *equal* to a constant, the product collapses to a linear
  equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..formulas.formula import Atom, AtomKind
from ..formulas.polynomial import Monomial, Polynomial
from ..formulas.symbols import Symbol, fresh
from ..polyhedra import ConstraintKind, LinearConstraint, Polyhedron

__all__ = ["LinearizationContext", "inference_constraints"]


@dataclass
class LinearizationContext:
    """Shared monomial-to-dimension map used while abstracting one formula."""

    dimensions: dict[Monomial, Symbol] = field(default_factory=dict)

    def dimension_for(self, monomial: Monomial) -> Symbol:
        """The dimension symbol standing for a non-linear monomial."""
        existing = self.dimensions.get(monomial)
        if existing is not None:
            return existing
        symbol = fresh("dim_" + str(monomial).replace("*", "_").replace("^", ""))
        self.dimensions[monomial] = symbol
        return symbol

    def monomial_of(self, symbol: Symbol) -> Monomial | None:
        """Inverse lookup: the monomial a dimension symbol stands for."""
        for monomial, dim in self.dimensions.items():
            if dim == symbol:
                return monomial
        return None

    # ------------------------------------------------------------------ #
    # Linearization
    # ------------------------------------------------------------------ #
    def linearize_polynomial(self, polynomial: Polynomial) -> Polynomial:
        """Replace every non-linear monomial by its dimension symbol."""
        result: dict[Monomial, Fraction] = {}
        for monomial, coeff in polynomial.items():
            if monomial.degree <= 1:
                result[monomial] = result.get(monomial, Fraction(0)) + coeff
            else:
                dim = Monomial.of(self.dimension_for(monomial))
                result[dim] = result.get(dim, Fraction(0)) + coeff
        return Polynomial(result)

    def linearize_atom(self, atom: Atom) -> LinearConstraint:
        """Convert an atom to a linear constraint over dimensions.

        Strict atoms are weakened to non-strict constraints (sound for the
        over-approximating clients of the abstraction).
        """
        poly = self.linearize_polynomial(atom.polynomial)
        if atom.kind is AtomKind.EQ:
            return LinearConstraint.eq(poly)
        return LinearConstraint.le(poly)

    def delinearize_polynomial(self, polynomial: Polynomial) -> Polynomial:
        """Replace dimension symbols back by their monomials."""
        substitution: dict[Symbol, Polynomial] = {}
        for monomial, dim in self.dimensions.items():
            substitution[dim] = Polynomial.monomial(monomial)
        return polynomial.substitute(substitution)

    def delinearize_constraint(self, constraint: LinearConstraint) -> tuple[Polynomial, ConstraintKind]:
        """Translate a constraint over dimensions back to a polynomial inequation."""
        return self.delinearize_polynomial(constraint.to_polynomial()), constraint.kind

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def dimension_symbols(self) -> frozenset[Symbol]:
        return frozenset(self.dimensions.values())

    def dimensions_over(self, symbols: frozenset[Symbol]) -> list[Symbol]:
        """Dimension symbols whose monomial only mentions ``symbols``."""
        return [
            dim
            for monomial, dim in self.dimensions.items()
            if monomial.symbols <= symbols
        ]


# ---------------------------------------------------------------------- #
# Inference rules
# ---------------------------------------------------------------------- #
def _sign_of(
    polyhedron: Polyhedron, symbol: Symbol
) -> str:
    """Return 'nonneg', 'nonpos', 'both', given the cube's constraints."""
    nonneg = polyhedron.entails(LinearConstraint.make({symbol: Fraction(-1)}, 0))
    if nonneg:
        return "nonneg"
    nonpos = polyhedron.entails(LinearConstraint.make({symbol: Fraction(1)}, 0))
    if nonpos:
        return "nonpos"
    return "both"


def _constant_bounds(
    polyhedron: Polyhedron, symbol: Symbol
) -> tuple[Fraction | None, Fraction | None]:
    """Constant lower/upper bounds of a symbol in the cube, when they exist.

    Uses the exact simplex so the returned constants are safe to use in
    derived constraints.
    """
    from ..polyhedra.simplex import exact_maximize

    upper_result = exact_maximize({symbol: Fraction(1)}, list(polyhedron.constraints))
    upper = upper_result.value if upper_result.is_optimal else None
    lower_result = exact_maximize({symbol: Fraction(-1)}, list(polyhedron.constraints))
    lower = -lower_result.value if lower_result.is_optimal and lower_result.value is not None else None
    return lower, upper


def inference_constraints(
    polyhedron: Polyhedron, context: LinearizationContext
) -> list[LinearConstraint]:
    """Derive linear facts about dimension symbols from the cube's constraints."""
    derived: list[LinearConstraint] = []
    if polyhedron.is_empty():
        return derived
    for monomial, dim in context.dimensions.items():
        powers = dict(monomial.powers)
        # Rule 1: even-power monomials are non-negative.
        if all(p % 2 == 0 for p in powers.values()):
            derived.append(LinearConstraint.make({dim: Fraction(-1)}, 0))
            # Rule 1b: for a plain square s^2, constant bounds on s give both
            # constant and linear bounds on the square.
            if monomial.degree == 2 and len(powers) == 1:
                (symbol,) = powers
                lower, upper = _constant_bounds(polyhedron, symbol)
                if lower is not None and lower >= 0:
                    # s >= lower >= 0: s^2 >= lower^2 and s^2 >= lower*s.
                    derived.append(
                        LinearConstraint.make({dim: Fraction(-1)}, lower * lower)
                    )
                    derived.append(
                        LinearConstraint.make({dim: Fraction(-1), symbol: lower}, 0)
                    )
                    if upper is not None:
                        # 0 <= s <= upper: s^2 <= upper*s.
                        derived.append(
                            LinearConstraint.make({dim: Fraction(1), symbol: -upper}, 0)
                        )
                if upper is not None and upper <= 0:
                    # s <= upper <= 0: s^2 >= upper^2 and s^2 >= upper*s.
                    derived.append(
                        LinearConstraint.make({dim: Fraction(-1)}, upper * upper)
                    )
                    derived.append(
                        LinearConstraint.make({dim: Fraction(-1), symbol: upper}, 0)
                    )
                    if lower is not None:
                        # lower <= s <= 0: s^2 <= lower*s.
                        derived.append(
                            LinearConstraint.make({dim: Fraction(1), symbol: -lower}, 0)
                        )
            continue
        # Rule 2: definite signs of the factors give the sign of the product.
        signs = {s: _sign_of(polyhedron, s) for s in powers}
        if all(
            signs[s] != "both" or p % 2 == 0 for s, p in powers.items()
        ):
            negative_factors = sum(
                1 for s, p in powers.items() if signs[s] == "nonpos" and p % 2 == 1
            )
            if negative_factors % 2 == 0:
                derived.append(LinearConstraint.make({dim: Fraction(-1)}, 0))
            else:
                derived.append(LinearConstraint.make({dim: Fraction(1)}, 0))
        # Rule 3: binary products with a constant-bounded factor.
        if monomial.degree == 2 and len(powers) == 2:
            (a, _), (b, _) = monomial.powers
            for bounded, other in ((a, b), (b, a)):
                lower, upper = _constant_bounds(polyhedron, bounded)
                other_sign = signs[other]
                if lower is not None and lower == upper:
                    # bounded == constant: the product is linear.
                    derived.append(
                        LinearConstraint.make(
                            {dim: Fraction(1), other: -lower}, 0, ConstraintKind.EQ
                        )
                    )
                    continue
                if other_sign == "nonneg":
                    if upper is not None:
                        # dim <= upper * other
                        derived.append(
                            LinearConstraint.make({dim: Fraction(1), other: -upper}, 0)
                        )
                    if lower is not None:
                        # dim >= lower * other
                        derived.append(
                            LinearConstraint.make({dim: Fraction(-1), other: lower}, 0)
                        )
                elif other_sign == "nonpos":
                    if upper is not None:
                        derived.append(
                            LinearConstraint.make({dim: Fraction(-1), other: upper}, 0)
                        )
                    if lower is not None:
                        derived.append(
                            LinearConstraint.make({dim: Fraction(1), other: -lower}, 0)
                        )
    return derived
