"""Call-graph lint passes: reachability, base cases, descent, infinite loops.

* **R101** — procedures a program's ``main()`` can never call (informational:
  suite files legitimately keep several independent entry procedures, so the
  pass only runs when the program declares ``main``).
* **R102** — recursive components in which *no* invocation can terminate.
  This generalizes the base-case reachability check of
  :func:`repro.core.missing_base.procedures_without_base_case` to a least
  fixpoint: a member can terminate iff its CFG has an entry→exit path whose
  intra-component calls all target members already known to terminate.
  (A §4.5-style component — some member without its own base case but able
  to bottom out through a sibling — is *not* flagged; the analysis handles
  it by the missing-base-case transformation.)
* **R103** — a recursive component every one of whose intra-component call
  sites passes every shared scalar argument *unchanged* (the syntactic
  parameter itself, resolved through single-assignment locals).  If no
  recursive call ever changes any value a guard could test, no guard can
  ever flip, and the recursion diverges.  Any syntactic change — ``n - 1``,
  ``n / 2``, ``y1 - y2``, a ``nondet`` — counts as potential progress:
  whether changed arguments actually terminate is
  :mod:`repro.core.depth_bound`'s job, not a syntactic pass's.
* **R104** — a loop whose condition is always true and whose body contains
  no ``return``, no call, and no non-determinism: no execution entering it
  ever leaves, so every bound the analysis reports about code behind it is
  vacuous.
"""

from __future__ import annotations

from typing import Optional

from ..lang import SemanticsError, ast, build_call_graph, build_cfg
from ..lang.cfg import ControlFlowGraph
from .diagnostics import Diagnostic
from .expressions import condition_always_true

__all__ = ["check_program"]


# ---------------------------------------------------------------------- #
# R101: procedures unreachable from main
# ---------------------------------------------------------------------- #
def _check_unreachable_procedures(program: ast.Program) -> list[Diagnostic]:
    names = program.procedure_names
    if "main" not in names or len(names) < 2:
        return []
    graph = build_call_graph(program)
    seen = {"main"}
    frontier = ["main"]
    while frontier:
        for callee in graph.callees(frontier.pop()):
            if callee in names and callee not in seen:
                seen.add(callee)
                frontier.append(callee)
    return [
        Diagnostic(
            code="R101",
            severity="info",
            message=f"procedure '{procedure.name}' is unreachable from main()",
            line=procedure.line,
            procedure=procedure.name,
        )
        for procedure in program.procedures
        if procedure.name not in seen
    ]


# ---------------------------------------------------------------------- #
# R102: recursive components with no base case at all
# ---------------------------------------------------------------------- #
def _exit_reachable(cfg: ControlFlowGraph, component: frozenset[str], terminating: frozenset[str]) -> bool:
    """Entry→exit reachability where intra-component calls must terminate."""
    seen = {cfg.entry}
    frontier = [cfg.entry]
    while frontier:
        vertex = frontier.pop()
        if vertex == cfg.exit:
            return True
        for edge in cfg.successors(vertex):
            callee = getattr(edge, "callee", None)
            if callee is not None and callee in component and callee not in terminating:
                continue
            if edge.target not in seen:
                seen.add(edge.target)
                frontier.append(edge.target)
    return False


def _check_missing_base_cases(
    program: ast.Program, cfgs: dict[str, ControlFlowGraph]
) -> list[Diagnostic]:
    graph = build_call_graph(program)
    diagnostics: list[Diagnostic] = []
    for component in graph.strongly_connected_components():
        members = frozenset(component)
        if not graph.is_recursive(component):
            continue
        if any(name not in cfgs for name in members):
            continue
        terminating: frozenset[str] = frozenset()
        changed = True
        while changed:
            changed = False
            for name in component:
                if name in terminating:
                    continue
                if _exit_reachable(cfgs[name], members, terminating):
                    terminating |= {name}
                    changed = True
        for name in sorted(members - terminating):
            cycle = ", ".join(sorted(members))
            diagnostics.append(
                Diagnostic(
                    code="R102",
                    severity="error",
                    message=(
                        f"no invocation of '{name}' can terminate: every path to"
                        f" its exit re-enters the recursive cycle {{{cycle}}}"
                        " (no base case)"
                    ),
                    line=program.procedure(name).line,
                    procedure=name,
                )
            )
    return diagnostics


# ---------------------------------------------------------------------- #
# R103: no strictly-descending argument anywhere in a recursive component
# ---------------------------------------------------------------------- #
def _single_assignment_locals(procedure: ast.Procedure) -> dict[str, ast.Expr]:
    """Locals defined by exactly one initializer/assignment in the body."""
    counts: dict[str, int] = {}
    values: dict[str, ast.Expr] = {}

    def visit(statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Block):
            for child in statement.statements:
                visit(child)
        elif isinstance(statement, ast.VarDecl):
            counts[statement.name] = counts.get(statement.name, 0) + 1
            if statement.init is not None:
                values[statement.name] = statement.init
            else:
                counts[statement.name] += 1  # an uninitialized decl is not a binding
        elif isinstance(statement, (ast.Assign, ast.Havoc)):
            counts[statement.name] = counts.get(statement.name, 0) + 1
            if isinstance(statement, ast.Assign):
                values[statement.name] = statement.value
            else:
                counts[statement.name] += 1
        elif isinstance(statement, ast.If):
            visit(statement.then_branch)
            if statement.else_branch is not None:
                visit(statement.else_branch)
        elif isinstance(statement, ast.While):
            visit(statement.body)

    visit(procedure.body)
    parameters = set(procedure.scalar_parameters)
    return {
        name: value
        for name, value in values.items()
        if counts.get(name) == 1 and name not in parameters
    }


def _unchanged(
    expression: ast.Expr,
    parameter: str,
    bindings: dict[str, ast.Expr],
    fuel: int = 3,
) -> bool:
    """Whether ``expression`` is just ``parameter`` passed through unchanged.

    Resolves one step at a time through single-assignment locals so
    ``int m = n; f(m);`` still reads as passing ``n`` unchanged.  Anything
    that is not a plain variable reference — any arithmetic, ``nondet``,
    ``min``/``max`` — changes the value as far as this pass can tell, and
    counts as potential progress.
    """
    if isinstance(expression, ast.VarRef):
        if expression.name == parameter:
            return True
        if fuel > 0 and expression.name in bindings:
            return _unchanged(bindings[expression.name], parameter, bindings, fuel - 1)
    return False


def _check_descent(
    program: ast.Program, cfgs: dict[str, ControlFlowGraph]
) -> list[Diagnostic]:
    graph = build_call_graph(program)
    diagnostics: list[Diagnostic] = []
    for component in graph.strongly_connected_components():
        members = frozenset(component)
        if not graph.is_recursive(component):
            continue
        if any(name not in cfgs for name in members):
            continue
        sites = 0
        checkable = 0
        first_line: Optional[int] = None
        descending = False
        for caller in sorted(members):
            caller_procedure = program.procedure(caller)
            caller_variables = set(caller_procedure.scalar_parameters) | set(
                cfgs[caller].locals
            )
            bindings = _single_assignment_locals(caller_procedure)
            for edge in cfgs[caller].call_edges:
                if edge.callee not in members:
                    continue
                sites += 1
                line = edge.origin.line if edge.origin is not None else None
                if first_line is None and line is not None:
                    first_line = line
                callee_parameters = program.procedure(edge.callee).parameters
                for parameter, argument in zip(callee_parameters, edge.arguments):
                    if parameter.is_array:
                        continue
                    # Descent only chains when the caller also binds the
                    # shared name (the value the callee shrinks is the one
                    # the caller received).
                    if parameter.name not in caller_variables:
                        continue
                    checkable += 1
                    if not _unchanged(argument, parameter.name, bindings):
                        descending = True
                        break
                if descending:
                    break
            if descending:
                break
        if sites and checkable and not descending:
            cycle = ", ".join(sorted(members))
            diagnostics.append(
                Diagnostic(
                    code="R103",
                    severity="warning",
                    message=(
                        f"recursive cycle {{{cycle}}} passes every shared argument"
                        " unchanged at every recursive call site; the recursion"
                        " makes no progress"
                    ),
                    line=first_line,
                    procedure=sorted(members)[0],
                )
            )
    return diagnostics


# ---------------------------------------------------------------------- #
# R104: nondet-free infinite loops
# ---------------------------------------------------------------------- #
def _expression_has_nondet(expression: Optional[ast.Expr]) -> bool:
    if expression is None:
        return False
    if isinstance(expression, (ast.Nondet, ast.ArrayRead, ast.CallExpr)):
        return True
    if isinstance(expression, ast.BinOp):
        return _expression_has_nondet(expression.left) or _expression_has_nondet(
            expression.right
        )
    if isinstance(expression, ast.UnaryNeg):
        return _expression_has_nondet(expression.operand)
    if isinstance(expression, ast.MinMax):
        return _expression_has_nondet(expression.left) or _expression_has_nondet(
            expression.right
        )
    if isinstance(expression, ast.Ternary):
        return (
            _condition_has_nondet(expression.condition)
            or _expression_has_nondet(expression.then_value)
            or _expression_has_nondet(expression.else_value)
        )
    return False


def _condition_has_nondet(condition: ast.Cond) -> bool:
    if isinstance(condition, ast.NondetBool):
        return True
    if isinstance(condition, ast.Compare):
        return _expression_has_nondet(condition.left) or _expression_has_nondet(
            condition.right
        )
    if isinstance(condition, ast.BoolOp):
        return _condition_has_nondet(condition.left) or _condition_has_nondet(
            condition.right
        )
    if isinstance(condition, ast.NotCond):
        return _condition_has_nondet(condition.operand)
    return False


def _body_can_escape(statement: ast.Stmt) -> bool:
    """Whether a loop body contains any exit or source of non-determinism."""
    if isinstance(statement, (ast.Return, ast.Havoc, ast.CallStmt)):
        return True
    if isinstance(statement, ast.Block):
        return any(_body_can_escape(child) for child in statement.statements)
    if isinstance(statement, ast.VarDecl):
        return statement.init is None or _expression_has_nondet(statement.init)
    if isinstance(statement, ast.Assign):
        return _expression_has_nondet(statement.value)
    if isinstance(statement, ast.ArrayWrite):
        return _expression_has_nondet(statement.index) or _expression_has_nondet(
            statement.value
        )
    if isinstance(statement, ast.If):
        if _condition_has_nondet(statement.condition):
            return True
        if _body_can_escape(statement.then_branch):
            return True
        return statement.else_branch is not None and _body_can_escape(
            statement.else_branch
        )
    if isinstance(statement, ast.While):
        return _condition_has_nondet(statement.condition) or _body_can_escape(
            statement.body
        )
    if isinstance(statement, (ast.Assume, ast.Assert)):
        # assume can block (ending the execution); a failing assert aborts it.
        return True
    return False


def _check_infinite_loops(program: ast.Program) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []

    def visit(procedure_name: str, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Block):
            for child in statement.statements:
                visit(procedure_name, child)
        elif isinstance(statement, ast.If):
            visit(procedure_name, statement.then_branch)
            if statement.else_branch is not None:
                visit(procedure_name, statement.else_branch)
        elif isinstance(statement, ast.While):
            if condition_always_true(statement.condition) and not _body_can_escape(
                statement.body
            ):
                diagnostics.append(
                    Diagnostic(
                        code="R104",
                        severity="warning",
                        message=(
                            "infinite loop: the condition is always true and the"
                            " body contains no return, call, or nondet"
                        ),
                        line=statement.line,
                        procedure=procedure_name,
                    )
                )
            visit(procedure_name, statement.body)

    for procedure in program.procedures:
        visit(procedure.name, procedure.body)
    return diagnostics


# ---------------------------------------------------------------------- #
# Program entry point
# ---------------------------------------------------------------------- #
def check_program(program: ast.Program) -> list[Diagnostic]:
    """Run every call-graph pass over ``program``."""
    cfgs: dict[str, ControlFlowGraph] = {}
    for procedure in program.procedures:
        try:
            cfgs[procedure.name] = build_cfg(procedure)
        except SemanticsError:
            continue  # the expression pass reports the root cause
    diagnostics = _check_unreachable_procedures(program)
    diagnostics += _check_missing_base_cases(program, cfgs)
    diagnostics += _check_descent(program, cfgs)
    diagnostics += _check_infinite_loops(program)
    return diagnostics
