"""Diagnostic records for the semantic lint passes.

Every diagnostic carries a *stable* code (``R001`` …), a severity, a message,
and — when the front end attributed one — the source line and enclosing
procedure.  Codes are part of the CLI/service contract: suppression lists
(``--disable``), tests, and the fuzz oracle's ``generator-invariant``
cross-check all key on them, so codes are never renumbered; retired checks
leave holes.

The catalogue (see :mod:`docs/linting.md` for the prose version):

======  ========  =====================================================
code    severity  meaning
======  ========  =====================================================
R000    error     the file does not parse (wraps ``ParseError``)
R001    error     read of a variable that is declared nowhere
R002    warning   read of a local before any declaration reaches it
R003    info      dead store: the assigned value is never read
R004    warning   unreachable statement (code after ``return``)
R005    info      global assigned but never read anywhere
R006    warning   assignment to an undeclared variable
R101    info      procedure unreachable from ``main()``
R102    error     recursive cycle with no base case: cannot terminate
R103    warning   recursive calls pass every shared argument unchanged
R104    warning   ``nondet``-free infinite loop
R201    error     constant division by zero
R202    error     unsupported divisor (non-constant or negative)
R203    warning   condition is always true
R204    warning   condition is always false
R205    info      tautological ``assume``
R206    error     call in a condition (the front end cannot hoist it)
======  ========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

__all__ = [
    "SEVERITIES",
    "Diagnostic",
    "has_errors",
    "severity_at_least",
    "sort_diagnostics",
]

#: Severities from most to least severe; the order defines ``--severity``
#: filtering and the exit-code contract (errors fail, warnings do not).
SEVERITIES = ("error", "warning", "info")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint pass."""

    code: str
    severity: str
    message: str
    line: Optional[int] = None
    procedure: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    def render(self, path: Optional[str] = None) -> str:
        """The conventional one-line ``file:line: severity: code: message``."""
        location = path or "<source>"
        if self.line is not None:
            location += f":{self.line}"
        where = f" [{self.procedure}]" if self.procedure else ""
        return f"{location}: {self.severity}: {self.code}: {self.message}{where}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "line": self.line,
            "procedure": self.procedure,
        }


def severity_at_least(diagnostic: Diagnostic, minimum: str) -> bool:
    """Whether ``diagnostic`` is at least as severe as ``minimum``."""
    if minimum not in _SEVERITY_RANK:
        raise ValueError(f"unknown severity {minimum!r}")
    return _SEVERITY_RANK[diagnostic.severity] <= _SEVERITY_RANK[minimum]


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity == "error" for d in diagnostics)


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Deduplicate and order by source line, then code, then message."""
    unique = sorted(
        set(diagnostics),
        key=lambda d: (
            d.line if d.line is not None else 1 << 30,
            d.code,
            d.procedure or "",
            d.message,
        ),
    )
    return unique
