"""Intraprocedural dataflow passes over :mod:`repro.lang.cfg`.

The passes run on the same control-flow graphs the analysis consumes (after
call hoisting), reading each edge's variable *defs* and *uses* off its
``origin`` statement:

* **R001 / R006** — reads of (R001) and assignments to (R006) variables that
  are not declared anywhere in scope.  Both crash the concrete interpreter
  and leave the abstract semantics without a frame for the name.
* **R002** — a *definitely*-unassigned read: a local read before its
  declaration on **every** path (forward must-analysis, so a read that some
  path initializes is never flagged — zero false positives by construction).
* **R003** — dead stores: an assignment to a local whose value no path ever
  reads again (backward liveness; globals and the ``return`` slot are live
  at exit, so cost-counter updates like ``nTicks = nTicks + 1`` never
  trigger it).
* **R004** — unreachable statements: real (``origin``-bearing) edges leaving
  vertices the entry cannot reach, i.e. code after a ``return``.
* **R005** — globals that are assigned somewhere but read nowhere in the
  whole program.
"""

from __future__ import annotations

from typing import Optional

from ..lang import SemanticsError, ast, build_cfg
from ..lang.cfg import CallEdge, ControlFlowGraph
from .diagnostics import Diagnostic

__all__ = ["check_program", "condition_variables", "expression_variables"]


# ---------------------------------------------------------------------- #
# Variable footprints of expressions / conditions / edges
# ---------------------------------------------------------------------- #
def expression_variables(expression: Optional[ast.Expr]) -> frozenset[str]:
    """The scalar variables an expression reads (array *names* excluded)."""
    if expression is None:
        return frozenset()
    names: set[str] = set()

    def visit(expr: ast.Expr) -> None:
        if isinstance(expr, ast.VarRef):
            names.add(expr.name)
        elif isinstance(expr, ast.BinOp):
            visit(expr.left)
            visit(expr.right)
        elif isinstance(expr, ast.UnaryNeg):
            visit(expr.operand)
        elif isinstance(expr, ast.Nondet):
            for bound in (expr.lower, expr.upper):
                if bound is not None:
                    visit(bound)
        elif isinstance(expr, ast.ArrayRead):
            visit(expr.index)
        elif isinstance(expr, ast.CallExpr):
            for argument in expr.args:
                visit(argument)
        elif isinstance(expr, ast.MinMax):
            visit(expr.left)
            visit(expr.right)
        elif isinstance(expr, ast.Ternary):
            names.update(condition_variables(expr.condition))
            visit(expr.then_value)
            visit(expr.else_value)

    visit(expression)
    return frozenset(names)


def condition_variables(condition: ast.Cond) -> frozenset[str]:
    """The scalar variables a condition reads."""
    if isinstance(condition, ast.Compare):
        return expression_variables(condition.left) | expression_variables(condition.right)
    if isinstance(condition, ast.BoolOp):
        return condition_variables(condition.left) | condition_variables(condition.right)
    if isinstance(condition, ast.NotCond):
        return condition_variables(condition.operand)
    return frozenset()


def _edge_defs_uses(edge) -> tuple[frozenset[str], frozenset[str]]:
    """``(defs, uses)`` of one CFG edge, from its origin statement."""
    if isinstance(edge, CallEdge):
        uses = frozenset().union(*(expression_variables(a) for a in edge.arguments)) \
            if edge.arguments else frozenset()
        defs = frozenset([edge.result]) if edge.result else frozenset()
        return defs, uses
    origin = edge.origin
    if origin is None:
        return frozenset(), frozenset()
    if isinstance(origin, ast.VarDecl):
        return frozenset([origin.name]), expression_variables(origin.init)
    if isinstance(origin, ast.Assign):
        return frozenset([origin.name]), expression_variables(origin.value)
    if isinstance(origin, ast.Havoc):
        return frozenset([origin.name]), frozenset()
    if isinstance(origin, (ast.Assume, ast.Assert)):
        return frozenset(), condition_variables(origin.condition)
    if isinstance(origin, ast.ArrayWrite):
        return frozenset(), expression_variables(origin.index) | expression_variables(
            origin.value
        )
    if isinstance(origin, ast.Return):
        if origin.value is None:
            return frozenset(), frozenset()
        return frozenset(["return"]), expression_variables(origin.value)
    return frozenset(), frozenset()


def _edge_line(edge) -> Optional[int]:
    return edge.origin.line if edge.origin is not None else None


# ---------------------------------------------------------------------- #
# Per-procedure passes
# ---------------------------------------------------------------------- #
def _reachable_vertices(cfg: ControlFlowGraph) -> frozenset[int]:
    seen = {cfg.entry}
    frontier = [cfg.entry]
    while frontier:
        vertex = frontier.pop()
        for edge in cfg.successors(vertex):
            if edge.target not in seen:
                seen.add(edge.target)
                frontier.append(edge.target)
    return frozenset(seen)


def _check_declarations(
    cfg: ControlFlowGraph, declared: frozenset[str], procedure: str
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    seen: set[tuple[str, str, Optional[int]]] = set()
    for edge in cfg.edges:
        defs, uses = _edge_defs_uses(edge)
        line = _edge_line(edge)
        for name in sorted(uses - declared):
            if ("use", name, line) in seen:
                continue
            seen.add(("use", name, line))
            diagnostics.append(
                Diagnostic(
                    code="R001",
                    severity="error",
                    message=f"variable '{name}' is read but declared nowhere in scope",
                    line=line,
                    procedure=procedure,
                )
            )
        for name in sorted(defs - declared - {"return"}):
            if ("def", name, line) in seen:
                continue
            seen.add(("def", name, line))
            diagnostics.append(
                Diagnostic(
                    code="R006",
                    severity="warning",
                    message=f"assignment to '{name}', which is declared nowhere in scope",
                    line=line,
                    procedure=procedure,
                )
            )
    return diagnostics


def _check_read_before_declaration(
    cfg: ControlFlowGraph,
    locals_: frozenset[str],
    reachable: frozenset[int],
    procedure: str,
) -> list[Diagnostic]:
    """Forward must-analysis: locals unassigned on *every* path to a vertex."""
    unassigned: dict[int, frozenset[str]] = {v: locals_ for v in cfg.vertices}
    # Must-information: start from "all locals unassigned" at entry and
    # intersect over incoming paths; unreachable vertices keep the top value
    # but are reported by the unreachable-code pass instead.
    changed = True
    while changed:
        changed = False
        for edge in cfg.edges:
            defs, _ = _edge_defs_uses(edge)
            outgoing = unassigned[edge.source] - defs
            merged = unassigned[edge.target] & outgoing
            if merged != unassigned[edge.target]:
                unassigned[edge.target] = merged
                changed = True
    diagnostics: list[Diagnostic] = []
    seen: set[tuple[str, Optional[int]]] = set()
    for edge in cfg.edges:
        if edge.source not in reachable:
            continue
        _, uses = _edge_defs_uses(edge)
        line = _edge_line(edge)
        for name in sorted(uses & unassigned[edge.source] & locals_):
            if (name, line) in seen:
                continue
            seen.add((name, line))
            diagnostics.append(
                Diagnostic(
                    code="R002",
                    severity="warning",
                    message=f"local '{name}' is read before its declaration on every path",
                    line=line,
                    procedure=procedure,
                )
            )
    return diagnostics


def _check_unreachable(
    cfg: ControlFlowGraph, reachable: frozenset[int], procedure: str
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    lines: set[Optional[int]] = set()
    for edge in cfg.edges:
        if edge.source in reachable or edge.origin is None:
            continue
        line = _edge_line(edge)
        if line in lines:
            continue
        lines.add(line)
        diagnostics.append(
            Diagnostic(
                code="R004",
                severity="warning",
                message="unreachable code (no path from the procedure entry reaches it)",
                line=line,
                procedure=procedure,
            )
        )
    return diagnostics


def _check_dead_stores(
    cfg: ControlFlowGraph,
    global_names: frozenset[str],
    reachable: frozenset[int],
    procedure: str,
) -> list[Diagnostic]:
    live: dict[int, frozenset[str]] = {v: frozenset() for v in cfg.vertices}
    exit_live = global_names | ({"return"} if cfg.returns_value else frozenset())
    live[cfg.exit] = exit_live
    changed = True
    while changed:
        changed = False
        for edge in cfg.edges:
            defs, uses = _edge_defs_uses(edge)
            incoming = uses | (live[edge.target] - defs)
            merged = live[edge.source] | incoming
            if merged != live[edge.source]:
                live[edge.source] = merged
                changed = True
        live[cfg.exit] |= exit_live
    diagnostics: list[Diagnostic] = []
    for edge in cfg.weight_edges:
        origin = edge.origin
        if edge.source not in reachable:
            continue
        # Only plain assignments are candidates: an initializer at the
        # declaration (``int retval = 0;``) is idiomatic defensive code even
        # when every path overwrites it, so it is deliberately exempt.
        if not isinstance(origin, ast.Assign):
            continue
        name = origin.name
        if name in global_names or name == "return" or name.startswith("__call"):
            continue
        if name not in live[edge.target]:
            diagnostics.append(
                Diagnostic(
                    code="R003",
                    severity="info",
                    message=f"dead store: the value assigned to '{name}' is never read",
                    line=_edge_line(edge),
                    procedure=procedure,
                )
            )
    return diagnostics


# ---------------------------------------------------------------------- #
# Program entry point
# ---------------------------------------------------------------------- #
def check_program(program: ast.Program) -> list[Diagnostic]:
    """Run every dataflow pass over every procedure of ``program``."""
    diagnostics: list[Diagnostic] = []
    global_names = frozenset(program.global_names)
    global_reads: set[str] = set()
    global_writes: dict[str, Optional[int]] = {}
    for procedure in program.procedures:
        try:
            cfg = build_cfg(procedure)
        except SemanticsError:
            # The front end rejects the procedure outright (unsupported
            # division, ...); the expression pass reports the root cause.
            continue
        # All parameters count as declared — including array parameters,
        # which the CFG's scalar frame excludes but call arguments may name.
        declared = (
            global_names
            | {parameter.name for parameter in procedure.parameters}
            | set(cfg.locals)
        )
        reachable = _reachable_vertices(cfg)
        locals_ = frozenset(cfg.locals)
        diagnostics += _check_declarations(cfg, frozenset(declared), procedure.name)
        diagnostics += _check_read_before_declaration(
            cfg, locals_, reachable, procedure.name
        )
        diagnostics += _check_unreachable(cfg, reachable, procedure.name)
        diagnostics += _check_dead_stores(cfg, global_names, reachable, procedure.name)
        for edge in cfg.edges:
            defs, uses = _edge_defs_uses(edge)
            global_reads.update(uses & global_names)
            for name in defs & global_names:
                global_writes.setdefault(name, _edge_line(edge))
    for name in sorted(global_writes.keys() - global_reads):
        diagnostics.append(
            Diagnostic(
                code="R005",
                severity="info",
                message=f"global '{name}' is assigned but never read",
                line=global_writes[name],
            )
        )
    return diagnostics
