"""Expression and condition lint passes.

* **R201 / R202** — division checks, mirroring exactly what
  :func:`repro.lang.semantics._translate_division` accepts: the divisor must
  be a *positive integer constant*.  A constant zero divisor is R201; a
  negative or non-constant one is R202.  Both are errors because the
  analysis rejects the whole program when it meets such a division.
* **R203 / R204 / R205** — constant conditions, decided with the same
  machinery the assertion checker uses: translate the condition (and its
  negation) to a formula and ask
  :func:`repro.abstraction.is_formula_satisfiable`.  Only **UNSAT** answers
  — which are exact — produce a diagnostic, so the passes have zero false
  positives by construction.  ``nondet``-dependent conditions are safe
  automatically: their fresh symbols are existentially quantified, so both
  polarities stay satisfiable.  ``while`` conditions that are always *true*
  are deliberately not flagged (that is a legitimate idiom; the degenerate
  no-escape case is R104).  ``assert`` conditions are never sat-checked:
  deciding them is the analysis's job, not the linter's.
* **R206** — a call inside a condition.  The call hoister only rewrites
  statements, so the semantics rejects such a program outright.
"""

from __future__ import annotations

from typing import Optional

from ..abstraction import AbstractionOptions, is_formula_satisfiable
from ..lang import SemanticsError, ast, translate_condition, translate_expression
from .diagnostics import Diagnostic

__all__ = ["check_program", "classify_condition", "condition_always_true"]

#: Options for the satisfiability oracle; the defaults match the analysis.
_OPTIONS = AbstractionOptions()


# ---------------------------------------------------------------------- #
# Condition classification
# ---------------------------------------------------------------------- #
def _expression_contains_call(expression: Optional[ast.Expr]) -> bool:
    if expression is None:
        return False
    if isinstance(expression, ast.CallExpr):
        return True
    if isinstance(expression, ast.BinOp):
        return _expression_contains_call(expression.left) or _expression_contains_call(
            expression.right
        )
    if isinstance(expression, ast.UnaryNeg):
        return _expression_contains_call(expression.operand)
    if isinstance(expression, ast.Nondet):
        return _expression_contains_call(expression.lower) or _expression_contains_call(
            expression.upper
        )
    if isinstance(expression, ast.ArrayRead):
        return _expression_contains_call(expression.index)
    if isinstance(expression, ast.MinMax):
        return _expression_contains_call(expression.left) or _expression_contains_call(
            expression.right
        )
    if isinstance(expression, ast.Ternary):
        return (
            condition_contains_call(expression.condition)
            or _expression_contains_call(expression.then_value)
            or _expression_contains_call(expression.else_value)
        )
    return False


def condition_contains_call(condition: ast.Cond) -> bool:
    if isinstance(condition, ast.Compare):
        return _expression_contains_call(condition.left) or _expression_contains_call(
            condition.right
        )
    if isinstance(condition, ast.BoolOp):
        return condition_contains_call(condition.left) or condition_contains_call(
            condition.right
        )
    if isinstance(condition, ast.NotCond):
        return condition_contains_call(condition.operand)
    return False


def classify_condition(condition: ast.Cond) -> Optional[str]:
    """``"true"`` / ``"false"`` when provably constant, else ``None``.

    Exact in the claimed direction: an answer is only produced when the
    opposite polarity is *unsatisfiable*.
    """
    if isinstance(condition, ast.BoolLit):
        return "true" if condition.value else "false"
    if isinstance(condition, ast.NondetBool) or condition_contains_call(condition):
        return None
    try:
        positive = translate_condition(condition)
        negative = translate_condition(ast.NotCond(condition))
    except SemanticsError:
        return None  # the division pass reports the root cause
    if not is_formula_satisfiable(positive, _OPTIONS):
        return "false"
    if not is_formula_satisfiable(negative, _OPTIONS):
        return "true"
    return None


def condition_always_true(condition: ast.Cond) -> bool:
    """Whether ``condition`` holds in every state (UNSAT-exact)."""
    return classify_condition(condition) == "true"


# ---------------------------------------------------------------------- #
# The pass
# ---------------------------------------------------------------------- #
class _Checker:
    def __init__(self, procedure: str) -> None:
        self.procedure = procedure
        self.diagnostics: list[Diagnostic] = []
        self._seen: set[tuple[str, Optional[int], str]] = set()

    def _emit(
        self, code: str, severity: str, message: str, line: Optional[int]
    ) -> None:
        key = (code, line, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.diagnostics.append(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                line=line,
                procedure=self.procedure,
            )
        )

    # -- expressions -------------------------------------------------- #
    def check_expression(self, expression: Optional[ast.Expr], line: Optional[int]) -> None:
        if expression is None:
            return
        if isinstance(expression, ast.BinOp):
            self.check_expression(expression.left, line)
            self.check_expression(expression.right, line)
            if expression.op == "/":
                self._check_divisor(expression.right, line)
        elif isinstance(expression, ast.UnaryNeg):
            self.check_expression(expression.operand, line)
        elif isinstance(expression, ast.Nondet):
            self.check_expression(expression.lower, line)
            self.check_expression(expression.upper, line)
        elif isinstance(expression, ast.ArrayRead):
            self.check_expression(expression.index, line)
        elif isinstance(expression, ast.CallExpr):
            for argument in expression.args:
                self.check_expression(argument, line)
        elif isinstance(expression, ast.MinMax):
            self.check_expression(expression.left, line)
            self.check_expression(expression.right, line)
        elif isinstance(expression, ast.Ternary):
            self.check_condition(expression.condition, line, kind="ternary")
            self.check_expression(expression.then_value, line)
            self.check_expression(expression.else_value, line)

    def _check_divisor(self, divisor: ast.Expr, line: Optional[int]) -> None:
        if _expression_contains_call(divisor):
            self._emit(
                "R202",
                "error",
                f"unsupported divisor '{divisor}': the analysis only supports"
                " positive integer constant divisors",
                line,
            )
            return
        try:
            translated = translate_expression(divisor)
        except SemanticsError:
            return  # a nested division inside the divisor reports itself
        if not translated.value.is_constant:
            self._emit(
                "R202",
                "error",
                f"unsupported divisor '{divisor}': the analysis only supports"
                " positive integer constant divisors",
                line,
            )
            return
        constant = translated.value.constant_value
        if constant == 0:
            self._emit("R201", "error", "division by the constant zero", line)
        elif constant < 0:
            self._emit(
                "R202",
                "error",
                f"unsupported divisor {constant}: the analysis only supports"
                " positive integer constant divisors",
                line,
            )

    # -- conditions --------------------------------------------------- #
    def check_condition(
        self, condition: ast.Cond, line: Optional[int], kind: str
    ) -> None:
        """``kind`` is one of ``if``/``while``/``assume``/``assert``/``ternary``."""
        if condition_contains_call(condition):
            self._emit(
                "R206",
                "error",
                "call inside a condition: the front end cannot hoist it",
                line,
            )
        self._walk_condition_expressions(condition, line)
        if kind == "assert":
            return  # deciding assertions is the analysis's job
        verdict = classify_condition(condition)
        if verdict is None:
            return
        if verdict == "false":
            noun = {"assume": "assume blocks every execution"}.get(
                kind, "condition is always false"
            )
            self._emit("R204", "warning", f"{noun}", line)
        elif kind == "assume":
            self._emit("R205", "info", "tautological assume (it constrains nothing)", line)
        elif kind != "while":  # while(true) is an idiom; R104 covers no-escape
            self._emit("R203", "warning", "condition is always true", line)

    def _walk_condition_expressions(
        self, condition: ast.Cond, line: Optional[int]
    ) -> None:
        if isinstance(condition, ast.Compare):
            self.check_expression(condition.left, line)
            self.check_expression(condition.right, line)
        elif isinstance(condition, ast.BoolOp):
            self._walk_condition_expressions(condition.left, line)
            self._walk_condition_expressions(condition.right, line)
        elif isinstance(condition, ast.NotCond):
            self._walk_condition_expressions(condition.operand, line)

    # -- statements --------------------------------------------------- #
    def check_statement(self, statement: ast.Stmt) -> None:
        line = statement.line
        if isinstance(statement, ast.Block):
            for child in statement.statements:
                self.check_statement(child)
        elif isinstance(statement, ast.VarDecl):
            self.check_expression(statement.init, line)
        elif isinstance(statement, ast.Assign):
            self.check_expression(statement.value, line)
        elif isinstance(statement, ast.ArrayWrite):
            self.check_expression(statement.index, line)
            self.check_expression(statement.value, line)
        elif isinstance(statement, ast.CallStmt):
            self.check_expression(statement.call, line)
        elif isinstance(statement, ast.Return):
            self.check_expression(statement.value, line)
        elif isinstance(statement, ast.If):
            self.check_condition(statement.condition, line, kind="if")
            self.check_statement(statement.then_branch)
            if statement.else_branch is not None:
                self.check_statement(statement.else_branch)
        elif isinstance(statement, ast.While):
            self.check_condition(statement.condition, line, kind="while")
            self.check_statement(statement.body)
        elif isinstance(statement, ast.Assert):
            self.check_condition(statement.condition, line, kind="assert")
        elif isinstance(statement, ast.Assume):
            self.check_condition(statement.condition, line, kind="assume")


def check_program(program: ast.Program) -> list[Diagnostic]:
    """Run the expression/condition passes over every procedure."""
    diagnostics: list[Diagnostic] = []
    for procedure in program.procedures:
        checker = _Checker(procedure.name)
        checker.check_statement(procedure.body)
        diagnostics += checker.diagnostics
    return diagnostics
