"""Semantic lint for the analyzed language.

A multi-pass static analyzer over the same front end the resource-bound
analysis uses: intraprocedural dataflow on the CFGs
(:mod:`repro.lint.dataflow`), call-graph passes for termination hygiene
(:mod:`repro.lint.callgraph`), and expression/condition checks backed by
the abstraction's satisfiability oracle (:mod:`repro.lint.expressions`).
Diagnostics carry stable ``R``-codes, severities and source lines; see
:mod:`repro.lint.diagnostics` for the catalogue and ``docs/linting.md``
for the prose version.

Entry points: :func:`lint_source` for untrusted text (parse failures
become the ``R000`` diagnostic), :func:`lint_program` for parsed
programs.
"""

from .diagnostics import (
    SEVERITIES,
    Diagnostic,
    has_errors,
    severity_at_least,
    sort_diagnostics,
)
from .driver import (
    filter_diagnostics,
    lint_program,
    lint_source,
    parse_failure_diagnostic,
)

__all__ = [
    "SEVERITIES",
    "Diagnostic",
    "filter_diagnostics",
    "has_errors",
    "lint_program",
    "lint_source",
    "parse_failure_diagnostic",
    "severity_at_least",
    "sort_diagnostics",
]
