"""Lint driver: parse, run every pass, filter, render.

``lint_program`` runs the three pass families over an already-parsed
program; ``lint_source`` additionally maps front-end rejections
(:class:`repro.lang.ParseError`) to the **R000** diagnostic so callers
always get a diagnostic list — never an exception — out of untrusted
source text.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional, Sequence

from ..lang import ParseError, ast, parse_program
from . import callgraph, dataflow, expressions
from .diagnostics import Diagnostic, severity_at_least, sort_diagnostics

__all__ = [
    "filter_diagnostics",
    "lint_program",
    "lint_source",
    "parse_failure_diagnostic",
]

_LINE_PREFIX = re.compile(r"^line (\d+): ")


def parse_failure_diagnostic(error: ParseError) -> Diagnostic:
    """The R000 diagnostic for a front-end rejection, line extracted."""
    message = str(error)
    line: Optional[int] = None
    match = _LINE_PREFIX.match(message)
    if match:
        line = int(match.group(1))
        message = message[match.end() :]
    return Diagnostic(
        code="R000",
        severity="error",
        message=f"parse error: {message}",
        line=line,
    )


def lint_program(program: ast.Program) -> list[Diagnostic]:
    """All diagnostics of every pass, deduplicated and in source order."""
    diagnostics = (
        dataflow.check_program(program)
        + expressions.check_program(program)
        + callgraph.check_program(program)
    )
    return sort_diagnostics(diagnostics)


def lint_source(source: str) -> list[Diagnostic]:
    """Lint source text; front-end rejections become the R000 diagnostic."""
    try:
        program = parse_program(source)
    except ParseError as error:
        return [parse_failure_diagnostic(error)]
    return lint_program(program)


def filter_diagnostics(
    diagnostics: Iterable[Diagnostic],
    minimum_severity: str = "info",
    disabled_codes: Sequence[str] = (),
) -> list[Diagnostic]:
    """Keep diagnostics at least ``minimum_severity`` whose code is enabled."""
    disabled = frozenset(disabled_codes)
    return [
        diagnostic
        for diagnostic in diagnostics
        if severity_at_least(diagnostic, minimum_severity)
        and diagnostic.code not in disabled
    ]
