"""Transition formulas with an explicit variable footprint.

A :class:`TransitionFormula` packages a formula over pre-state symbols ``x``
and post-state symbols ``x'`` together with the set of program-variable names
it constrains (its *footprint*).  Variables outside the footprint are
implicitly unmodified; keeping footprints explicit lets sequential
composition frame-in the unmentioned variables correctly and keeps formulas
small (the analysis of the paper is compositional precisely because each
fragment only talks about the variables it touches).

The algebraic operations defined here (``identity``, ``assume``, ``assign``,
``havoc``, ``compose``, ``join``) are the interpretation of control-flow-graph
edges used by the intraprocedural analysis (`repro.analysis`) — the function
``PathSummary`` of §3 is a fold of these operations over a path expression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from .formula import (
    FALSE,
    TRUE,
    Formula,
    atom_eq,
    conjoin,
    disjoin,
    exists,
    free_symbols,
    rename,
    substitute,
)
from .polynomial import Polynomial
from .symbols import Symbol, fresh, post, pre

__all__ = ["TransitionFormula"]


@dataclass(frozen=True)
class TransitionFormula:
    """A relation between pre- and post-states of the variables in ``footprint``.

    Attributes
    ----------
    formula:
        Formula over ``{pre(v), post(v) : v in footprint}`` plus auxiliary
        (existentially interpreted or globally fresh) symbols.
    footprint:
        The program variables the relation constrains; all other variables are
        implicitly equal in pre- and post-state.
    """

    formula: Formula
    footprint: frozenset[str]

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def identity(variables: Iterable[str] = ()) -> "TransitionFormula":
        """The identity relation (``skip``)."""
        return TransitionFormula(TRUE, frozenset(variables) & frozenset())

    @staticmethod
    def bottom() -> "TransitionFormula":
        """The empty relation (``abort`` / infeasible)."""
        return TransitionFormula(FALSE, frozenset())

    @staticmethod
    def assume(condition: Formula) -> "TransitionFormula":
        """Guard: constrain the pre-state, change nothing.

        ``condition`` must be a formula over *pre-state* symbols only.
        """
        return TransitionFormula(condition, frozenset())

    @staticmethod
    def assign(variable: str, expression: Polynomial) -> "TransitionFormula":
        """The assignment ``variable := expression`` (expression over pre-state)."""
        formula = atom_eq(Polynomial.var(post(variable)), expression)
        return TransitionFormula(formula, frozenset([variable]))

    @staticmethod
    def havoc(variables: Iterable[str]) -> "TransitionFormula":
        """Non-deterministically assign arbitrary values to ``variables``."""
        return TransitionFormula(TRUE, frozenset(variables))

    @staticmethod
    def relation(formula: Formula, variables: Iterable[str]) -> "TransitionFormula":
        """Wrap an arbitrary formula with the given footprint."""
        return TransitionFormula(formula, frozenset(variables))

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #
    @property
    def is_bottom(self) -> bool:
        """Syntactic check for the empty relation."""
        return self.formula == FALSE

    @property
    def is_identity(self) -> bool:
        """Syntactic check for the identity relation."""
        return self.formula == TRUE and not self.footprint

    # ------------------------------------------------------------------ #
    # The full two-vocabulary formula
    # ------------------------------------------------------------------ #
    def to_formula(self, variables: Iterable[str] | None = None) -> Formula:
        """The formula with explicit frame equalities ``x' = x``.

        ``variables`` gives the full variable set of interest; variables in it
        but outside the footprint get a frame equality.  With the default
        (``None``) only the footprint is used and no frame conjuncts appear.
        """
        frame: list[Formula] = []
        if variables is not None:
            # Sorted so conjunct order (and thus rendered text) never
            # depends on set iteration order, which varies per process.
            for name in sorted(variables):
                if name not in self.footprint:
                    frame.append(
                        atom_eq(Polynomial.var(post(name)), Polynomial.var(pre(name)))
                    )
        return conjoin([self.formula, *frame])

    # ------------------------------------------------------------------ #
    # Kleene-algebra operations
    # ------------------------------------------------------------------ #
    def compose(self, other: "TransitionFormula") -> "TransitionFormula":
        """Relational (sequential) composition ``self ; other``."""
        if self.is_bottom or other.is_bottom:
            return TransitionFormula.bottom()
        if self.is_identity:
            return other
        if other.is_identity:
            return self
        footprint = self.footprint | other.footprint
        # Iterate the footprint in sorted order throughout: fresh-symbol
        # minting order must not depend on set iteration order or renders
        # of the same summary would differ from process to process.
        ordered = sorted(footprint)
        mids = {name: fresh(f"mid_{name}") for name in ordered}
        # self: rename post(v) -> mid_v; frame v' = v for v outside self's footprint
        left_map: dict[Symbol, Symbol] = {}
        left_extra: list[Formula] = []
        for name in ordered:
            if name in self.footprint:
                left_map[post(name)] = mids[name]
            else:
                left_extra.append(
                    atom_eq(Polynomial.var(mids[name]), Polynomial.var(pre(name)))
                )
        left = conjoin([rename(self.formula, left_map), *left_extra])
        # other: rename pre(v) -> mid_v for every mediated variable (the
        # pre-state of `other` is the intermediate state, even for variables
        # `other` only reads); frame v' = mid_v for v outside other's footprint.
        right_map: dict[Symbol, Symbol] = {}
        right_extra: list[Formula] = []
        for name in ordered:
            right_map[pre(name)] = mids[name]
            if name not in other.footprint:
                right_extra.append(
                    atom_eq(Polynomial.var(post(name)), Polynomial.var(mids[name]))
                )
        right = conjoin([rename(other.formula, right_map), *right_extra])
        body = conjoin([left, right])
        formula = exists(tuple(mids.values()), body)
        return TransitionFormula(formula, footprint)

    def join(self, other: "TransitionFormula") -> "TransitionFormula":
        """Non-deterministic choice ``self + other`` (union of relations)."""
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        footprint = self.footprint | other.footprint
        left = self.to_formula(footprint)
        right = other.to_formula(footprint)
        return TransitionFormula(disjoin([left, right]), footprint)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def exists_variables(self, variables: Iterable[str]) -> "TransitionFormula":
        """Project away both copies of the given program variables.

        Used to drop callee locals / formal parameters after inlining a
        summary, and to drop a procedure's local variables from its summary.
        The symbols are existentially quantified; actual elimination happens
        later, during symbolic abstraction.
        """
        names = frozenset(variables)
        if not names:
            return self
        to_bind = [s for n in sorted(names) for s in (pre(n), post(n))]
        formula = exists(to_bind, self.formula)
        return TransitionFormula(formula, self.footprint - names)

    def rename_variables(self, mapping: Mapping[str, str]) -> "TransitionFormula":
        """Rename program variables (both pre and post copies)."""
        if not mapping:
            return self
        symbol_map: dict[Symbol, Symbol] = {}
        for src, dst in mapping.items():
            symbol_map[pre(src)] = pre(dst)
            symbol_map[post(src)] = post(dst)
        footprint = frozenset(mapping.get(n, n) for n in self.footprint)
        return TransitionFormula(rename(self.formula, symbol_map), footprint)

    def substitute_pre(self, mapping: Mapping[str, Polynomial]) -> "TransitionFormula":
        """Substitute pre-state variables by polynomials over pre-state symbols."""
        if not mapping:
            return self
        sub = {pre(name): poly for name, poly in mapping.items()}
        return TransitionFormula(substitute(self.formula, sub), self.footprint)

    def free_symbols(self) -> frozenset[Symbol]:
        return free_symbols(self.formula)

    def referenced_variables(self) -> frozenset[str]:
        """Program variables the relation mentions (read or written).

        This is the footprint plus any variable whose pre- or post-state
        symbol occurs free in the formula (fresh auxiliary symbols are not
        program variables and are excluded).
        """
        names = set(self.footprint)
        for symbol in free_symbols(self.formula):
            if not symbol.is_fresh:
                names.add(symbol.name)
        return frozenset(names)

    def __str__(self) -> str:
        names = ", ".join(sorted(self.footprint)) or "-"
        return f"[{names}] {self.formula}"
