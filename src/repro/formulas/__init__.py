"""Symbolic expressions and transition formulas.

This package provides the term language of the paper: polynomials over
program variables with rational coefficients (*relational expressions*, §3),
transition formulas over ``Var ∪ Var'``, and the syntactic operations
(substitution, DNF enumeration, composition/join of transition relations)
used by the analyses in :mod:`repro.analysis` and :mod:`repro.core`.
"""

from .symbols import (
    RETURN_VARIABLE,
    Symbol,
    fresh,
    post,
    pre,
    primed,
    reset_fresh_counter,
    sym,
    unprimed,
)
from .polynomial import Monomial, Polynomial, as_polynomial
from .formula import (
    FALSE,
    TRUE,
    And,
    Atom,
    AtomKind,
    Exists,
    FalseFormula,
    Formula,
    Or,
    TrueFormula,
    atom_eq,
    atom_ge,
    atom_gt,
    atom_le,
    atom_lt,
    conjoin,
    disjoin,
    exists,
    formula_size,
    free_symbols,
    map_atoms,
    negate,
    rename,
    substitute,
)
from .dnf import Cube, DEFAULT_CUBE_LIMIT, to_dnf
from .transition import TransitionFormula

__all__ = [
    "RETURN_VARIABLE",
    "Symbol",
    "fresh",
    "post",
    "pre",
    "primed",
    "reset_fresh_counter",
    "sym",
    "unprimed",
    "Monomial",
    "Polynomial",
    "as_polynomial",
    "FALSE",
    "TRUE",
    "And",
    "Atom",
    "AtomKind",
    "Exists",
    "FalseFormula",
    "Formula",
    "Or",
    "TrueFormula",
    "atom_eq",
    "atom_ge",
    "atom_gt",
    "atom_le",
    "atom_lt",
    "conjoin",
    "disjoin",
    "exists",
    "formula_size",
    "free_symbols",
    "map_atoms",
    "negate",
    "rename",
    "substitute",
    "Cube",
    "DEFAULT_CUBE_LIMIT",
    "to_dnf",
    "TransitionFormula",
]
