"""Disjunctive-normal-form enumeration of transition formulas.

The symbolic-abstraction procedure (Alg. 1 of the paper) computes the convex
hull of a formula by enumerating the cubes of its DNF, projecting each cube,
and joining the projections.  The paper enumerates cubes lazily with an SMT
solver; this implementation enumerates them syntactically (existential
quantifiers are hoisted, conjunction is distributed over disjunction) and
lets the caller prune unsatisfiable cubes with the LP-based polyhedral check.

A hard cap on the number of cubes guards against exponential blow-up; when it
is hit the remaining disjuncts are merged conservatively (each is kept as a
single under-split cube containing only its common top-level atoms, which is a
sound over-approximation for the convex-hull client).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .formula import (
    And,
    Atom,
    Exists,
    FalseFormula,
    Formula,
    Or,
    TrueFormula,
)
from .polynomial import Polynomial
from .symbols import Symbol, fresh

__all__ = ["Cube", "to_dnf", "DEFAULT_CUBE_LIMIT", "DnfLimitExceeded"]

#: Default maximum number of cubes produced by :func:`to_dnf`.
DEFAULT_CUBE_LIMIT = 512


class DnfLimitExceeded(Exception):
    """Raised internally when the cube limit would be exceeded."""


@dataclass(frozen=True)
class Cube:
    """A conjunction of atoms together with existentially bound symbols.

    Two cubes (or a cube and a hoisted quantifier) may use the *same name*
    for *distinct* bound variables — e.g. when one procedure summary is
    inlined at two call sites, both copies carry identical auxiliary names.
    Conflating them is unsound (it can make a feasible path formula
    unsatisfiable), so :meth:`conjoin` and the ``Exists`` hoist in
    :func:`to_dnf` alpha-rename colliding bound symbols to fresh ones.
    Renaming happens only on collision, so cube contents — and therefore the
    polyhedral memo keys downstream — are unchanged in the common case.
    """

    atoms: tuple[Atom, ...]
    bound: frozenset[Symbol] = frozenset()

    def symbols(self) -> frozenset[Symbol]:
        """Every symbol of the cube: atom occurrences and bound names."""
        cached = getattr(self, "_symbols", None)
        if cached is None:
            cached = self.bound
            for atom in self.atoms:
                cached |= atom.polynomial.symbols
            object.__setattr__(self, "_symbols", cached)
        return cached

    def alpha_renamed(self, collisions: frozenset[Symbol]) -> "Cube":
        """Rename the given *bound* symbols of this cube to fresh ones."""
        mapping: dict[Symbol, Polynomial] = {}
        renamed_bound = set(self.bound)
        for symbol in collisions & self.bound:
            replacement = fresh(symbol.name)
            mapping[symbol] = Polynomial.var(replacement)
            renamed_bound.discard(symbol)
            renamed_bound.add(replacement)
        if not mapping:
            return self
        atoms = tuple(
            Atom(atom.polynomial.substitute(mapping), atom.kind)
            if atom.polynomial.symbols & mapping.keys()
            else atom
            for atom in self.atoms
        )
        return Cube(atoms, frozenset(renamed_bound))

    def conjoin(self, other: "Cube") -> "Cube":
        left, right = self, other
        # A symbol bound on one side and occurring on the other (bound *or*
        # free) names a different variable there: rename the bound one.
        if right.bound:
            collisions = right.bound & left.symbols()
            if collisions:
                right = right.alpha_renamed(collisions)
        if left.bound:
            collisions = left.bound & right.symbols()
            if collisions:
                left = left.alpha_renamed(collisions)
        return Cube(left.atoms + right.atoms, left.bound | right.bound)

    def with_bound(self, symbols: Iterable[Symbol]) -> "Cube":
        return Cube(self.atoms, self.bound | frozenset(symbols))

    @property
    def is_empty(self) -> bool:
        return not self.atoms

    def __str__(self) -> str:
        rendered = " /\\ ".join(str(a) for a in self.atoms) or "true"
        if self.bound:
            names = ", ".join(str(s) for s in sorted(self.bound))
            return f"exists {names}. {rendered}"
        return rendered


def to_dnf(formula: Formula, cube_limit: int = DEFAULT_CUBE_LIMIT) -> list[Cube]:
    """Enumerate the cubes of the DNF of ``formula``.

    Returns a (possibly empty) list of :class:`Cube`.  An empty list means the
    formula is syntactically ``false``.  A cube with no atoms means ``true``.

    The result over-approximates the formula whenever the ``cube_limit`` is
    hit: disjunctions that would blow past the limit are collapsed by keeping
    only atoms common to all of their disjuncts (a sound weakening for clients
    that compute over-approximations, such as the convex hull).
    """
    return _dnf(formula, cube_limit)


def _dnf(formula: Formula, limit: int) -> list[Cube]:
    if isinstance(formula, TrueFormula):
        return [Cube(())]
    if isinstance(formula, FalseFormula):
        return []
    if isinstance(formula, Atom):
        return [Cube((formula,))]
    convex = _conjunctive_cube(formula)
    if convex is not None:
        # Or-free formulas are already one convex cube: skip the whole
        # distribute-and-conjoin machinery (which builds a quadratic chain
        # of intermediate cubes for the deeply nested conjunctions that
        # transition-formula composition produces).
        return [convex]
    if isinstance(formula, Exists):
        inner = _dnf(formula.body, limit)
        symbols = frozenset(formula.symbols)
        hoisted = []
        for cube in inner:
            # A same-named symbol already bound inside the body is a
            # *different* (shadowing) variable: rename it before binding
            # this quantifier's occurrences.
            collisions = cube.bound & symbols
            if collisions:
                cube = cube.alpha_renamed(collisions)
            hoisted.append(cube.with_bound(symbols))
        return hoisted
    if isinstance(formula, Or):
        cubes: list[Cube] = []
        for child in formula.children:
            cubes.extend(_dnf(child, limit))
            if len(cubes) > limit:
                return _collapse(formula, limit)
        return cubes
    if isinstance(formula, And):
        product: list[Cube] = [Cube(())]
        for child in formula.children:
            child_cubes = _dnf(child, limit)
            if not child_cubes:
                return []
            if len(product) * len(child_cubes) > limit:
                collapsed = _collapse_cubes(child_cubes)
                child_cubes = [collapsed]
            product = [p.conjoin(c) for p in product for c in child_cubes]
            if len(product) > limit:
                product = [_collapse_cubes(product)]
        return product
    raise TypeError(f"unknown formula node {formula!r}")


def _conjunctive_cube(formula: Formula) -> Cube | None:
    """The single cube of an Or-free formula, or ``None`` if it has an Or.

    ``false`` anywhere in the conjunction makes the whole formula false,
    which has no cube either — callers fall through to the general case,
    whose And handler prunes it the same way.

    The walk also returns ``None`` on any bound-name collision — a name
    bound twice (sibling or shadowing quantifiers), an atom mentioning a
    name whose binder's scope has already closed, or a quantifier binding a
    name an earlier sibling atom uses freely.  Flattening such a formula
    here would conflate distinct variables; the general machinery
    alpha-renames them correctly instead.  Collisions only arise when one
    subformula is copied into two contexts (e.g. a summary inlined at two
    call sites), so the fast path still serves the common case.
    """
    atoms: list[Atom] = []
    bound: set[Symbol] = set()
    closed: set[Symbol] = set()
    seen_atom_symbols: set[Symbol] = set()
    _EXIT = object()
    stack: list[object] = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, tuple) and node and node[0] is _EXIT:
            closed.update(node[1])
            continue
        if isinstance(node, Atom):
            atom_symbols = node.polynomial.symbols
            if closed & atom_symbols:
                return None
            atoms.append(node)
            seen_atom_symbols.update(atom_symbols)
        elif isinstance(node, And):
            stack.extend(reversed(node.children))
        elif isinstance(node, Exists):
            symbols = set(node.symbols)
            if symbols & bound or symbols & seen_atom_symbols:
                return None
            bound.update(symbols)
            stack.append((_EXIT, symbols))
            stack.append(node.body)
        elif isinstance(node, TrueFormula):
            continue
        else:
            return None
    return Cube(tuple(atoms), frozenset(bound))


def _collapse(formula: Or, limit: int) -> list[Cube]:
    """Collapse a disjunction that exceeded the limit into one weak cube."""
    child_cubes: list[Cube] = []
    for child in formula.children:
        cubes = _dnf(child, limit)
        if not cubes:
            continue
        child_cubes.append(_collapse_cubes(cubes))
    if not child_cubes:
        return []
    return [_common_atoms(child_cubes)]


def _collapse_cubes(cubes: Sequence[Cube]) -> Cube:
    """Merge several cubes into one keeping only their shared atoms."""
    if len(cubes) == 1:
        return cubes[0]
    return _common_atoms(cubes)


def _common_atoms(cubes: Sequence[Cube]) -> Cube:
    shared = set(cubes[0].atoms)
    bound: frozenset[Symbol] = frozenset()
    for cube in cubes[1:]:
        shared &= set(cube.atoms)
    for cube in cubes:
        bound |= cube.bound
    ordered = tuple(a for a in cubes[0].atoms if a in shared)
    return Cube(ordered, bound)
