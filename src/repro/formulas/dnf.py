"""Disjunctive-normal-form enumeration of transition formulas.

The symbolic-abstraction procedure (Alg. 1 of the paper) computes the convex
hull of a formula by enumerating the cubes of its DNF, projecting each cube,
and joining the projections.  The paper enumerates cubes lazily with an SMT
solver; this implementation enumerates them syntactically (existential
quantifiers are hoisted, conjunction is distributed over disjunction) and
lets the caller prune unsatisfiable cubes with the LP-based polyhedral check.

A hard cap on the number of cubes guards against exponential blow-up; when it
is hit the remaining disjuncts are merged conservatively (each is kept as a
single under-split cube containing only its common top-level atoms, which is a
sound over-approximation for the convex-hull client).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from .formula import (
    And,
    Atom,
    Exists,
    FalseFormula,
    Formula,
    Or,
    TrueFormula,
)
from .symbols import Symbol

__all__ = ["Cube", "to_dnf", "DEFAULT_CUBE_LIMIT", "DnfLimitExceeded"]

#: Default maximum number of cubes produced by :func:`to_dnf`.
DEFAULT_CUBE_LIMIT = 512


class DnfLimitExceeded(Exception):
    """Raised internally when the cube limit would be exceeded."""


@dataclass(frozen=True)
class Cube:
    """A conjunction of atoms together with existentially bound symbols."""

    atoms: tuple[Atom, ...]
    bound: frozenset[Symbol] = frozenset()

    def conjoin(self, other: "Cube") -> "Cube":
        return Cube(self.atoms + other.atoms, self.bound | other.bound)

    def with_bound(self, symbols: Iterable[Symbol]) -> "Cube":
        return Cube(self.atoms, self.bound | frozenset(symbols))

    @property
    def is_empty(self) -> bool:
        return not self.atoms

    def __str__(self) -> str:
        rendered = " /\\ ".join(str(a) for a in self.atoms) or "true"
        if self.bound:
            names = ", ".join(str(s) for s in sorted(self.bound))
            return f"exists {names}. {rendered}"
        return rendered


def to_dnf(formula: Formula, cube_limit: int = DEFAULT_CUBE_LIMIT) -> list[Cube]:
    """Enumerate the cubes of the DNF of ``formula``.

    Returns a (possibly empty) list of :class:`Cube`.  An empty list means the
    formula is syntactically ``false``.  A cube with no atoms means ``true``.

    The result over-approximates the formula whenever the ``cube_limit`` is
    hit: disjunctions that would blow past the limit are collapsed by keeping
    only atoms common to all of their disjuncts (a sound weakening for clients
    that compute over-approximations, such as the convex hull).
    """
    return _dnf(formula, cube_limit)


def _dnf(formula: Formula, limit: int) -> list[Cube]:
    if isinstance(formula, TrueFormula):
        return [Cube(())]
    if isinstance(formula, FalseFormula):
        return []
    if isinstance(formula, Atom):
        return [Cube((formula,))]
    convex = _conjunctive_cube(formula)
    if convex is not None:
        # Or-free formulas are already one convex cube: skip the whole
        # distribute-and-conjoin machinery (which builds a quadratic chain
        # of intermediate cubes for the deeply nested conjunctions that
        # transition-formula composition produces).
        return [convex]
    if isinstance(formula, Exists):
        inner = _dnf(formula.body, limit)
        return [cube.with_bound(formula.symbols) for cube in inner]
    if isinstance(formula, Or):
        cubes: list[Cube] = []
        for child in formula.children:
            cubes.extend(_dnf(child, limit))
            if len(cubes) > limit:
                return _collapse(formula, limit)
        return cubes
    if isinstance(formula, And):
        product: list[Cube] = [Cube(())]
        for child in formula.children:
            child_cubes = _dnf(child, limit)
            if not child_cubes:
                return []
            if len(product) * len(child_cubes) > limit:
                collapsed = _collapse_cubes(child_cubes)
                child_cubes = [collapsed]
            product = [p.conjoin(c) for p in product for c in child_cubes]
            if len(product) > limit:
                product = [_collapse_cubes(product)]
        return product
    raise TypeError(f"unknown formula node {formula!r}")


def _conjunctive_cube(formula: Formula) -> Cube | None:
    """The single cube of an Or-free formula, or ``None`` if it has an Or.

    ``false`` anywhere in the conjunction makes the whole formula false,
    which has no cube either — callers fall through to the general case,
    whose And handler prunes it the same way.
    """
    atoms: list[Atom] = []
    bound: set[Symbol] = set()
    stack: list[Formula] = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, Atom):
            atoms.append(node)
        elif isinstance(node, And):
            stack.extend(reversed(node.children))
        elif isinstance(node, Exists):
            bound.update(node.symbols)
            stack.append(node.body)
        elif isinstance(node, TrueFormula):
            continue
        else:
            return None
    return Cube(tuple(atoms), frozenset(bound))


def _collapse(formula: Or, limit: int) -> list[Cube]:
    """Collapse a disjunction that exceeded the limit into one weak cube."""
    child_cubes: list[Cube] = []
    for child in formula.children:
        cubes = _dnf(child, limit)
        if not cubes:
            continue
        child_cubes.append(_collapse_cubes(cubes))
    if not child_cubes:
        return []
    return [_common_atoms(child_cubes)]


def _collapse_cubes(cubes: Sequence[Cube]) -> Cube:
    """Merge several cubes into one keeping only their shared atoms."""
    if len(cubes) == 1:
        return cubes[0]
    return _common_atoms(cubes)


def _common_atoms(cubes: Sequence[Cube]) -> Cube:
    shared = set(cubes[0].atoms)
    bound: frozenset[Symbol] = frozenset()
    for cube in cubes[1:]:
        shared &= set(cube.atoms)
    for cube in cubes:
        bound |= cube.bound
    ordered = tuple(a for a in cubes[0].atoms if a in shared)
    return Cube(ordered, bound)
